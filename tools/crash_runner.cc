/// \file crash_runner.cc
/// Deterministic kill–recover simulation harness for durable ingest.
///
/// Each cell = (crash site, seed).  The runner forks a child that runs a
/// full ingest-while-serving workload — write the segment-cache baseline,
/// open a durable ingestor (WAL), then append/publish/query in a loop,
/// acking every *durable* publish over a pipe.  The cell's chaos site is
/// armed with an exact seed-derived draw index and `kill_on_fire`, so the
/// child SIGKILLs itself mid-operation at a deterministic point (a
/// half-written WAL record, a commit that never synced, a torn segment
/// temp).  The parent then recovers — reload the baseline from segments,
/// replay the WAL — and checks the recovery contract:
///
///   * no partially visible epoch (watermark lands on a batch boundary,
///     nothing staged);
///   * committed epochs are never lost (recovered watermark >= the last
///     acked publish);
///   * post-recovery query transcripts (every progressive partial + the
///     final) are bit-identical to an uncrashed reference process that
///     published the same epochs, at threads 1 and 4.
///
/// Usage:
///   crash_runner [--seeds N] [--seed-base B] [--site NAME]
///                [--wal-sync MODE] [--list] [--replay SEED] [--verbose]
///                [--keep]
///
///   --seeds N       seeds per site (default 20)
///   --seed-base B   first seed (default 1)
///   --site NAME     restrict to one crash site (default: all four)
///   --wal-sync MODE every_commit (default) | grouped | none; acks are
///                   only sent for durable publishes, so weaker policies
///                   legitimately recover fewer (but never acked) epochs
///   --list          print the crash-site catalog and exit
///   --replay SEED   run one (site, seed) cell verbosely (requires --site)
///   --verbose       per-cell lines even when everything passes
///   --keep          keep each cell's scratch directory for inspection
///
/// Every failing cell prints the exact replay command.  Exit status is
/// the number of failing cells (capped at 99).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_injector.h"
#include "datagen/flights_seed.h"
#include "engines/registry.h"
#include "ingest/ingest.h"
#include "net/protocol.h"
#include "storage/catalog.h"
#include "storage/segment.h"
#include "storage/table.h"

namespace {

using idebench::Micros;
using idebench::Status;
using idebench::chaos::FaultInjector;
using idebench::chaos::FaultSite;
using idebench::chaos::FaultSiteConfig;
using idebench::chaos::FaultSiteName;
using idebench::chaos::ScopedFaultInjector;
using idebench::ingest::Ingestor;
using idebench::ingest::RecoverInfo;
using idebench::ingest::RowBatch;
using idebench::ingest::WalOptions;
using idebench::ingest::WalSync;

// Workload shape: 12 epochs of 200 rows over a 4000-row baseline, every
// epoch queried after its publish.  Small enough to fork hundreds of
// times, large enough that every crash site draws several times.
constexpr int64_t kBaseRows = 4000;
constexpr int64_t kTailRows = 2400;
constexpr int64_t kBatchRows = 200;
constexpr int64_t kEpochs = kTailRows / kBatchRows;
constexpr int64_t kCapacity = kBaseRows + kTailRows;
constexpr uint64_t kEngineSeed = 7;
constexpr const char* kEngine = "progressive";

struct CrashSite {
  FaultSite site;
  const char* name;
  int64_t draws;  // draws this workload makes at the site
  const char* description;
};

/// The swept sites and how many times the workload draws each: the cell
/// seed picks `fire_on_draw = seed % draws`, so a sweep of N >= draws
/// seeds covers every crash point at least once.
const std::vector<CrashSite>& SiteCatalog() {
  static const std::vector<CrashSite> kSites = {
      {FaultSite::kWalAppend, "wal.append", kEpochs,
       "die mid-write of a WAL batch record (torn tail)"},
      {FaultSite::kWalCommit, "wal.commit", kEpochs,
       "die mid-write of a WAL commit record (epoch must vanish)"},
      {FaultSite::kWalFsync, "wal.fsync", kEpochs,
       "die at the commit fsync (commit logged but never acked)"},
      {FaultSite::kSegmentWrite, "segment.write", 2,
       "die mid-write of a baseline segment/manifest file"},
  };
  return kSites;
}

const CrashSite* FindSite(const std::string& name) {
  for (const CrashSite& s : SiteCatalog()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

struct Args {
  int seeds = 20;
  uint64_t seed_base = 1;
  std::string site;
  std::string wal_sync = "every_commit";
  bool list = false;
  bool verbose = false;
  bool replay = false;
  uint64_t replay_seed = 0;
  bool keep = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--seeds" && (v = next())) {
      args->seeds = std::atoi(v);
    } else if (arg == "--seed-base" && (v = next())) {
      args->seed_base = std::strtoull(v, nullptr, 10);
    } else if (arg == "--site" && (v = next())) {
      args->site = v;
    } else if (arg == "--wal-sync" && (v = next())) {
      args->wal_sync = v;
    } else if (arg == "--replay" && (v = next())) {
      args->replay = true;
      args->replay_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--list") {
      args->list = true;
    } else if (arg == "--verbose") {
      args->verbose = true;
    } else if (arg == "--keep") {
      args->keep = true;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

bool ParseWalSync(const std::string& mode, WalOptions* options) {
  if (mode == "every_commit") {
    options->sync = WalSync::kEveryCommit;
  } else if (mode == "grouped") {
    options->sync = WalSync::kGrouped;
  } else if (mode == "none") {
    options->sync = WalSync::kNone;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Shared workload pieces

/// The full dataset for one cell; rows [0, kBaseRows) are the baseline,
/// the rest replay through the ingestor.  Seeded per cell so every cell
/// exercises different data.
std::shared_ptr<idebench::storage::Table> MakeSource(uint64_t seed) {
  idebench::datagen::FlightsSeedConfig config;
  config.rows = kBaseRows + kTailRows;
  config.seed = seed;
  auto table = idebench::datagen::GenerateFlightsSeed(config);
  if (!table.ok()) return nullptr;
  return std::make_shared<idebench::storage::Table>(
      std::move(table).MoveValueUnsafe());
}

std::shared_ptr<idebench::storage::Catalog> MakeBaselineCatalog(
    const std::shared_ptr<idebench::storage::Table>& source) {
  auto fact = std::make_shared<idebench::storage::Table>(source->name(),
                                                         source->schema());
  for (int64_t r = 0; r < kBaseRows; ++r) {
    if (!fact->AppendRowFrom(*source, r).ok()) return nullptr;
  }
  auto catalog = std::make_shared<idebench::storage::Catalog>();
  if (!catalog->AddTable(fact).ok()) return nullptr;
  catalog->set_nominal_rows(1'000'000);
  return catalog;
}

idebench::query::QuerySpec CountByCarrier(
    const idebench::storage::Catalog& catalog) {
  idebench::query::QuerySpec spec;
  spec.viz_name = "carrier_hist";
  idebench::query::BinDimension d;
  d.column = "carrier";
  d.mode = idebench::query::BinningMode::kNominal;
  spec.bins.push_back(d);
  idebench::query::AggregateSpec a;
  a.type = idebench::query::AggregateType::kCount;
  spec.aggregates.push_back(a);
  if (!spec.ResolveBins(catalog).ok()) std::abort();
  return spec;
}

/// Runs the fixture query to completion in fixed virtual-time slices and
/// returns the canonical JSON of every distinct poll plus the final — the
/// full progressive transcript, which recovery must reproduce bit for
/// bit (the shuffled walk is a pure function of seed + epoch history).
std::vector<std::string> QueryTranscript(
    const std::shared_ptr<idebench::storage::Catalog>& catalog,
    int threads) {
  auto engine = idebench::engines::CreateEngine(kEngine, kEngineSeed,
                                                threads,
                                                /*reuse_cache=*/true);
  if (!engine.ok() || !(*engine)->Prepare(catalog).ok()) return {};
  auto handle = (*engine)->Submit(CountByCarrier(*catalog));
  if (!handle.ok()) return {};
  std::vector<std::string> transcript;
  for (int slice = 0; slice < 4096 && !(*engine)->IsDone(*handle); ++slice) {
    (*engine)->RunFor(*handle, 1'000'000);
    auto result = (*engine)->PollResult(*handle);
    if (result.ok() && result->available) {
      transcript.push_back(
          idebench::net::QueryResultToJson(*result).Dump());
    }
  }
  if (!(*engine)->IsDone(*handle)) transcript.push_back("<never finished>");
  return transcript;
}

// ---------------------------------------------------------------------
// Child: the ingest-while-serving workload that gets killed

/// Exit codes for non-crash child failures (a crashed child exits via
/// SIGKILL and reports no code at all).
enum ChildExit : int {
  kChildOk = 0,
  kChildSetupFailed = 3,
  kChildWorkloadFailed = 4,
};

void AckDurablePublish(int ack_fd, int64_t watermark) {
  const std::string line = "C " + std::to_string(watermark) + "\n";
  // A single short line: atomic on a pipe, and SIGKILL can't tear it.
  (void)!::write(ack_fd, line.data(), line.size());
}

int RunChild(const CrashSite& site, uint64_t seed, const WalOptions& wal,
             const std::string& dir, int ack_fd) {
  FaultInjector injector(seed);
  FaultSiteConfig config;
  config.fire_on_draw = static_cast<int64_t>(seed) % site.draws;
  injector.Arm(site.site, config);
  injector.set_kill_on_fire(true);
  ScopedFaultInjector scoped(&injector);

  auto source = MakeSource(seed);
  if (source == nullptr) return kChildSetupFailed;
  auto catalog = MakeBaselineCatalog(source);
  if (catalog == nullptr) return kChildSetupFailed;

  // The segment-cache baseline recovery will replay over.  segment.write
  // cells die inside this call.
  if (!idebench::storage::WriteCatalogSegments(*catalog, dir + "/baseline")
           .ok()) {
    return kChildSetupFailed;
  }

  auto ingestor = Ingestor::CreateDurable(catalog, kCapacity, dir + "/wal",
                                          wal);
  if (!ingestor.ok()) return kChildSetupFailed;

  auto engine = idebench::engines::CreateEngine(kEngine, kEngineSeed,
                                                /*threads=*/1,
                                                /*reuse_cache=*/true);
  if (!engine.ok() || !(*engine)->Prepare(catalog).ok()) {
    return kChildSetupFailed;
  }

  int64_t cursor = kBaseRows;
  for (int64_t epoch = 0; epoch < kEpochs; ++epoch) {
    const RowBatch batch = idebench::ingest::BatchFromTable(
        *source, cursor, cursor + kBatchRows);
    if (!(*ingestor)->Append(batch).ok()) return kChildWorkloadFailed;
    cursor += kBatchRows;
    auto watermark = (*ingestor)->Publish();
    if (!watermark.ok()) return kChildWorkloadFailed;
    // Only durable publishes are acked: under grouped/none sync a
    // publish the log hasn't fsynced yet may legitimately be lost.
    if ((*ingestor)->durable()) AckDurablePublish(ack_fd, *watermark);

    // Serve between publishes: a query pinned to the fresh watermark
    // runs to completion, so the kill lands while the engine holds
    // state over the very rows whose durability is in question.
    auto handle = (*engine)->Submit(CountByCarrier(*catalog));
    if (!handle.ok()) return kChildWorkloadFailed;
    for (int s = 0; s < 4096 && !(*engine)->IsDone(*handle); ++s) {
      (*engine)->RunFor(*handle, 1'000'000);
    }
    if (!(*engine)->IsDone(*handle)) return kChildWorkloadFailed;
  }
  if (!(*ingestor)->SyncWal().ok()) return kChildWorkloadFailed;
  if ((*ingestor)->durable()) {
    AckDurablePublish(ack_fd, (*ingestor)->visible_rows());
  }
  return kChildOk;
}

// ---------------------------------------------------------------------
// Parent: recover and check invariants

struct CellReport {
  std::string site;
  uint64_t seed = 0;
  bool crashed = false;      // child died by SIGKILL (vs clean exit)
  int child_exit = -1;       // exit code when not crashed
  int64_t last_ack = -1;     // highest acked watermark (-1: none)
  int64_t acks = 0;
  RecoverInfo recover;
  bool recovered = false;    // a WAL existed and replayed successfully
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

void Violate(CellReport* report, const std::string& detail) {
  report->violations.push_back(detail);
}

CellReport RunCell(const CrashSite& site, uint64_t seed,
                   const WalOptions& wal, bool keep) {
  CellReport report;
  report.site = site.name;
  report.seed = seed;

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("crash_runner_" + std::string(site.name) + "_" +
        std::to_string(seed)))
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    Violate(&report, "cannot create scratch dir '" + dir + "'");
    return report;
  }

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    Violate(&report, "pipe() failed");
    return report;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    Violate(&report, "fork() failed");
    return report;
  }
  if (pid == 0) {
    ::close(pipe_fds[0]);
    const int rc = RunChild(site, seed, wal, dir, pipe_fds[1]);
    ::close(pipe_fds[1]);
    ::_exit(rc);
  }
  ::close(pipe_fds[1]);

  // Drain acks until the child dies (EOF closes the pipe either way).
  std::string acks;
  char buf[256];
  for (;;) {
    const ssize_t n = ::read(pipe_fds[0], buf, sizeof(buf));
    if (n <= 0) break;
    acks.append(buf, static_cast<size_t>(n));
  }
  ::close(pipe_fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  report.crashed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  report.child_exit = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (!report.crashed && report.child_exit != kChildOk) {
    Violate(&report, "child failed without crashing (exit " +
                         std::to_string(report.child_exit) + ")");
  }

  size_t pos = 0;
  while (pos < acks.size()) {
    const size_t eol = acks.find('\n', pos);
    if (eol == std::string::npos) break;  // torn final line: ignore
    const std::string line = acks.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.size() > 2 && line[0] == 'C') {
      const int64_t w = std::strtoll(line.c_str() + 2, nullptr, 10);
      if (w > report.last_ack) report.last_ack = w;
      ++report.acks;
    }
  }

  // --- Recovery ------------------------------------------------------
  const std::string wal_file = Ingestor::WalPath(dir + "/wal");
  auto baseline =
      idebench::storage::LoadCatalogSegments(dir + "/baseline");
  if (!baseline.ok()) {
    // Baseline never finished (a segment.write crash): nothing may have
    // been acked, because the ingestor is created only after the
    // baseline write succeeds.
    if (report.acks > 0) {
      Violate(&report, "baseline unreadable but " +
                           std::to_string(report.acks) + " acks were sent: " +
                           baseline.status().ToString());
    }
    if (std::filesystem::exists(wal_file)) {
      Violate(&report, "baseline unreadable but a WAL exists — creation "
                       "order violated");
    }
    if (!keep) std::filesystem::remove_all(dir, ec);
    return report;
  }
  auto catalog = std::make_shared<idebench::storage::Catalog>(
      std::move(*baseline));

  if (!std::filesystem::exists(wal_file)) {
    // Died between the baseline write and WAL creation.
    if (report.acks > 0) {
      Violate(&report, "no WAL but " + std::to_string(report.acks) +
                           " acks were sent");
    }
    if (!keep) std::filesystem::remove_all(dir, ec);
    return report;
  }

  auto recovered =
      Ingestor::Recover(catalog, kCapacity, dir + "/wal", wal,
                        &report.recover);
  if (!recovered.ok()) {
    Violate(&report,
            "recovery failed: " + recovered.status().ToString());
    if (!keep) std::filesystem::remove_all(dir, ec);
    return report;
  }
  report.recovered = true;
  const int64_t watermark = (*recovered)->visible_rows();

  // Invariant: committed (acked-durable) epochs are never lost.
  if (report.last_ack >= 0 && watermark < report.last_ack) {
    Violate(&report, "committed epoch lost: recovered watermark " +
                         std::to_string(watermark) + " < last ack " +
                         std::to_string(report.last_ack));
  }
  // Invariant: no partially visible epoch.
  if ((watermark - kBaseRows) % kBatchRows != 0) {
    Violate(&report, "partial epoch visible: watermark " +
                         std::to_string(watermark) +
                         " not on a batch boundary");
  }
  if ((*recovered)->staged_rows() != 0) {
    Violate(&report, "recovery left " +
                         std::to_string((*recovered)->staged_rows()) +
                         " rows staged");
  }
  if (watermark < kBaseRows || watermark > kCapacity) {
    Violate(&report,
            "watermark out of range: " + std::to_string(watermark));
  }
  // A clean (uncrashed) run must have lost nothing at all.
  if (!report.crashed && report.child_exit == kChildOk &&
      watermark != kCapacity) {
    Violate(&report, "clean run recovered watermark " +
                         std::to_string(watermark) + ", want " +
                         std::to_string(kCapacity));
  }

  // Invariant: post-recovery transcripts are bit-identical to a process
  // that never crashed but published the same epochs, at threads 1 & 4.
  const int64_t epochs = (watermark - kBaseRows) / kBatchRows;
  auto ref_source = MakeSource(seed);
  auto ref_catalog =
      ref_source != nullptr ? MakeBaselineCatalog(ref_source) : nullptr;
  if (ref_catalog == nullptr) {
    Violate(&report, "reference rebuild failed");
  } else {
    auto ref_ingestor = Ingestor::Create(ref_catalog, kCapacity);
    bool ref_ok = ref_ingestor.ok();
    int64_t cursor = kBaseRows;
    for (int64_t e = 0; ref_ok && e < epochs; ++e) {
      ref_ok = (*ref_ingestor)
                   ->Append(idebench::ingest::BatchFromTable(
                       *ref_source, cursor, cursor + kBatchRows))
                   .ok() &&
               (*ref_ingestor)->Publish().ok();
      cursor += kBatchRows;
    }
    if (!ref_ok) {
      Violate(&report, "reference replay failed");
    } else {
      for (const int threads : {1, 4}) {
        const auto got = QueryTranscript(catalog, threads);
        const auto want = QueryTranscript(ref_catalog, threads);
        if (got.empty() || got != want) {
          Violate(&report,
                  "transcript mismatch vs uncrashed reference at threads=" +
                      std::to_string(threads) + " (" +
                      std::to_string(got.size()) + " vs " +
                      std::to_string(want.size()) + " polls)");
        }
      }
    }
  }

  if (!keep) std::filesystem::remove_all(dir, ec);
  return report;
}

std::string CellName(const CellReport& r) {
  return r.site + " / seed " + std::to_string(r.seed);
}

void PrintReport(const CellReport& r, bool verbose) {
  if (r.ok() && !verbose) return;
  std::cout << CellName(r) << (r.ok() ? ": ok" : ": FAILED") << "\n";
  std::cout << "  " << (r.crashed ? "killed by SIGKILL" : "clean exit")
            << " acks=" << r.acks << " last_ack=" << r.last_ack
            << " recovered=" << (r.recovered ? "yes" : "no")
            << " watermark=" << r.recover.watermark
            << " epochs=" << r.recover.epochs_replayed
            << " dropped_uncommitted=" << r.recover.uncommitted_rows_dropped
            << " torn_bytes=" << r.recover.torn_bytes_dropped << "\n";
  for (const std::string& v : r.violations) {
    std::cout << "  violation: " << v << "\n";
  }
  if (!r.ok()) {
    std::cout << "  replay: crash_runner --site " << r.site << " --replay "
              << r.seed << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::cerr << "usage: crash_runner [--seeds N] [--seed-base B] "
                 "[--site NAME] [--wal-sync MODE] [--list] "
                 "[--replay SEED] [--verbose] [--keep]\n";
    return 100;
  }
  if (args.list) {
    std::cout << "crash sites (fire_on_draw = seed % draws):\n";
    for (const CrashSite& s : SiteCatalog()) {
      std::cout << "  " << s.name << "  draws=" << s.draws << "\n      "
                << s.description << "\n";
    }
    return 0;
  }
  WalOptions wal;
  if (!ParseWalSync(args.wal_sync, &wal)) {
    std::cerr << "unknown --wal-sync mode: " << args.wal_sync << "\n";
    return 100;
  }

  std::vector<const CrashSite*> sites;
  if (!args.site.empty()) {
    const CrashSite* s = FindSite(args.site);
    if (s == nullptr) {
      std::cerr << "unknown site: " << args.site << " (try --list)\n";
      return 100;
    }
    sites.push_back(s);
  } else {
    for (const CrashSite& s : SiteCatalog()) sites.push_back(&s);
  }

  if (args.replay) {
    if (sites.size() != 1) {
      std::cerr << "--replay requires --site\n";
      return 100;
    }
    const CellReport r =
        RunCell(*sites[0], args.replay_seed, wal, args.keep);
    PrintReport(r, /*verbose=*/true);
    return r.ok() ? 0 : 1;
  }

  int failures = 0;
  int cells = 0;
  int crashes = 0;
  for (const CrashSite* site : sites) {
    for (int i = 0; i < args.seeds; ++i) {
      const CellReport r =
          RunCell(*site, args.seed_base + static_cast<uint64_t>(i), wal,
                  args.keep);
      ++cells;
      if (r.crashed) ++crashes;
      if (!r.ok()) ++failures;
      PrintReport(r, args.verbose);
    }
  }
  std::cout << "crash sweep: " << cells << " cells, " << crashes
            << " killed, " << failures << " failed (wal-sync="
            << args.wal_sync << ")\n";
  return std::min(failures, 99);
}
