/// \file serve_bench.cc
/// Overload benchmark for the serving front-end: spawns N real client
/// processes (fork + execv of this binary with --worker) against an
/// in-process wall-paced server, drives generated exploration workflows
/// through each, and aggregates wall-clock update latencies plus the
/// admission ladder's rejection/degradation counts into
/// BENCH_net_serving.json.
///
/// Usage (parent):
///   serve_bench [--clients N] [--interactions K] [--rows N] [--seed S]
///               [--engine NAME] [--tr US] [--soft N] [--hard N]
///               [--think-ms MS] [--out PATH] [--check]
///
///   --clients N       client processes (default 2 x --hard: a 2x
///                     overload of the admission capacity)
///   --interactions K  interactions per client (default 6)
///   --tr US           per-interaction time requirement (default 500ms)
///   --soft/--hard     ratekeeper live limits (default 2/4)
///   --out PATH        report path (default BENCH_net_serving.json)
///   --check           CI smoke mode: exit nonzero unless zero worker
///                     crashes, zero silent drops, every refusal
///                     explicit, and the report well-formed
///
/// Every admitted query must deliver exactly one terminal update to its
/// worker; workers exit nonzero when one goes silent, so "no silent
/// drops" is checked end to end across real process boundaries.

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "datagen/flights_seed.h"
#include "engines/registry.h"
#include "net/client.h"
#include "net/server.h"
#include "storage/catalog.h"
#include "workflow/generator.h"

namespace {

using idebench::JsonValue;
using idebench::Micros;
using idebench::WallClock;
using idebench::net::Client;
using idebench::net::Server;
using idebench::net::ServerOptions;

struct Args {
  // Parent knobs.
  int clients = 0;  // 0 = 2 x hard
  int interactions = 6;
  int64_t rows = 20'000;
  int64_t nominal = 2'000'000;
  uint64_t seed = 42;
  std::string engine = "progressive";
  Micros tr = 500'000;
  int soft = 2;
  int hard = 4;
  int think_ms = 0;
  std::string out = "BENCH_net_serving.json";
  bool check = false;

  // Worker-only knobs (hidden).
  bool worker = false;
  int id = 0;
  int port = 0;
  std::string host = "127.0.0.1";
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--clients" && (v = next())) {
      args->clients = std::atoi(v);
    } else if (arg == "--interactions" && (v = next())) {
      args->interactions = std::atoi(v);
    } else if (arg == "--rows" && (v = next())) {
      args->rows = std::strtoll(v, nullptr, 10);
    } else if (arg == "--nominal" && (v = next())) {
      args->nominal = std::strtoll(v, nullptr, 10);
    } else if (arg == "--seed" && (v = next())) {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--engine" && (v = next())) {
      args->engine = v;
    } else if (arg == "--tr" && (v = next())) {
      args->tr = std::strtoll(v, nullptr, 10);
    } else if (arg == "--soft" && (v = next())) {
      args->soft = std::atoi(v);
    } else if (arg == "--hard" && (v = next())) {
      args->hard = std::atoi(v);
    } else if (arg == "--think-ms" && (v = next())) {
      args->think_ms = std::atoi(v);
    } else if (arg == "--out" && (v = next())) {
      args->out = v;
    } else if (arg == "--check") {
      args->check = true;
    } else if (arg == "--worker") {
      args->worker = true;
    } else if (arg == "--id" && (v = next())) {
      args->id = std::atoi(v);
    } else if (arg == "--port" && (v = next())) {
      args->port = std::atoi(v);
    } else if (arg == "--host" && (v = next())) {
      args->host = v;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      return false;
    }
  }
  if (args->clients <= 0) args->clients = 2 * args->hard;
  return true;
}

// --- Worker -----------------------------------------------------------------

/// Caps per-worker latency samples so a worker's report line stays well
/// under the pipe buffer (the parent reads pipes concurrently anyway).
constexpr size_t kMaxSamples = 4000;

void PushSample(std::vector<Micros>* samples, Micros value) {
  if (samples->size() < kMaxSamples) samples->push_back(value);
}

JsonValue SamplesToJson(const std::vector<Micros>& samples) {
  JsonValue array = JsonValue::Array();
  for (const Micros s : samples) array.Append(s);
  return array;
}

/// One client process: replays a generated exploration workflow against
/// the server, records wall-clock latencies per update, and verifies the
/// exactly-one-terminal contract for every admitted query.  The report
/// is one JSON line on stdout; exit 0 unless a query went silent or the
/// protocol broke.
int RunWorker(const Args& args) {
  // Regenerate a small seed table locally just to drive the workflow
  // generator (specs only need the schema + rough quantiles).
  idebench::datagen::FlightsSeedConfig datagen;
  datagen.rows = 4000;
  datagen.seed = args.seed;
  auto table = idebench::datagen::GenerateFlightsSeed(datagen);
  if (!table.ok()) {
    std::cerr << "w" << args.id << " datagen: " << table.status().ToString()
              << "\n";
    return 1;
  }
  idebench::workflow::GeneratorConfig generator_config;
  generator_config.min_interactions = args.interactions;
  generator_config.max_interactions = args.interactions + 4;
  idebench::workflow::WorkflowGenerator generator(
      &*table, generator_config,
      args.seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(args.id) + 1)));
  auto workflow = generator.Generate(idebench::workflow::WorkflowType::kMixed,
                                     "bench_w" + std::to_string(args.id));
  if (!workflow.ok()) {
    std::cerr << "w" << args.id << " generator: "
              << workflow.status().ToString() << "\n";
    return 1;
  }

  WallClock wall;
  const std::string tenant = "tenant" + std::to_string(args.id % 4);
  std::unique_ptr<Client> client;
  for (int attempt = 0; attempt < 20 && client == nullptr; ++attempt) {
    auto connected = Client::Connect(args.host, args.port, tenant);
    if (connected.ok()) {
      client = std::move(connected).MoveValueUnsafe();
    } else {
      ::usleep(50'000);
    }
  }
  JsonValue report = JsonValue::Object();
  report.Set("id", static_cast<int64_t>(args.id));
  if (client == nullptr) {
    // The server refusing the connect IS an explicit signal; report it
    // rather than crash.
    report.Set("connect_failed", true);
    std::cout << report.Dump() << "\n" << std::flush;
    return 0;
  }
  auto session = client->OpenSession();
  if (!session.ok()) {
    std::cerr << "w" << args.id << " open: " << session.status().ToString()
              << "\n";
    return 1;
  }

  int64_t attempts = 0, submitted = 0, rejected = 0, degraded = 0;
  int64_t queries_admitted = 0, queries_finalized = 0, protocol_errors = 0;
  double min_budget_scale = 1.0;
  std::map<std::string, int64_t> reject_reasons;
  std::vector<Micros> first_latencies, final_latencies;
  // Admitted, not-yet-terminal queries: id -> (submit wall time, seen
  // first update).  Whatever the overload weather, this must drain to
  // empty — one terminal per admitted query, no silent drops.
  std::map<int64_t, std::pair<Micros, bool>> pending;

  const auto handle_update = [&](const JsonValue& msg) {
    const int64_t query = msg.GetInt("query", -1);
    auto it = pending.find(query);
    if (it == pending.end()) return;  // unsupported or unknown: not ours
    const Micros latency = wall.Now() - it->second.first;
    if (!it->second.second) {
      it->second.second = true;
      PushSample(&first_latencies, latency);
    }
    if (msg.GetBool("final", false)) {
      PushSample(&final_latencies, latency);
      ++queries_finalized;
      pending.erase(it);
    }
  };

  // Drains messages until `done` or the wall deadline; updates are
  // always processed, everything else goes to `unclaimed`.
  const auto drain = [&](Micros deadline,
                         const std::function<bool()>& done) -> bool {
    while (!done() && wall.Now() < deadline) {
      JsonValue msg;
      auto next = client->Next(&msg, std::max<Micros>(1, deadline - wall.Now()));
      if (!next.ok()) {
        ++protocol_errors;
        return false;
      }
      if (!*next) return true;  // timeout slice; done() re-checked
      const std::string type = msg.GetString("type", "");
      if (type == "update") {
        handle_update(msg);
      } else if (type == "error") {
        ++protocol_errors;
      }
    }
    return true;
  };

  int64_t request_id = 0;
  size_t ran = 0;
  for (const auto& interaction : workflow->interactions) {
    if (ran++ >= static_cast<size_t>(args.interactions)) break;
    JsonValue msg = JsonValue::Object();
    msg.Set("type", "interaction");
    msg.Set("session", *session);
    msg.Set("request", ++request_id);
    msg.Set("interaction", interaction.ToJson());
    const Micros send_time = wall.Now();
    ++attempts;
    if (!client->Send(msg).ok()) {
      ++protocol_errors;
      break;
    }

    // Await this request's verdict; updates for earlier interactions
    // keep streaming in the meantime and are folded in by WaitFor's
    // buffering plus the drain below.
    JsonValue verdict;
    bool decided = false;
    const Micros verdict_deadline = wall.Now() + args.tr + 5'000'000;
    while (!decided && wall.Now() < verdict_deadline) {
      JsonValue in;
      auto next = client->Next(&in, verdict_deadline - wall.Now());
      if (!next.ok() || !*next) break;
      const std::string type = in.GetString("type", "");
      if (type == "update") {
        handle_update(in);
      } else if ((type == "submitted" || type == "rejected") &&
                 in.GetInt("request", -1) == request_id) {
        verdict = std::move(in);
        decided = true;
      } else if (type == "error") {
        ++protocol_errors;
      }
    }
    if (!decided) {
      ++protocol_errors;  // a request may never go unanswered
      break;
    }

    if (verdict.GetString("type", "") == "rejected") {
      ++rejected;
      ++reject_reasons[verdict.GetString("reason", "unknown")];
      continue;
    }
    ++submitted;
    if (verdict.GetInt("degrade_level", 0) > 0) ++degraded;
    min_budget_scale =
        std::min(min_budget_scale, verdict.GetDouble("budget_scale", 1.0));
    const JsonValue& queries = verdict.Get("queries");
    for (size_t i = 0; i < queries.size(); ++i) {
      const JsonValue& q = queries.at(i);
      if (q.GetBool("unsupported", false)) continue;
      ++queries_admitted;
      pending[q.GetInt("query", -1)] = {send_time, false};
    }

    // Let this interaction mostly finish before the next (each worker
    // keeps ~1 interaction in flight; overload comes from the fleet).
    drain(wall.Now() + args.tr + 1'000'000, [&] { return pending.empty(); });
    if (args.think_ms > 0) ::usleep(static_cast<useconds_t>(args.think_ms) * 1000);
  }

  // Stragglers past their deadline must still terminate (the scheduler
  // cancels at TR); give them a generous grace window.
  drain(wall.Now() + args.tr + 10'000'000, [&] { return pending.empty(); });

  // close_session pushes terminal cancels for anything still live
  // before confirming — count those too.
  JsonValue close = JsonValue::Object();
  close.Set("type", "close_session");
  close.Set("session", *session);
  if (client->Send(close).ok()) {
    const Micros deadline = wall.Now() + 5'000'000;
    bool closed = false;
    while (!closed && wall.Now() < deadline) {
      JsonValue in;
      auto next = client->Next(&in, deadline - wall.Now());
      if (!next.ok() || !*next) break;
      const std::string type = in.GetString("type", "");
      if (type == "update") {
        handle_update(in);
      } else if (type == "session_closed") {
        closed = true;
      }
    }
  }

  const int64_t silent = static_cast<int64_t>(pending.size());
  report.Set("attempts", attempts);
  report.Set("submitted", submitted);
  report.Set("rejected", rejected);
  report.Set("degraded", degraded);
  report.Set("min_budget_scale", min_budget_scale);
  report.Set("queries_admitted", queries_admitted);
  report.Set("queries_finalized", queries_finalized);
  report.Set("silent_drops", silent);
  report.Set("protocol_errors", protocol_errors);
  JsonValue reasons = JsonValue::Object();
  for (const auto& [reason, count] : reject_reasons) reasons.Set(reason, count);
  report.Set("reject_reasons", std::move(reasons));
  report.Set("first_update_us", SamplesToJson(first_latencies));
  report.Set("final_us", SamplesToJson(final_latencies));
  std::cout << report.Dump() << "\n" << std::flush;
  return (silent > 0 || protocol_errors > 0) ? 1 : 0;
}

// --- Parent -----------------------------------------------------------------

struct WorkerHandle {
  pid_t pid = -1;
  int pipe_fd = -1;
  std::string output;
  int exit_code = -1;
  bool signaled = false;
};

/// Spawns one worker process: fork, stdout onto a pipe, execv of this
/// same binary in --worker mode.
WorkerHandle Spawn(const Args& args, int id, int port) {
  WorkerHandle handle;
  int fds[2];
  if (::pipe(fds) != 0) return handle;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return handle;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<std::string> argv_strings = {
        "serve_bench",       "--worker",
        "--id",              std::to_string(id),
        "--port",            std::to_string(port),
        "--host",            args.host,
        "--interactions",    std::to_string(args.interactions),
        "--seed",            std::to_string(args.seed),
        "--tr",              std::to_string(args.tr),
        "--think-ms",        std::to_string(args.think_ms),
    };
    std::vector<char*> argv;
    argv.reserve(argv_strings.size() + 1);
    for (std::string& s : argv_strings) argv.push_back(s.data());
    argv.push_back(nullptr);
    ::execv("/proc/self/exe", argv.data());
    ::_exit(127);
  }
  ::close(fds[1]);
  handle.pid = pid;
  handle.pipe_fd = fds[0];
  return handle;
}

/// Reads every worker pipe to EOF (concurrently, so no worker blocks on
/// a full pipe), then reaps exit statuses.
void CollectWorkers(std::vector<WorkerHandle>* workers) {
  size_t open_pipes = 0;
  for (const WorkerHandle& w : *workers) {
    if (w.pipe_fd >= 0) ++open_pipes;
  }
  while (open_pipes > 0) {
    std::vector<pollfd> fds;
    std::vector<size_t> index;
    for (size_t i = 0; i < workers->size(); ++i) {
      if ((*workers)[i].pipe_fd >= 0) {
        fds.push_back({(*workers)[i].pipe_fd, POLLIN, 0});
        index.push_back(i);
      }
    }
    if (::poll(fds.data(), fds.size(), 1000) < 0 && errno != EINTR) break;
    for (size_t k = 0; k < fds.size(); ++k) {
      if (!(fds[k].revents & (POLLIN | POLLHUP))) continue;
      WorkerHandle& w = (*workers)[index[k]];
      char buf[16 * 1024];
      const ssize_t n = ::read(w.pipe_fd, buf, sizeof(buf));
      if (n > 0) {
        w.output.append(buf, static_cast<size_t>(n));
      } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
        ::close(w.pipe_fd);
        w.pipe_fd = -1;
        --open_pipes;
      }
    }
  }
  for (WorkerHandle& w : *workers) {
    if (w.pid < 0) continue;
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    if (WIFEXITED(status)) {
      w.exit_code = WEXITSTATUS(status);
    } else {
      w.signaled = true;  // crash: killed by a signal
    }
  }
}

Micros Percentile(std::vector<Micros> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = std::min(
      samples.size() - 1,
      static_cast<size_t>(p * static_cast<double>(samples.size() - 1) + 0.5));
  return samples[rank];
}

int RunParent(const Args& args) {
  idebench::datagen::FlightsSeedConfig datagen;
  datagen.rows = args.rows;
  datagen.seed = args.seed;
  auto table = idebench::datagen::GenerateFlightsSeed(datagen);
  if (!table.ok()) {
    std::cerr << "datagen failed: " << table.status().ToString() << "\n";
    return 1;
  }
  auto catalog = std::make_shared<idebench::storage::Catalog>();
  if (const auto st = catalog->AddTable(std::make_shared<idebench::storage::Table>(
          std::move(table).MoveValueUnsafe()));
      !st.ok()) {
    std::cerr << "catalog failed: " << st.ToString() << "\n";
    return 1;
  }
  catalog->set_nominal_rows(args.nominal);

  auto engine = idebench::engines::CreateEngine(
      args.engine, args.seed, /*threads=*/1, /*reuse_cache=*/false,
      /*sessions=*/args.hard);
  if (!engine.ok()) {
    std::cerr << "engine failed: " << engine.status().ToString() << "\n";
    return 1;
  }
  if (const auto prepared = (*engine)->Prepare(catalog); !prepared.ok()) {
    std::cerr << "prepare failed: " << prepared.status().ToString() << "\n";
    return 1;
  }

  ServerOptions options;
  options.port = 0;  // ephemeral
  options.wall_pacing = true;
  options.engine_label = args.engine;
  options.max_connections = args.clients + 8;
  options.scheduler.time_requirement = args.tr;
  options.scheduler.quantum = 50'000;
  options.ratekeeper.soft_live_limit = args.soft;
  options.ratekeeper.hard_live_limit = args.hard;

  auto server = Server::Create(options, engine->get(), catalog);
  if (!server.ok()) {
    std::cerr << "bind failed: " << server.status().ToString() << "\n";
    return 1;
  }
  const int port = (*server)->port();
  idebench::Status serve_status = idebench::Status::OK();
  std::thread serve_thread(
      [&] { serve_status = (*server)->Serve(); });

  std::cerr << "serve_bench: " << args.clients << " clients ("
            << args.interactions << " interactions each) against soft="
            << args.soft << " hard=" << args.hard << " on port " << port
            << "\n";
  std::vector<WorkerHandle> workers;
  workers.reserve(static_cast<size_t>(args.clients));
  for (int i = 0; i < args.clients; ++i) {
    workers.push_back(Spawn(args, i, port));
  }
  CollectWorkers(&workers);

  // The fleet is done: pull the server's own ledger over the wire.
  JsonValue server_stats;
  {
    auto probe = Client::Connect(args.host, port, "parent");
    if (probe.ok()) {
      JsonValue msg = JsonValue::Object();
      msg.Set("type", "stats");
      if ((*probe)->Send(msg).ok()) {
        auto reply = (*probe)->WaitFor("stats_report", 5'000'000);
        if (reply.ok()) server_stats = std::move(*reply);
      }
    }
  }
  (*server)->RequestStop();
  serve_thread.join();

  // Aggregate the worker reports.
  int crashes = 0, connect_failures = 0;
  int64_t attempts = 0, submitted = 0, rejected = 0, degraded = 0;
  int64_t queries_admitted = 0, queries_finalized = 0, silent_drops = 0;
  int64_t protocol_errors = 0;
  double min_budget_scale = 1.0;
  std::map<std::string, int64_t> reject_reasons;
  std::vector<Micros> first_latencies, final_latencies;
  for (const WorkerHandle& w : workers) {
    if (w.signaled || w.exit_code != 0) ++crashes;
    const size_t newline = w.output.find('\n');
    auto parsed = JsonValue::Parse(
        newline == std::string::npos ? w.output : w.output.substr(0, newline));
    if (!parsed.ok()) {
      ++crashes;  // no parseable report is as bad as a crash
      continue;
    }
    const JsonValue& r = *parsed;
    if (r.GetBool("connect_failed", false)) {
      ++connect_failures;
      continue;
    }
    attempts += r.GetInt("attempts", 0);
    submitted += r.GetInt("submitted", 0);
    rejected += r.GetInt("rejected", 0);
    degraded += r.GetInt("degraded", 0);
    queries_admitted += r.GetInt("queries_admitted", 0);
    queries_finalized += r.GetInt("queries_finalized", 0);
    silent_drops += r.GetInt("silent_drops", 0);
    protocol_errors += r.GetInt("protocol_errors", 0);
    min_budget_scale = std::min(min_budget_scale,
                                r.GetDouble("min_budget_scale", 1.0));
    const JsonValue& reasons = r.Get("reject_reasons");
    if (reasons.is_object()) {
      for (const auto& [key, value] : reasons.members()) {
        reject_reasons[key] += value.AsInt();
      }
    }
    const JsonValue& first = r.Get("first_update_us");
    for (size_t i = 0; i < first.size(); ++i) {
      first_latencies.push_back(first.at(i).AsInt());
    }
    const JsonValue& final_arr = r.Get("final_us");
    for (size_t i = 0; i < final_arr.size(); ++i) {
      final_latencies.push_back(final_arr.at(i).AsInt());
    }
  }

  JsonValue report = JsonValue::Object();
  report.Set("benchmark", "net_serving");
  report.Set("engine", args.engine);
  report.Set("clients", static_cast<int64_t>(args.clients));
  report.Set("interactions_per_client", static_cast<int64_t>(args.interactions));
  report.Set("time_requirement_us", args.tr);
  report.Set("soft_live_limit", static_cast<int64_t>(args.soft));
  report.Set("hard_live_limit", static_cast<int64_t>(args.hard));
  report.Set("attempts", attempts);
  report.Set("submitted", submitted);
  report.Set("rejected", rejected);
  report.Set("degraded", degraded);
  report.Set("min_budget_scale", min_budget_scale);
  report.Set("queries_admitted", queries_admitted);
  report.Set("queries_finalized", queries_finalized);
  report.Set("silent_drops", silent_drops);
  report.Set("protocol_errors", protocol_errors);
  report.Set("worker_crashes", static_cast<int64_t>(crashes));
  report.Set("connect_failures", static_cast<int64_t>(connect_failures));
  JsonValue reasons = JsonValue::Object();
  for (const auto& [reason, count] : reject_reasons) reasons.Set(reason, count);
  report.Set("reject_reasons", std::move(reasons));
  report.Set("p50_first_update_us", Percentile(first_latencies, 0.50));
  report.Set("p99_first_update_us", Percentile(first_latencies, 0.99));
  report.Set("p50_final_us", Percentile(final_latencies, 0.50));
  report.Set("p99_final_us", Percentile(final_latencies, 0.99));
  if (server_stats.is_object()) {
    report.Set("server", std::move(server_stats));
  }

  std::ofstream out(args.out);
  out << report.DumpPretty() << "\n";
  out.close();
  std::cout << "serve_bench: attempts=" << attempts << " submitted="
            << submitted << " rejected=" << rejected << " degraded="
            << degraded << " min_budget_scale=" << min_budget_scale
            << " finalized=" << queries_finalized << "/" << queries_admitted
            << " silent_drops=" << silent_drops << " crashes=" << crashes
            << "\n  p50_first=" << Percentile(first_latencies, 0.50) / 1000
            << "ms p99_first=" << Percentile(first_latencies, 0.99) / 1000
            << "ms p50_final=" << Percentile(final_latencies, 0.50) / 1000
            << "ms p99_final=" << Percentile(final_latencies, 0.99) / 1000
            << "ms -> " << args.out << "\n";

  if (!args.check) return 0;

  // CI smoke contract.
  int failures = 0;
  const auto expect = [&](bool ok, const std::string& what) {
    if (!ok) {
      ++failures;
      std::cerr << "CHECK FAILED: " << what << "\n";
    }
  };
  expect(serve_status.ok(), "server loop exited cleanly");
  expect(crashes == 0, "zero worker crashes");
  expect(silent_drops == 0, "zero silent drops");
  expect(protocol_errors == 0, "zero protocol errors");
  expect(queries_finalized == queries_admitted,
         "every admitted query delivered exactly one terminal update");
  expect(attempts == submitted + rejected,
         "every request answered: submitted or explicitly rejected");
  expect(submitted > 0, "some requests were admitted");
  if (args.clients > args.hard) {
    expect(degraded + rejected > 0,
           "overload visibly degraded or rejected at 2x capacity");
    expect(rejected == 0 || degraded > 0 || min_budget_scale < 1.0,
           "degradation engaged before refusal");
  }
  expect(!first_latencies.empty(), "latency samples recorded");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::cerr << "usage: serve_bench [--clients N] [--interactions K] "
                 "[--rows N] [--seed S] [--engine NAME] [--tr US] "
                 "[--soft N] [--hard N] [--think-ms MS] [--out PATH] "
                 "[--check]\n";
    return 2;
  }
  return args.worker ? RunWorker(args) : RunParent(args);
}
