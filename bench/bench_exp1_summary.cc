/// \file bench_exp1_summary.cc
/// Reproduces **Figure 5** (Experiment 1, §5.2): the aggregated summary
/// report for four systems across five time requirements on the 500 M
/// mixed workload — mean percentage of TR violations and missing bins,
/// and the CDF of mean relative errors (truncated at 100 %) with its
/// area-above-the-curve statistic.

#include "bench/bench_util.h"

using namespace idebench;

int main() {
  const std::vector<double> kTimeRequirements = {0.5, 1.0, 3.0, 5.0, 10.0};
  const std::vector<std::string> kEngines = {"blocking", "online",
                                             "progressive", "stratified"};

  bench::Banner(
      "Experiment 1 / Figure 5: summary report, mixed workflows, 500M");

  auto catalog = bench::Unwrap(core::BuildFlightsCatalog(bench::BenchDataset()),
                               "build catalog");
  auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);
  const auto workflows =
      bench::MakeWorkflows(catalog->fact_table(),
                           {workflow::WorkflowType::kMixed},
                           bench::WorkflowsOverride(10));
  std::printf("dataset: %s nominal (%lld rows materialized), %zu workflows\n",
              core::DataSizeLabel(catalog->nominal_rows()).c_str(),
              static_cast<long long>(catalog->fact_table()->num_rows()),
              workflows.size());

  std::vector<driver::QueryRecord> records;
  for (const std::string& engine : kEngines) {
    bench::RunEngineSweep(engine, catalog, oracle, workflows,
                          kTimeRequirements, /*think_time_s=*/1.0, &records);
    std::printf("engine '%s' done (%zu records total)\n", engine.c_str(),
                records.size());
  }

  // Per-system summary blocks, as laid out in Figure 5.
  for (const std::string& engine : kEngines) {
    std::printf("\n--- %s ---\n", engine.c_str());
    std::printf("%6s %10s %13s %9s %9s  %s\n", "TR", "tr_viol", "missing_bins",
                "mre_med", "area>cdf", "MRE CDF [0..100%]");
    for (double tr : kTimeRequirements) {
      std::vector<const driver::QueryRecord*> group;
      for (const auto& r : records) {
        if (r.driver_name == engine &&
            r.time_requirement == SecondsToMicros(tr)) {
          group.push_back(&r);
        }
      }
      const report::SummaryRow row = report::Summarize("", group);
      const std::vector<double> cdf = report::MreCdf(group, 21);
      std::printf("%5.1fs %10s %13s %9.3f %9s  %s\n", tr,
                  FormatPercent(row.tr_violation_rate).c_str(),
                  FormatPercent(row.mean_missing_bins).c_str(), row.median_mre,
                  FormatPercent(row.area_above_cdf).c_str(),
                  report::RenderCdf(cdf).c_str());
    }
  }

  std::printf(
      "\npaper shape check: blocking violations fall with TR; online stays "
      "flat\n(fallback-bound); progressive ~0 violations; stratified "
      "quality constant.\n");
  return 0;
}
