/// \file bench_ablations.cc
/// Ablations of the design choices DESIGN.md calls out (beyond the
/// paper's own experiments):
///
///  A. stratified sample-rate sweep — the paper's §6 discussion: "a good
///     sample size is time-consuming to determine"; quality vs prep-time
///     trade-off at 0.1 %–10 %;
///  B. progressive result reuse on/off — how much of IDEA's advantage
///     comes from reuse;
///  C. online engine blocking fallback on/off — XDB's TR violations are
///     fallback-bound;
///  D. concurrency-penalty sweep — what Exp. 4's "no concurrency effect"
///     would look like on a contended backend.

#include "bench/bench_util.h"
#include "engines/online_engine.h"
#include "engines/progressive_engine.h"
#include "engines/stratified_engine.h"

using namespace idebench;

namespace {

report::SummaryRow RunWith(engines::Engine* engine,
                           std::shared_ptr<const storage::Catalog> catalog,
                           std::shared_ptr<driver::GroundTruthOracle> oracle,
                           const std::vector<workflow::Workflow>& workflows,
                           double tr_s, double concurrency_penalty = 0.0) {
  driver::Settings settings;
  settings.time_requirement = SecondsToMicros(tr_s);
  settings.think_time = SecondsToMicros(1.0);
  settings.concurrency_penalty = concurrency_penalty;
  settings.data_size_label = core::DataSizeLabel(catalog->nominal_rows());
  driver::BenchmarkDriver driver(settings, engine, catalog, oracle);
  bench::CheckOk(driver.PrepareEngine().status(), "prepare");
  auto records = bench::Unwrap(driver.RunWorkflows(workflows), "run");
  std::vector<const driver::QueryRecord*> ptrs;
  for (const auto& r : records) ptrs.push_back(&r);
  return report::Summarize("", ptrs);
}

}  // namespace

int main() {
  bench::Banner("Ablations (design-choice sweeps)");

  auto catalog = bench::Unwrap(core::BuildFlightsCatalog(bench::BenchDataset()),
                               "build catalog");
  auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);
  const auto workflows = bench::MakeWorkflows(
      catalog->fact_table(), {workflow::WorkflowType::kMixed},
      bench::WorkflowsOverride(5));

  // --- A: stratified sample-rate sweep --------------------------------
  std::printf("A. stratified sampling-rate sweep (TR=1s):\n");
  std::printf("   %-8s %12s %10s %10s %10s\n", "rate", "prep(min)", "tr_viol",
              "missing", "mre_med");
  for (double rate : {0.001, 0.005, 0.01, 0.05, 0.10}) {
    engines::StratifiedEngineConfig config;
    config.sampling_rate = rate;
    engines::StratifiedEngine engine(config);
    driver::Settings settings;
    settings.time_requirement = SecondsToMicros(1.0);
    settings.think_time = SecondsToMicros(1.0);
    driver::BenchmarkDriver driver(settings, &engine, catalog, oracle);
    const Micros prep = bench::Unwrap(driver.PrepareEngine(), "prepare");
    auto records = bench::Unwrap(driver.RunWorkflows(workflows), "run");
    std::vector<const driver::QueryRecord*> ptrs;
    for (const auto& r : records) ptrs.push_back(&r);
    const report::SummaryRow row = report::Summarize("", ptrs);
    std::printf("   %-8s %12.1f %10s %10s %10.3f\n",
                FormatPercent(rate, 1).c_str(), MicrosToSeconds(prep) / 60.0,
                FormatPercent(row.tr_violation_rate).c_str(),
                FormatPercent(row.mean_missing_bins).c_str(), row.median_mre);
  }
  std::printf(
      "   -> bigger samples buy quality and cost prep time; no rate wins\n"
      "      both, which is the paper's argument for online sampling.\n\n");

  // --- B: progressive reuse on/off -------------------------------------
  std::printf("B. progressive result reuse (TR=0.5s):\n");
  std::printf("   %-10s %10s %10s %10s %12s\n", "reuse", "tr_viol", "missing",
              "mre_med", "reuse_hits");
  for (bool reuse : {true, false}) {
    engines::ProgressiveEngineConfig config;
    config.enable_reuse = reuse;
    engines::ProgressiveEngine engine(config);
    const report::SummaryRow row =
        RunWith(&engine, catalog, oracle, workflows, 0.5);
    std::printf("   %-10s %10s %10s %10.3f %12lld\n", reuse ? "on" : "off",
                FormatPercent(row.tr_violation_rate).c_str(),
                FormatPercent(row.mean_missing_bins).c_str(), row.median_mre,
                static_cast<long long>(engine.reuse_hits()));
  }
  std::printf(
      "   -> repeated dashboard queries start from cached samples; reuse\n"
      "      lowers missing bins at tight TRs for free.\n\n");

  // --- C: online fallback on/off ----------------------------------------
  std::printf("C. online engine blocking fallback (TR=1s):\n");
  std::printf("   %-10s %10s %10s\n", "fallback", "tr_viol", "mre_med");
  for (bool fallback : {true, false}) {
    engines::OnlineEngineConfig config;
    config.enable_fallback = fallback;
    engines::OnlineEngine engine(config);
    const report::SummaryRow row =
        RunWith(&engine, catalog, oracle, workflows, 1.0);
    std::printf("   %-10s %10s %10.3f\n", fallback ? "on" : "off",
                FormatPercent(row.tr_violation_rate).c_str(), row.median_mre);
  }
  std::printf(
      "   -> the violation share barely moves: it is the unsupported-query\n"
      "      share either way (blocked scans exceed the TR).\n\n");

  // --- D: concurrency-penalty sweep --------------------------------------
  std::printf("D. concurrency penalty sweep (blocking engine, TR=3s):\n");
  std::printf("   %-10s %10s\n", "penalty", "tr_viol");
  for (double penalty : {0.0, 0.25, 0.5, 1.0}) {
    auto engine = bench::Unwrap(engines::CreateEngine("blocking"), "create");
    const report::SummaryRow row =
        RunWith(engine.get(), catalog, oracle, workflows, 3.0, penalty);
    std::printf("   %-10.2f %10s\n", penalty,
                FormatPercent(row.tr_violation_rate).c_str());
  }
  std::printf(
      "   -> with no penalty (the paper's 20-core testbed), concurrency has\n"
      "      no effect (Exp. 4); a contended backend would degrade.\n");
  return 0;
}
