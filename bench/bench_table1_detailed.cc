/// \file bench_table1_detailed.cc
/// Reproduces **Table 1** (Appendix A.1): the detailed per-query report
/// for a single mixed workflow run against the progressive engine at
/// TR = 0.5 s, think time 3 s, 500 M — the same configuration as the
/// paper's example.  Also writes the full CSV next to the binary.

#include "bench/bench_util.h"

using namespace idebench;

int main() {
  bench::Banner("Table 1: detailed report, one mixed workflow, TR=0.5s");

  auto catalog = bench::Unwrap(core::BuildFlightsCatalog(bench::BenchDataset()),
                               "build catalog");
  auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);
  const auto workflows = bench::MakeWorkflows(
      catalog->fact_table(), {workflow::WorkflowType::kMixed}, 1,
      /*seed=*/2);

  auto engine = bench::Unwrap(engines::CreateEngine("progressive"),
                              "create engine");
  driver::Settings settings;
  settings.time_requirement = SecondsToMicros(0.5);
  settings.think_time = SecondsToMicros(3.0);
  settings.data_size_label = core::DataSizeLabel(catalog->nominal_rows());
  driver::BenchmarkDriver driver(settings, engine.get(), catalog, oracle);
  bench::CheckOk(driver.PrepareEngine().status(), "prepare");

  auto records = bench::Unwrap(driver.RunWorkflows(workflows),
                               "run workflow");
  std::printf("%s\n", report::RenderDetailedTable(records, 40).c_str());

  const std::string csv_path = "table1_detailed_report.csv";
  bench::CheckOk(report::WriteDetailedReport(records, csv_path),
                 "write csv");
  std::printf("full report written to %s (%zu rows)\n", csv_path.c_str(),
              records.size());
  std::printf("\nexample SQL of the first query:\n  %s\n",
              records.front().sql.c_str());
  return 0;
}
