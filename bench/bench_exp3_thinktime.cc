/// \file bench_exp3_thinktime.cc
/// Reproduces **Figure 6f** (Experiment 3, §5.4): the effect of varying
/// think time (1–10 s) on missing bins, using the speculative extension
/// of the progressive engine and the paper's fixed four-interaction
/// workflow:
///   1) a 2-D count heat map of arrival vs. departure delays (10x10),
///   2) a 1-D count histogram of carriers (25 bins),
///   3) a link from the carrier histogram to the heat map,
///   4) selection of a single carrier, forcing the heat map to update.
/// TR = 3 s, 500 M tuples.

#include "bench/bench_util.h"
#include "engines/progressive_engine.h"

using namespace idebench;

namespace {

workflow::Workflow MakeExp3Workflow(const storage::Table& fact,
                                    const std::string& carrier_label) {
  using workflow::Interaction;

  query::VizSpec heatmap;
  heatmap.name = "viz_delays";
  heatmap.source = fact.name();
  query::BinDimension arr;
  arr.column = "arr_delay";
  arr.mode = query::BinningMode::kFixedCount;
  arr.requested_bins = 10;
  query::BinDimension dep;
  dep.column = "dep_delay";
  dep.mode = query::BinningMode::kFixedCount;
  dep.requested_bins = 10;
  heatmap.bins = {arr, dep};
  query::AggregateSpec count;
  count.type = query::AggregateType::kCount;
  heatmap.aggregates = {count};

  query::VizSpec carriers;
  carriers.name = "viz_carriers";
  carriers.source = fact.name();
  query::BinDimension carrier_dim;
  carrier_dim.column = "carrier";
  carrier_dim.mode = query::BinningMode::kNominal;
  carriers.bins = {carrier_dim};
  carriers.aggregates = {count};

  expr::FilterExpr selection;
  expr::Predicate p;
  p.column = "carrier";
  p.op = expr::CompareOp::kIn;
  p.string_values = {carrier_label};
  selection.And(p);

  workflow::Workflow wf;
  wf.name = "exp3_speculation";
  wf.type = workflow::WorkflowType::kOneToN;
  wf.interactions.push_back(Interaction::CreateViz(heatmap));
  wf.interactions.push_back(Interaction::CreateViz(carriers));
  wf.interactions.push_back(Interaction::Link("viz_carriers", "viz_delays"));
  wf.interactions.push_back(
      Interaction::SetSelection("viz_carriers", selection));
  return wf;
}

}  // namespace

int main() {
  bench::Banner(
      "Experiment 3 / Figure 6f: think time vs missing bins "
      "(speculative progressive engine), TR=3s");

  auto catalog = bench::Unwrap(core::BuildFlightsCatalog(bench::BenchDataset()),
                               "build catalog");
  auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);

  // Select the most popular carrier — the likeliest user selection, and
  // the one the popularity-weighted speculation invests the most in.
  const storage::Column* carrier_col =
      catalog->fact_table()->ColumnByName("carrier");
  const std::string carrier_label = carrier_col->dictionary().At(0);
  const workflow::Workflow wf =
      MakeExp3Workflow(*catalog->fact_table(), carrier_label);

  std::printf("selected carrier: %s\n", carrier_label.c_str());
  std::printf("%-12s %14s %14s %14s\n", "think_time", "speculative",
              "no_speculation", "spec_hits");

  for (int think = 1; think <= 10; ++think) {
    double missing[2] = {0.0, 0.0};
    int64_t hits = 0;
    for (int speculative = 1; speculative >= 0; --speculative) {
      engines::ProgressiveEngineConfig config;
      // Calibrate the sampler to the materialized scale: TR = 3 s covers
      // ~25 % of the table (after complexity surcharges) — the regime
      // where per-bin expected sample counts are O(1) and the speculative
      // head start is observable.  At the paper's true 500 M scale the
      // same regime arises naturally from the filtered 2-D tail bins.
      config.sample_us_per_row =
          3e6 / (0.5 * static_cast<double>(
                            catalog->fact_table()->num_rows()));
      config.enable_speculation = speculative != 0;
      engines::ProgressiveEngine engine(config);

      driver::Settings settings;
      settings.time_requirement = SecondsToMicros(3.0);
      settings.think_time = SecondsToMicros(static_cast<double>(think));
      settings.data_size_label = core::DataSizeLabel(catalog->nominal_rows());
      driver::BenchmarkDriver driver(settings, &engine, catalog, oracle);
      bench::CheckOk(driver.PrepareEngine().status(), "prepare");

      std::vector<driver::QueryRecord> records;
      bench::CheckOk(driver.RunWorkflow(wf, &records), "run workflow");
      // The metric of interest: missing bins of the final heat-map update
      // (the query triggered by the carrier selection).
      missing[speculative] = records.back().metrics.missing_bins;
      if (speculative != 0) hits = engine.speculation_hits();
    }
    std::printf("%11ds %14s %14s %14lld\n", think,
                FormatPercent(missing[1]).c_str(),
                FormatPercent(missing[0]).c_str(),
                static_cast<long long>(hits));
  }

  std::printf(
      "\npaper shape check: with speculation, missing bins decrease as the\n"
      "think time grows (the speculative query accrues processing time);\n"
      "without speculation they stay flat.\n");
  return 0;
}
