/// \file bench_exp5_systemy.cc
/// Reproduces **Experiment 5** (§5.6): a commercial IDE frontend
/// (System Y) layered over a blocking DBMS backend, on three variants of
/// the 1:N workflow type at 500 M.  The question: does the layer
/// pre-fetch/pre-compute (like IDEA's speculative extension)?  Answer in
/// the paper — no: it performs like the backend plus a 1–2 s rendering
/// delay per query.

#include "bench/bench_util.h"

using namespace idebench;

int main() {
  bench::Banner("Experiment 5 / Sec 5.6: frontend layer over a DBMS, 500M");

  auto catalog = bench::Unwrap(core::BuildFlightsCatalog(bench::BenchDataset()),
                               "build catalog");
  auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);
  // Three variants of the 1:N workflow type.
  const auto workflows = bench::MakeWorkflows(
      catalog->fact_table(), {workflow::WorkflowType::kOneToN}, 3,
      /*seed=*/13);

  const std::vector<double> kTimeRequirements = {5.0, 10.0};
  std::printf("%-20s %6s %10s %16s %16s\n", "engine", "TR", "tr_viol",
              "mean query time", "mean overhead");

  for (const std::string& engine : {std::string("blocking"),
                                    std::string("frontend")}) {
    for (double tr : kTimeRequirements) {
      std::vector<driver::QueryRecord> records;
      bench::RunEngineSweep(engine, catalog, oracle, workflows, {tr},
                            /*think_time_s=*/3.0, &records);
      int64_t violations = 0;
      double total_time = 0.0;
      for (const auto& r : records) {
        if (r.metrics.tr_violated) ++violations;
        total_time += MicrosToSeconds(r.end_time - r.start_time);
      }
      const double mean_time = total_time / static_cast<double>(records.size());
      std::printf("%-20s %5.1fs %10s %15.2fs %16s\n", engine.c_str(), tr,
                  FormatPercent(static_cast<double>(violations) /
                                static_cast<double>(records.size()))
                      .c_str(),
                  mean_time, engine == "blocking" ? "-" : "(see delta)");
    }
  }

  // Direct comparison of completion times per query id.
  std::vector<driver::QueryRecord> backend_records;
  std::vector<driver::QueryRecord> layered_records;
  bench::RunEngineSweep("blocking", catalog, oracle, workflows, {10.0}, 3.0,
                        &backend_records);
  bench::RunEngineSweep("frontend", catalog, oracle, workflows, {10.0}, 3.0,
                        &layered_records);
  double delta_sum = 0.0;
  int n = 0;
  for (size_t i = 0;
       i < std::min(backend_records.size(), layered_records.size()); ++i) {
    if (backend_records[i].metrics.tr_violated ||
        layered_records[i].metrics.tr_violated) {
      continue;
    }
    delta_sum += MicrosToSeconds(
        (layered_records[i].end_time - layered_records[i].start_time) -
        (backend_records[i].end_time - backend_records[i].start_time));
    ++n;
  }
  std::printf(
      "\nper-query completion delta (frontend - backend): %.2fs mean over "
      "%d queries\n",
      n > 0 ? delta_sum / n : 0.0, n);
  std::printf(
      "\npaper shape check: the layer updates visualizations at backend "
      "speed\nplus ~1-2s per query (rendering); no evidence of "
      "pre-fetching.\n");
  return 0;
}
