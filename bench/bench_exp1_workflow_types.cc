/// \file bench_exp1_workflow_types.cc
/// Reproduces **Figure 6d** (Experiment 1): the proportion of missing
/// bins by system and workflow type (independent browsing, sequential,
/// 1:N, N:1), 10 workflows per type, TR = 3 s, 500 M.

#include "bench/bench_util.h"

using namespace idebench;

int main() {
  const std::vector<workflow::WorkflowType> kTypes = {
      workflow::WorkflowType::kIndependent, workflow::WorkflowType::kSequential,
      workflow::WorkflowType::kOneToN, workflow::WorkflowType::kNToOne};
  const std::vector<std::string> kEngines = {"blocking", "online",
                                             "progressive", "stratified"};
  const double kTr = 3.0;

  bench::Banner(
      "Experiment 1 / Figure 6d: missing bins by workflow type, TR=3s");

  auto catalog = bench::Unwrap(core::BuildFlightsCatalog(bench::BenchDataset()),
                               "build catalog");
  auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);
  const auto workflows = bench::MakeWorkflows(
      catalog->fact_table(), kTypes, bench::WorkflowsOverride(10));

  std::vector<driver::QueryRecord> records;
  for (const std::string& engine : kEngines) {
    bench::RunEngineSweep(engine, catalog, oracle, workflows, {kTr}, 1.0,
                          &records);
  }

  std::printf("%-14s", "engine");
  for (auto type : kTypes) {
    std::printf(" %12s", workflow::WorkflowTypeName(type));
  }
  std::printf("\n");
  // Figure 6d reports missing bins over *all* queries (violations deliver
  // nothing and count as fully missing), which is what separates the
  // blocking engine by workflow type.
  for (const auto& engine : kEngines) {
    std::printf("%-14s", engine.c_str());
    for (auto type : kTypes) {
      double total = 0.0;
      int n = 0;
      for (const auto& r : records) {
        if (r.driver_name != engine ||
            r.workflow_type != workflow::WorkflowTypeName(type)) {
          continue;
        }
        total += r.metrics.tr_violated ? 1.0 : r.metrics.missing_bins;
        ++n;
      }
      std::printf(" %12s", FormatPercent(n > 0 ? total / n : 0.0).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\npaper shape check: few significant differences across types; the\n"
      "blocking engine does best on independent/N:1 workflows whose\n"
      "interactions trigger only a single query.\n");
  return 0;
}
