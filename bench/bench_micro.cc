/// \file bench_micro.cc
/// google-benchmark micro-benchmarks of the substrate operators: filtered
/// scan + binned aggregation, join-index build/probe, samplers, the data
/// scaler, and workflow generation.  These are throughput sanity checks
/// for the cost model's *real* counterparts, not paper artifacts.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "aqp/sampler.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/dataset.h"
#include "datagen/cholesky_scaler.h"
#include "datagen/flights_seed.h"
#include "driver/ground_truth.h"
#include "engines/blocking_engine.h"
#include "engines/progressive_engine.h"
#include "exec/aggregator.h"
#include "exec/bound_query.h"
#include "exec/parallel.h"
#include "exec/segment_scan.h"
#include "ingest/ingest.h"
#include "session/session.h"
#include "storage/segment.h"
#include "workflow/generator.h"

namespace {

using namespace idebench;

/// Shared medium dataset wrapped in a catalog (built once).
std::shared_ptr<storage::Catalog> SharedCatalog() {
  static std::shared_ptr<storage::Catalog> catalog = [] {
    datagen::FlightsSeedConfig config;
    config.rows = 100'000;
    config.seed = 3;
    auto t = datagen::GenerateFlightsSeed(config);
    IDB_CHECK(t.ok());
    auto c = std::make_shared<storage::Catalog>();
    IDB_CHECK(c->AddTable(std::make_shared<storage::Table>(
                              std::move(t).MoveValueUnsafe()))
                  .ok());
    return c;
  }();
  return catalog;
}

const storage::Table& SharedTable() { return *SharedCatalog()->fact_table(); }

query::QuerySpec CountByCarrierSpec() {
  query::QuerySpec spec;
  spec.viz_name = "bench";
  query::BinDimension d;
  d.column = "carrier";
  d.mode = query::BinningMode::kNominal;
  spec.bins = {d};
  query::AggregateSpec agg;
  agg.type = query::AggregateType::kCount;
  spec.aggregates = {agg};
  IDB_CHECK(spec.ResolveBins(*SharedCatalog()).ok());
  return spec;
}

/// The sampled-aggregation hot loop: a shuffled walk over the fact table
/// feeding a filtered, binned COUNT + AVG — the per-row work every
/// sampling engine performs.  Three variants trace the perf trajectory:
/// scalar reference, vectorized kernels + hash bin table, and vectorized
/// kernels + dense bin table (the default).  Run
///   bench_micro --benchmark_filter=HotLoop --benchmark_format=json
/// to emit the JSON recorded in BENCH_vectorized_pipeline.json.
query::QuerySpec HotLoopSpec() {
  query::QuerySpec spec;
  spec.viz_name = "hot_loop";
  query::BinDimension d;
  d.column = "dep_delay";
  d.mode = query::BinningMode::kFixedCount;
  d.requested_bins = 25;
  spec.bins = {d};
  query::AggregateSpec count;
  count.type = query::AggregateType::kCount;
  query::AggregateSpec avg;
  avg.type = query::AggregateType::kAvg;
  avg.column = "distance";
  spec.aggregates = {count, avg};
  expr::Predicate p;
  p.column = "air_time";
  p.op = expr::CompareOp::kRange;
  p.lo = 50;
  p.hi = 200;
  spec.filter.And(p);
  IDB_CHECK(spec.ResolveBins(*SharedCatalog()).ok());
  return spec;
}

/// Shuffled row order shared by the hot-loop variants (sampling engines
/// walk a random permutation, not the physical order).
const std::vector<int64_t>& SharedWalk() {
  static const std::vector<int64_t> walk = [] {
    Rng rng(17);
    aqp::ShuffledIndex index(SharedTable().num_rows(), &rng);
    return index.permutation();
  }();
  return walk;
}

void BM_HotLoopScalar(benchmark::State& state) {
  auto catalog = SharedCatalog();
  query::QuerySpec spec = HotLoopSpec();
  auto bound = exec::BoundQuery::Bind(spec, *catalog);
  IDB_CHECK(bound.ok());
  const std::vector<int64_t>& walk = SharedWalk();
  exec::BinnedAggregatorOptions options;
  options.enable_vectorized = false;
  for (auto _ : state) {
    exec::BinnedAggregator agg(&*bound, options);
    for (int64_t row : walk) agg.ProcessRow(row);
    benchmark::DoNotOptimize(agg.rows_matched());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(walk.size()));
}
BENCHMARK(BM_HotLoopScalar);

void BM_HotLoopVectorizedHashBins(benchmark::State& state) {
  auto catalog = SharedCatalog();
  query::QuerySpec spec = HotLoopSpec();
  auto bound = exec::BoundQuery::Bind(spec, *catalog);
  IDB_CHECK(bound.ok());
  const std::vector<int64_t>& walk = SharedWalk();
  exec::BinnedAggregatorOptions options;
  options.enable_dense_bins = false;
  for (auto _ : state) {
    exec::BinnedAggregator agg(&*bound, options);
    agg.ProcessBatch(walk.data(), static_cast<int64_t>(walk.size()));
    benchmark::DoNotOptimize(agg.rows_matched());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(walk.size()));
}
BENCHMARK(BM_HotLoopVectorizedHashBins);

/// Two-phase reference (fused plan disabled): the PR-1/PR-2 pipeline with
/// per-row bin kernels — what `BM_HotLoopVectorized` measured before the
/// fused kernels landed.
void BM_HotLoopTwoPhase(benchmark::State& state) {
  auto catalog = SharedCatalog();
  query::QuerySpec spec = HotLoopSpec();
  auto bound = exec::BoundQuery::Bind(spec, *catalog);
  IDB_CHECK(bound.ok());
  const std::vector<int64_t>& walk = SharedWalk();
  exec::BinnedAggregatorOptions options;
  options.enable_fused = false;
  for (auto _ : state) {
    exec::BinnedAggregator agg(&*bound, options);
    IDB_CHECK(!agg.uses_fused());
    agg.ProcessBatch(walk.data(), static_cast<int64_t>(walk.size()));
    benchmark::DoNotOptimize(agg.rows_matched());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(walk.size()));
}
BENCHMARK(BM_HotLoopTwoPhase);

void BM_HotLoopVectorized(benchmark::State& state) {
  auto catalog = SharedCatalog();
  query::QuerySpec spec = HotLoopSpec();
  auto bound = exec::BoundQuery::Bind(spec, *catalog);
  IDB_CHECK(bound.ok());
  const std::vector<int64_t>& walk = SharedWalk();
  for (auto _ : state) {
    exec::BinnedAggregator agg(&*bound);
    IDB_CHECK(agg.uses_dense_bins());
    agg.ProcessBatch(walk.data(), static_cast<int64_t>(walk.size()));
    benchmark::DoNotOptimize(agg.rows_matched());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(walk.size()));
}
BENCHMARK(BM_HotLoopVectorized);

/// Morsel-parallel variant of the hot loop: the same shuffled walk, fed
/// through exec::MorselProcessShuffled at 1/2/4/8 worker threads.  The
/// walk is repeated `kWalkRepeats` times per iteration so it spans many
/// 64K-row morsels (a single pass over the 100K-row table is barely two).
/// Run
///   bench_micro --benchmark_filter=HotLoop --benchmark_format=json
/// to emit the JSON recorded in BENCH_parallel_pipeline.json.
void BM_HotLoopParallel(benchmark::State& state) {
  constexpr int64_t kWalkRepeats = 8;
  const int threads = static_cast<int>(state.range(0));
  auto catalog = SharedCatalog();
  query::QuerySpec spec = HotLoopSpec();
  auto bound = exec::BoundQuery::Bind(spec, *catalog);
  IDB_CHECK(bound.ok());
  static const aqp::ShuffledIndex* walk_order = [] {
    Rng rng(17);
    return new aqp::ShuffledIndex(SharedTable().num_rows(), &rng);
  }();
  const int64_t count = kWalkRepeats * walk_order->size();
  for (auto _ : state) {
    exec::BinnedAggregator agg(&*bound);
    exec::MorselProcessShuffled(&agg, *walk_order, 0, count, threads);
    benchmark::DoNotOptimize(agg.rows_matched());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
// Wall-clock measurement: the work happens on pool threads, so the
// default main-thread CPU-time metric would wildly overstate throughput.
BENCHMARK(BM_HotLoopParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Zone-map block pruning on the full-scan path: a time-ordered fact
/// table (monotone `day` column, the append-ordered case zone maps are
/// built for) scanned end to end under a selective day-range filter.
/// Arg 0 = pruning off, arg 1 = on; the on-variant reports how many rows
/// and 64K blocks the fact-column zone maps excluded.  Run
///   bench_micro --benchmark_filter=ZoneMap --benchmark_format=json
/// to emit the JSON recorded in BENCH_fused_kernels.json.
std::shared_ptr<storage::Catalog> ClusteredCatalog() {
  static std::shared_ptr<storage::Catalog> catalog = [] {
    constexpr int64_t kScanRows = 2'000'000;
    constexpr int64_t kDays = 64;
    storage::Schema schema({
        {"day", storage::DataType::kInt64,
         storage::AttributeKind::kQuantitative},
        {"metric", storage::DataType::kDouble,
         storage::AttributeKind::kQuantitative},
    });
    auto table = std::make_shared<storage::Table>("events", schema);
    table->mutable_column(0).Reserve(kScanRows);
    table->mutable_column(1).Reserve(kScanRows);
    Rng rng(41);
    for (int64_t i = 0; i < kScanRows; ++i) {
      table->mutable_column(0).AppendInt(i / (kScanRows / kDays));
      table->mutable_column(1).AppendDouble(rng.Uniform(0.0, 100.0));
    }
    auto c = std::make_shared<storage::Catalog>();
    IDB_CHECK(c->AddTable(table).ok());
    return c;
  }();
  return catalog;
}

void BM_ZoneMapFullScan(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  auto catalog = ClusteredCatalog();
  const int64_t rows = catalog->fact_table()->num_rows();

  query::QuerySpec spec;
  spec.viz_name = "zone_scan";
  query::BinDimension d;
  d.column = "metric";
  d.mode = query::BinningMode::kFixedCount;
  d.requested_bins = 20;
  spec.bins = {d};
  query::AggregateSpec count;
  count.type = query::AggregateType::kCount;
  query::AggregateSpec avg;
  avg.type = query::AggregateType::kAvg;
  avg.column = "metric";
  spec.aggregates = {count, avg};
  expr::Predicate p;
  p.column = "day";
  p.op = expr::CompareOp::kRange;
  p.lo = 20;
  p.hi = 24;  // ~4/64 days ≈ 2 of 31 zone blocks survive
  spec.filter.And(p);
  IDB_CHECK(spec.ResolveBins(*catalog).ok());
  auto bound = exec::BoundQuery::Bind(spec, *catalog);
  IDB_CHECK(bound.ok());

  exec::BinnedAggregatorOptions options;
  options.enable_zone_pruning = prune;
  int64_t rows_skipped = 0;
  int64_t blocks_skipped = 0;
  for (auto _ : state) {
    exec::BinnedAggregator agg(&*bound, options);
    agg.ProcessRange(0, rows);
    rows_skipped = agg.zone_rows_skipped();
    blocks_skipped = agg.zone_blocks_skipped();
    benchmark::DoNotOptimize(agg.rows_matched());
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["zone_rows_skipped"] =
      static_cast<double>(rows_skipped);
  state.counters["zone_blocks_skipped"] =
      static_cast<double>(blocks_skipped);
}
BENCHMARK(BM_ZoneMapFullScan)->Arg(0)->Arg(1);

/// Repeated-refinement workflow through the blocking engine: a base
/// filtered aggregation followed by five drill-down steps that each AND
/// one more (or a narrower) predicate — the canonical IDEBench
/// interaction sequence.  With the cross-interaction reuse cache on,
/// step k+1 replays only step k's candidate rows instead of rescanning
/// the full table, so physical work tracks the shrinking selectivity.
/// Results are bit-identical either way (the transparency contract of
/// exec/reuse_cache.h); only wall-clock changes.  Run
///   bench_micro --benchmark_filter=RefinementWorkflow
///               --benchmark_format=json
/// to emit the JSON recorded in BENCH_reuse_cache.json.
void BM_RefinementWorkflow(benchmark::State& state) {
  const bool reuse = state.range(0) != 0;
  auto catalog = SharedCatalog();

  // The drill-down chain: each step's filter refines the previous one.
  // Selectivities follow the workflow generator's brush/filter ranges
  // (base ~25 %, refinements narrowing toward a few percent).
  std::vector<query::QuerySpec> steps;
  {
    query::QuerySpec base = HotLoopSpec();
    expr::Predicate air = base.filter.predicates()[0];  // air_time range
    air.lo = 50;
    air.hi = 90;  // ~25 % of rows
    base.filter = expr::FilterExpr({air});
    steps.push_back(base);
    expr::Predicate narrow = air;
    narrow.hi = 70;  // ~13 %
    query::QuerySpec s1 = base;
    s1.filter = expr::FilterExpr({narrow});
    steps.push_back(s1);
    expr::Predicate dist;
    dist.column = "distance";
    dist.op = expr::CompareOp::kRange;
    dist.lo = 200;
    dist.hi = 500;
    query::QuerySpec s2 = s1;
    s2.filter.And(dist);
    steps.push_back(s2);
    expr::Predicate delay;
    delay.column = "dep_delay";
    delay.op = expr::CompareOp::kRange;
    delay.lo = 0;
    delay.hi = 20;
    query::QuerySpec s3 = s2;
    s3.filter.And(delay);
    steps.push_back(s3);
    steps.push_back(s3);  // linked-viz update re-triggers the same query
    expr::Predicate tight = dist;
    tight.lo = 250;
    tight.hi = 450;
    query::QuerySpec s5 = s3;
    s5.filter.ReplaceOn(tight);
    steps.push_back(s5);
    // The user toggles between the two drill-down views (A/B
    // comparison): every toggle resubmits a previously seen query.
    steps.push_back(s5);
    steps.push_back(s3);
    steps.push_back(s5);
  }

  int64_t rows_total = 0;
  for (auto _ : state) {
    engines::BlockingEngineConfig config;
    config.query_overhead_us = 0;
    config.reuse_cache = reuse;
    engines::BlockingEngine engine(config);
    IDB_CHECK(engine.Prepare(catalog).ok());
    for (const query::QuerySpec& spec : steps) {
      auto handle = engine.Submit(spec);
      IDB_CHECK(handle.ok());
      while (!engine.IsDone(*handle)) {
        engine.RunFor(*handle, 60'000'000'000LL);
      }
      auto result = engine.PollResult(*handle);
      IDB_CHECK(result.ok());
      benchmark::DoNotOptimize(result->bins.size());
      engine.Cancel(*handle);  // snapshots into the reuse cache
      rows_total += SharedTable().num_rows();
    }
  }
  state.SetItemsProcessed(rows_total);
  state.SetLabel(reuse ? "reuse_cache=on" : "reuse_cache=off");
}
BENCHMARK(BM_RefinementWorkflow)->Arg(0)->Arg(1);

/// Multi-session serving sweep (1/4/16/64 concurrent dashboards): each
/// session replays its own generated mixed workflow against ONE shared
/// progressive engine through the session scheduler
/// (session/session.h) — round-robin time slices, per-query deadlines,
/// push-based result delivery.  Total per-query work is fixed, so the
/// sweep isolates the multiplexing overhead and the contention penalty's
/// fair budget division.  Run
///   bench_micro --benchmark_filter=SessionConcurrency
///               --benchmark_format=json
/// to emit the JSON recorded in BENCH_session_concurrency.json.
void BM_SessionConcurrency(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  static std::vector<workflow::Workflow>* workflows = [] {
    auto* out = new std::vector<workflow::Workflow>();
    workflow::GeneratorConfig config;
    for (int s = 0; s < 64; ++s) {
      workflow::WorkflowGenerator generator(&SharedTable(), config,
                                            static_cast<uint64_t>(s) + 1);
      auto wf = generator.Generate(workflow::WorkflowType::kMixed,
                                   "session_" + std::to_string(s));
      IDB_CHECK(wf.ok());
      out->push_back(std::move(wf).MoveValueUnsafe());
    }
    return out;
  }();

  class CountingSink : public idebench::session::ResultSink {
   public:
    void OnUpdate(const idebench::session::ProgressiveUpdate& u) override {
      ++updates;
      if (u.final_update && u.cancelled) ++cancelled;
    }
    int64_t updates = 0;
    int64_t cancelled = 0;
  };

  int64_t queries = 0;
  int64_t updates = 0;
  int64_t cancelled = 0;
  for (auto _ : state) {
    engines::ProgressiveEngineConfig config;
    config.query_overhead_us = 0;
    config.restart_overhead_us = 0;
    engines::ProgressiveEngine engine(config);
    IDB_CHECK(engine.Prepare(SharedCatalog()).ok());

    idebench::session::SessionManagerOptions opts;
    opts.time_requirement = 250'000;
    opts.quantum = 50'000;
    opts.contention_penalty = 0.1;
    CountingSink sink;  // must outlive the manager
    idebench::session::SessionManager manager(opts, &engine, SharedCatalog());
    std::vector<idebench::session::SessionReplay> runs;
    for (int s = 0; s < sessions; ++s) {
      auto created = manager.CreateSession(&sink);
      IDB_CHECK(created.ok());
      runs.push_back({*created, &(*workflows)[static_cast<size_t>(s)]});
    }
    IDB_CHECK(idebench::session::ReplaySessionsToCompletion(&manager, runs,
                                                            /*think_time=*/0)
                  .ok());
    const idebench::session::SchedulerStats stats = manager.stats();
    IDB_CHECK(stats.max_deadline_overshoot == 0);  // fairness guarantee
    queries += stats.queries_submitted;
    updates += sink.updates;
    cancelled += sink.cancelled;
  }
  state.SetItemsProcessed(queries);
  state.counters["updates"] =
      benchmark::Counter(static_cast<double>(updates));
  state.counters["tr_cancelled"] =
      benchmark::Counter(static_cast<double>(cancelled));
}
BENCHMARK(BM_SessionConcurrency)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ScanBinnedCount(benchmark::State& state) {
  auto catalog = SharedCatalog();
  query::QuerySpec spec = CountByCarrierSpec();
  auto bound = exec::BoundQuery::Bind(spec, *catalog);
  IDB_CHECK(bound.ok());
  for (auto _ : state) {
    exec::BinnedAggregator agg(&*bound);
    agg.ProcessRange(0, SharedTable().num_rows());
    benchmark::DoNotOptimize(agg.rows_matched());
  }
  state.SetItemsProcessed(state.iterations() * SharedTable().num_rows());
}
BENCHMARK(BM_ScanBinnedCount);

void BM_ScanFilteredAvg2D(benchmark::State& state) {
  auto catalog = SharedCatalog();
  query::QuerySpec spec;
  spec.viz_name = "bench2d";
  query::BinDimension d1;
  d1.column = "dep_delay";
  d1.mode = query::BinningMode::kFixedCount;
  d1.requested_bins = 25;
  query::BinDimension d2;
  d2.column = "arr_delay";
  d2.mode = query::BinningMode::kFixedCount;
  d2.requested_bins = 25;
  spec.bins = {d1, d2};
  query::AggregateSpec agg;
  agg.type = query::AggregateType::kAvg;
  agg.column = "distance";
  spec.aggregates = {agg};
  expr::Predicate p;
  p.column = "air_time";
  p.op = expr::CompareOp::kRange;
  p.lo = 50;
  p.hi = 200;
  spec.filter.And(p);
  IDB_CHECK(spec.ResolveBins(*catalog).ok());
  auto bound = exec::BoundQuery::Bind(spec, *catalog);
  IDB_CHECK(bound.ok());
  for (auto _ : state) {
    exec::BinnedAggregator agg_exec(&*bound);
    agg_exec.ProcessRange(0, SharedTable().num_rows());
    benchmark::DoNotOptimize(agg_exec.rows_matched());
  }
  state.SetItemsProcessed(state.iterations() * SharedTable().num_rows());
}
BENCHMARK(BM_ScanFilteredAvg2D);

void BM_StratifiedSampleBuild(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    auto sample =
        aqp::BuildStratifiedSample(SharedTable(), "carrier", 0.01, 50, &rng);
    IDB_CHECK(sample.ok());
    benchmark::DoNotOptimize(sample->size());
  }
  state.SetItemsProcessed(state.iterations() * SharedTable().num_rows());
}
BENCHMARK(BM_StratifiedSampleBuild);

void BM_ShuffledIndexBuild(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    aqp::ShuffledIndex index(SharedTable().num_rows(), &rng);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * SharedTable().num_rows());
}
BENCHMARK(BM_ShuffledIndexBuild);

void BM_FlightsSeedGeneration(benchmark::State& state) {
  datagen::FlightsSeedConfig config;
  config.rows = state.range(0);
  config.seed = 5;
  for (auto _ : state) {
    auto t = datagen::GenerateFlightsSeed(config);
    IDB_CHECK(t.ok());
    benchmark::DoNotOptimize(t->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * config.rows);
}
BENCHMARK(BM_FlightsSeedGeneration)->Arg(10'000)->Arg(50'000);

void BM_CholeskyScale(benchmark::State& state) {
  datagen::ScalerConfig config;
  config.target_rows = state.range(0);
  config.sample_size = 10'000;
  config.derived = datagen::FlightsDerivedColumns();
  for (auto _ : state) {
    auto t = datagen::ScaleDataset(SharedTable(), config);
    IDB_CHECK(t.ok());
    benchmark::DoNotOptimize(t->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * config.target_rows);
}
BENCHMARK(BM_CholeskyScale)->Arg(10'000)->Arg(100'000);

void BM_WorkflowGeneration(benchmark::State& state) {
  workflow::GeneratorConfig config;
  uint64_t seed = 0;
  for (auto _ : state) {
    workflow::WorkflowGenerator generator(&SharedTable(), config, ++seed);
    auto wf = generator.Generate(workflow::WorkflowType::kMixed, "bench");
    IDB_CHECK(wf.ok());
    benchmark::DoNotOptimize(wf->size());
  }
}
BENCHMARK(BM_WorkflowGeneration);

// --- Compressed segment scan (storage/segment.h + exec/segment_scan.h) -----
//
// Packed-vs-flat scan over a 2M-row table.  Two query shapes:
//  * Selective: COUNT by `bucket` filtered to one rare tag that occurs in
//    a single segment — zone + dictionary-bitset pruning let the packed
//    scan skip ~97% of the payload the flat scan walks.
//  * RleCount: unfiltered all-COUNT by `bucket` (RLE in every segment) —
//    the run fast path answers per run instead of per row.
// Run
//   bench_micro --benchmark_filter=SegmentScan --benchmark_format=json
// to emit the JSON recorded in BENCH_segment_scan.json.

constexpr int64_t kSegBenchRows = 2'000'000;

std::shared_ptr<storage::Catalog> SegBenchCatalog() {
  static const std::shared_ptr<storage::Catalog> catalog = [] {
    storage::Schema schema({
        {"bucket", storage::DataType::kInt64,
         storage::AttributeKind::kNominal},
        {"narrow", storage::DataType::kInt64,
         storage::AttributeKind::kNominal},
        {"value", storage::DataType::kDouble,
         storage::AttributeKind::kQuantitative},
        {"tag", storage::DataType::kString,
         storage::AttributeKind::kNominal},
    });
    auto t = std::make_shared<storage::Table>("segbench", schema);
    Rng rng(57);
    for (int64_t i = 0; i < kSegBenchRows; ++i) {
      t->mutable_column(0).AppendInt(i / 8192);  // sorted runs -> RLE
      t->mutable_column(1).AppendInt(100 + rng.UniformInt(0, 250));
      t->mutable_column(2).AppendDouble(rng.Uniform(-100.0, 100.0));
      // "rare" only in rows [65536, 131072) — one segment.
      const bool rare_zone = i >= storage::kSegmentRows &&
                             i < 2 * storage::kSegmentRows;
      if (rare_zone && rng.Bernoulli(0.01)) {
        t->mutable_column(3).AppendString("rare");
      } else {
        t->mutable_column(3).AppendString(
            rng.Bernoulli(0.5) ? "common_a" : "common_b");
      }
    }
    auto c = std::make_shared<storage::Catalog>();
    IDB_CHECK(c->AddTable(std::move(t)).ok());
    return c;
  }();
  return catalog;
}

const storage::Table& SegBenchTable() {
  return *SegBenchCatalog()->fact_table();
}

const storage::SegmentFile& SegBenchFile() {
  static const storage::SegmentFile* file = [] {
    const std::string path = "/tmp/idebench_segbench.seg";
    IDB_CHECK(storage::WriteSegmentFile(SegBenchTable(), path).ok());
    auto opened = storage::SegmentFile::Open(path);
    IDB_CHECK(opened.ok());
    return new storage::SegmentFile(std::move(opened).MoveValueUnsafe());
  }();
  return *file;
}

query::QuerySpec SegBenchSpec(bool selective) {
  query::QuerySpec spec;
  spec.viz_name = "segbench";
  query::BinDimension d;
  d.column = "bucket";
  d.mode = query::BinningMode::kNominal;
  spec.bins = {d};
  query::AggregateSpec count;
  count.type = query::AggregateType::kCount;
  spec.aggregates = {count};
  if (selective) {
    expr::Predicate eq;
    eq.column = "tag";
    eq.op = expr::CompareOp::kEq;
    eq.value = static_cast<double>(
        SegBenchTable().column(3).dictionary().Lookup("rare"));
    spec.filter.And(eq);
  }
  IDB_CHECK(spec.ResolveBins(*SegBenchCatalog()).ok());
  return spec;
}

void BM_SegmentScanFlat(benchmark::State& state) {
  const bool selective = state.range(0) != 0;
  auto catalog = SegBenchCatalog();
  query::QuerySpec spec = SegBenchSpec(selective);
  for (auto _ : state) {
    // Bind inside the loop: the packed side re-binds per Create, and a
    // real query pays binding each time on either path.
    auto bound = exec::BoundQuery::Bind(spec, *catalog);
    IDB_CHECK(bound.ok());
    exec::BinnedAggregator agg(&*bound);
    agg.ProcessRange(0, kSegBenchRows);
    benchmark::DoNotOptimize(agg.rows_matched());
  }
  state.SetItemsProcessed(state.iterations() * kSegBenchRows);
}
BENCHMARK(BM_SegmentScanFlat)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SegmentScanPacked(benchmark::State& state) {
  const bool selective = state.range(0) != 0;
  query::QuerySpec spec = SegBenchSpec(selective);
  SegBenchFile();  // pack once outside the timed region
  exec::SegmentScanStats stats;
  for (auto _ : state) {
    auto scanner = exec::SegmentTableScanner::Create(&SegBenchFile(), spec);
    IDB_CHECK(scanner.ok());
    IDB_CHECK((*scanner)->Execute().ok());
    benchmark::DoNotOptimize((*scanner)->aggregator().rows_matched());
    stats = (*scanner)->stats();
  }
  state.SetItemsProcessed(state.iterations() * kSegBenchRows);
  state.counters["payload_bytes"] =
      benchmark::Counter(static_cast<double>(stats.payload_bytes_touched));
  state.counters["rows_skipped"] =
      benchmark::Counter(static_cast<double>(stats.rows_skipped));
  state.counters["segments_pruned_zone"] =
      benchmark::Counter(static_cast<double>(stats.segments_pruned_zone));
  state.counters["segments_pruned_dict"] =
      benchmark::Counter(static_cast<double>(stats.segments_pruned_dict));
  state.counters["segments_filter_fastpath"] =
      benchmark::Counter(static_cast<double>(stats.segments_filter_fastpath));
}
BENCHMARK(BM_SegmentScanPacked)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_GroundTruthQuery(benchmark::State& state) {
  auto catalog = SharedCatalog();
  query::QuerySpec spec = CountByCarrierSpec();
  for (auto _ : state) {
    driver::GroundTruthOracle oracle(catalog);  // cold cache each time
    auto truth = oracle.Get(spec);
    IDB_CHECK(truth.ok());
    benchmark::DoNotOptimize((*truth)->bins.size());
  }
  state.SetItemsProcessed(state.iterations() * SharedTable().num_rows());
}
BENCHMARK(BM_GroundTruthQuery);

// --- Streaming ingest while serving ----------------------------------------
//
// A dashboard re-renders its filtered aggregation after every published
// ingest epoch (10 epochs x 1000 rows onto a 100K-row base).  With
// delta maintenance (the default) each re-render serves the cached
// snapshot and scans only the epoch's delta rows; the
// invalidate-on-growth baseline drops the entry at every publish and
// rescans from zero.  Results are bit-identical either way
// (tests/workflow_fuzz_test.cc ingest sweep); only physical work moves.
// Run
//   bench_micro --benchmark_filter=IngestWhileServing
//               --benchmark_format=json
// to emit the JSON recorded in BENCH_ingest.json.

/// Base rows plus every epoch's tail, generated once.
std::shared_ptr<storage::Table> IngestBenchSource() {
  static const std::shared_ptr<storage::Table> source = [] {
    datagen::FlightsSeedConfig config;
    config.rows = 110'000;
    config.seed = 3;
    auto t = datagen::GenerateFlightsSeed(config);
    IDB_CHECK(t.ok());
    return std::make_shared<storage::Table>(std::move(t).MoveValueUnsafe());
  }();
  return source;
}

void BM_IngestWhileServing(benchmark::State& state) {
  const bool delta = state.range(0) != 0;
  constexpr int64_t kBase = 100'000;
  constexpr int kEpochs = 10;
  constexpr int64_t kEpochRows = 1'000;
  auto source = IngestBenchSource();

  const auto run_to_completion = [](engines::BlockingEngine* engine,
                                    const query::QuerySpec& spec) {
    auto handle = engine->Submit(spec);
    IDB_CHECK(handle.ok());
    while (!engine->IsDone(*handle)) {
      engine->RunFor(*handle, 60'000'000'000LL);
    }
    auto result = engine->PollResult(*handle);
    IDB_CHECK(result.ok());
    benchmark::DoNotOptimize(result->bins.size());
    engine->Cancel(*handle);  // snapshots into the reuse cache
  };

  int64_t rows_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto fact =
        std::make_shared<storage::Table>(source->name(), source->schema());
    for (int64_t r = 0; r < kBase; ++r) {
      IDB_CHECK(fact->AppendRowFrom(*source, r).ok());
    }
    auto catalog = std::make_shared<storage::Catalog>();
    IDB_CHECK(catalog->AddTable(fact).ok());
    auto ingestor = ingest::Ingestor::Create(catalog, source->num_rows());
    IDB_CHECK(ingestor.ok());

    engines::BlockingEngineConfig config;
    config.query_overhead_us = 0;
    engines::BlockingEngine engine(config);
    exec::ReuseCacheOptions cache_options;
    cache_options.invalidate_on_growth = !delta;
    engine.EnableReuseCache(cache_options);
    IDB_CHECK(engine.Prepare(catalog).ok());

    // The dashboard's standing query: filtered, binned COUNT + AVG,
    // ~25 % selective.  Resolved once — re-renders reuse the binding.
    query::QuerySpec spec;
    spec.viz_name = "ingest_bench";
    query::BinDimension d;
    d.column = "carrier";
    d.mode = query::BinningMode::kNominal;
    spec.bins = {d};
    query::AggregateSpec count;
    count.type = query::AggregateType::kCount;
    query::AggregateSpec avg;
    avg.type = query::AggregateType::kAvg;
    avg.column = "distance";
    spec.aggregates = {count, avg};
    expr::Predicate p;
    p.column = "air_time";
    p.op = expr::CompareOp::kRange;
    p.lo = 50;
    p.hi = 90;
    spec.filter.And(p);
    IDB_CHECK(spec.ResolveBins(*catalog).ok());

    run_to_completion(&engine, spec);  // the materialize-once base render
    state.ResumeTiming();

    int64_t cursor = kBase;
    for (int e = 0; e < kEpochs; ++e) {
      // The append + publish cost is identical in both modes (and paid by
      // the ingest channel, not the query path): keep it out of the
      // timing so the measurement isolates the re-render cost the two
      // maintenance policies differ on.
      state.PauseTiming();
      IDB_CHECK((*ingestor)
                    ->Append(ingest::BatchFromTable(*source, cursor,
                                                    cursor + kEpochRows))
                    .ok());
      cursor += kEpochRows;
      IDB_CHECK((*ingestor)->Publish().ok());
      state.ResumeTiming();
      run_to_completion(&engine, spec);
      rows_total += (*ingestor)->visible_rows();
    }
    const metrics::ReuseCacheStats rs = engine.reuse_cache_stats();
    state.counters["rows_served"] +=
        benchmark::Counter(static_cast<double>(rs.rows_served));
    state.counters["equal_hits"] +=
        benchmark::Counter(static_cast<double>(rs.equal_hits));
    state.counters["stale_invalidations"] +=
        benchmark::Counter(static_cast<double>(rs.stale_invalidations));
  }
  state.SetItemsProcessed(rows_total);
  state.SetLabel(delta ? "delta_maintenance" : "invalidate_and_rescan");
}
BENCHMARK(BM_IngestWhileServing)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// WAL append+commit throughput across the fsync-policy sweep: the
/// durability tax an ingest pipeline pays per published epoch.  Arg(0)
/// = no fsync (upper bound, page-cache speed), Arg(1) = grouped (one
/// fsync per 8 commits), Arg(2) = fsync every commit (the default
/// publish-is-durable contract).  Run
///   bench_micro --benchmark_filter=WalAppend --benchmark_format=json
/// to emit the JSON recorded in BENCH_wal.json.
void BM_WalAppend(benchmark::State& state) {
  constexpr int64_t kBatchRows = 200;
  constexpr int kEpochs = 16;
  ingest::WalOptions options;
  switch (state.range(0)) {
    case 0: options.sync = ingest::WalSync::kNone; break;
    case 1:
      options.sync = ingest::WalSync::kGrouped;
      options.group_commit_interval = 8;
      break;
    default: options.sync = ingest::WalSync::kEveryCommit; break;
  }
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/bench_wal";
  std::filesystem::create_directories(dir);
  const storage::Table& source = SharedTable();
  const std::vector<std::vector<std::string>> batch =
      ingest::BatchFromTable(source, 0, kBatchRows).rows;

  int64_t rows_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(dir + "/ingest.wal");
    ingest::WalHeader header;
    header.table_name = source.name();
    header.baseline_rows = source.num_rows();
    header.num_columns = source.num_columns();
    auto wal = ingest::WalWriter::Create(dir + "/ingest.wal", header, options);
    IDB_CHECK(wal.ok());
    state.ResumeTiming();
    int64_t watermark = source.num_rows();
    for (int epoch = 1; epoch <= kEpochs; ++epoch) {
      IDB_CHECK((*wal)->AppendBatch(batch).ok());
      watermark += kBatchRows;
      IDB_CHECK((*wal)->AppendCommit(watermark, epoch).ok());
    }
    IDB_CHECK((*wal)->Sync().ok());
    rows_total += kEpochs * kBatchRows;
    state.counters["syncs"] +=
        benchmark::Counter(static_cast<double>((*wal)->stats().syncs));
    state.counters["wal_bytes"] +=
        benchmark::Counter(static_cast<double>((*wal)->stats().bytes_logged));
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  state.SetItemsProcessed(rows_total);
  state.SetLabel(ingest::WalSyncName(options.sync));
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
