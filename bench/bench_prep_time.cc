/// \file bench_prep_time.cc
/// Reproduces the **data-preparation-time** comparison (§5.2): the time
/// from connecting to a new data source to being able to run the
/// workload, per system, at 500 M tuples.  Paper reference points:
/// MonetDB 19 min, approXimateDB 130 min, IDEA 3 min, System X 27 min.

#include "bench/bench_util.h"

using namespace idebench;

int main() {
  bench::Banner("Sec 5.2: data preparation time, 500M");

  auto catalog = bench::Unwrap(core::BuildFlightsCatalog(bench::BenchDataset()),
                               "build catalog");

  std::printf("%-14s %14s %12s  %s\n", "engine", "prep time", "minutes",
              "paper reference");
  struct Row {
    const char* engine;
    const char* reference;
  };
  const Row kRows[] = {
      {"blocking", "MonetDB: 19 min (CSV load via SQL)"},
      {"online", "approXimateDB: 130 min (load + primary key)"},
      {"progressive", "IDEA: 3 min (fixed in-memory warm load)"},
      {"stratified", "System X: 27 min (load + samples + warm-up)"},
  };
  for (const Row& row : kRows) {
    auto engine = bench::Unwrap(engines::CreateEngine(row.engine),
                                "create engine");
    const Micros prep =
        bench::Unwrap(engine->Prepare(catalog), "prepare engine");
    std::printf("%-14s %13.0fs %11.1fm  %s\n", row.engine,
                MicrosToSeconds(prep), MicrosToSeconds(prep) / 60.0,
                row.reference);
  }

  std::printf(
      "\npaper shape check: online >> stratified > blocking >> progressive,"
      "\nwith absolute values close to the reported minutes.\n");
  return 0;
}
