/// \file bench_exp4_effects.cc
/// Reproduces **Experiment 4** (§5.5, "Other Effects"): breakdowns of the
/// detailed report by bin count, binning type (1-D vs 2-D, nominal vs
/// quantitative), concurrency, and filter specificity, to test whether
/// any of these factors materially moves the metrics.  The paper found
/// no significant effect except filter/selection specificity.

#include <map>

#include "bench/bench_util.h"

using namespace idebench;

namespace {

struct Bucket {
  int64_t queries = 0;
  int64_t violations = 0;
  double missing = 0.0;
  double mre = 0.0;
  int64_t quality_n = 0;

  void Add(const driver::QueryRecord& r) {
    ++queries;
    if (r.metrics.tr_violated) {
      ++violations;
      return;
    }
    missing += r.metrics.missing_bins;
    mre += r.metrics.mean_rel_error;
    ++quality_n;
  }

  void Print(const std::string& label) const {
    const double viol = queries > 0
                            ? static_cast<double>(violations) /
                                  static_cast<double>(queries)
                            : 0.0;
    std::printf("  %-26s %6lld %9s %9s %8.3f\n", label.c_str(),
                static_cast<long long>(queries), FormatPercent(viol).c_str(),
                FormatPercent(quality_n > 0 ? missing / quality_n : 0.0).c_str(),
                quality_n > 0 ? mre / quality_n : 0.0);
  }
};

void PrintHeader() {
  std::printf("  %-26s %6s %9s %9s %8s\n", "bucket", "n", "tr_viol",
              "missing", "mre");
}

}  // namespace

int main() {
  bench::Banner("Experiment 4 / Sec 5.5: other effects, TR=3s, 500M");

  auto catalog = bench::Unwrap(core::BuildFlightsCatalog(bench::BenchDataset()),
                               "build catalog");
  auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);
  const auto workflows = bench::MakeWorkflows(
      catalog->fact_table(), workflow::AllWorkflowTypes(),
      bench::WorkflowsOverride(4));

  std::vector<driver::QueryRecord> records;
  for (const std::string& engine :
       {std::string("progressive"), std::string("online")}) {
    bench::RunEngineSweep(engine, catalog, oracle, workflows, {3.0}, 1.0,
                          &records);
  }
  std::printf("%zu queries analyzed\n", records.size());

  // --- binning dimensionality ----------------------------------------
  std::printf("\nby binning dimensionality:\n");
  PrintHeader();
  {
    std::map<int, Bucket> buckets;
    for (const auto& r : records) buckets[r.bin_dims].Add(r);
    for (const auto& [dims, b] : buckets) {
      b.Print(StringPrintf("%d-D", dims));
    }
  }

  // --- binning type ----------------------------------------------------
  std::printf("\nby binning type:\n");
  PrintHeader();
  {
    std::map<std::string, Bucket> buckets;
    for (const auto& r : records) buckets[r.binning_type].Add(r);
    for (const auto& [type, b] : buckets) b.Print(type);
  }

  // --- ground-truth bin count ------------------------------------------
  std::printf("\nby ground-truth bin count:\n");
  PrintHeader();
  {
    std::map<int, Bucket> buckets;  // bucketed by power of ~4
    for (const auto& r : records) {
      const int64_t bins = r.metrics.bins_in_gt;
      int bucket = 0;
      if (bins > 200) {
        bucket = 3;
      } else if (bins > 50) {
        bucket = 2;
      } else if (bins > 10) {
        bucket = 1;
      }
      buckets[bucket].Add(r);
    }
    const char* kLabels[] = {"<=10 bins", "11-50 bins", "51-200 bins",
                             ">200 bins"};
    for (const auto& [bucket, b] : buckets) b.Print(kLabels[bucket]);
  }

  // --- concurrency -------------------------------------------------------
  std::printf("\nby concurrent queries per interaction:\n");
  PrintHeader();
  {
    std::map<int, Bucket> buckets;
    for (const auto& r : records) buckets[r.num_concurrent].Add(r);
    for (const auto& [n, b] : buckets) {
      b.Print(StringPrintf("%d concurrent", n));
    }
  }

  // --- filter specificity (progress of matched data) --------------------
  std::printf("\nby filter specificity (number of predicates):\n");
  PrintHeader();
  {
    std::map<int, Bucket> buckets;
    for (const auto& r : records) {
      // Count predicates from the rendered SQL's ANDs (proxy).
      int preds = 0;
      if (r.sql.find(" WHERE ") != std::string::npos) {
        preds = 1;
        for (size_t pos = 0; (pos = r.sql.find(" AND ", pos)) !=
                             std::string::npos;
             pos += 5) {
          ++preds;
        }
      }
      buckets[std::min(preds, 4)].Add(r);
    }
    for (const auto& [n, b] : buckets) {
      b.Print(n == 4 ? ">=4 predicates" : StringPrintf("%d predicates", n));
    }
  }

  std::printf(
      "\npaper shape check: no factor moves the metrics much except filter\n"
      "specificity — more selective filters leave fewer matching samples,\n"
      "so missing bins and errors rise with predicate count.\n");
  return 0;
}
