#ifndef IDEBENCH_BENCH_BENCH_UTIL_H_
#define IDEBENCH_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// Shared plumbing for the experiment-reproduction binaries: dataset
/// construction (size tunable via IDEBENCH_ACTUAL_ROWS), workflow-suite
/// generation, engine x time-requirement sweeps, and table printing.
///
/// Every binary regenerates one table or figure of the paper and prints
/// the same rows/series the paper reports.  Experiment ids refer to
/// DESIGN.md's experiment index.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/dataset.h"
#include "driver/benchmark_driver.h"
#include "engines/registry.h"
#include "report/report.h"
#include "workflow/generator.h"

namespace idebench::bench {

/// Aborts with a message when a Status/Result is not OK (benches have no
/// meaningful recovery path).
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).MoveValueUnsafe();
}

inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

/// Materialized rows per dataset, overridable for quick runs:
///   IDEBENCH_ACTUAL_ROWS=30000 ./bench_exp1_summary
inline int64_t ActualRowsOverride(int64_t fallback) {
  const char* env = std::getenv("IDEBENCH_ACTUAL_ROWS");
  if (env == nullptr) return fallback;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<int64_t>(v) : fallback;
}

/// Workflows per type, overridable via IDEBENCH_WORKFLOWS.
inline int WorkflowsOverride(int fallback) {
  const char* env = std::getenv("IDEBENCH_WORKFLOWS");
  if (env == nullptr) return fallback;
  const int v = std::atoi(env);
  return v > 0 ? v : fallback;
}

/// Default bench dataset: 500 M nominal (the paper's M size) materialized
/// at 120 k rows.
inline core::DatasetConfig BenchDataset(bool normalized = false,
                                        int64_t nominal = 500'000'000) {
  core::DatasetConfig config;
  config.nominal_rows = nominal;
  config.actual_rows = ActualRowsOverride(120'000);
  config.seed_rows = 30'000;
  config.normalized = normalized;
  config.seed = 42;
  return config;
}

/// Generates the workflow suite used by an experiment.
inline std::vector<workflow::Workflow> MakeWorkflows(
    const storage::Table* denorm_fact,
    const std::vector<workflow::WorkflowType>& types, int per_type,
    uint64_t seed = 7) {
  workflow::GeneratorConfig config;
  workflow::WorkflowGenerator generator(denorm_fact, config, seed);
  std::vector<workflow::Workflow> out;
  for (workflow::WorkflowType type : types) {
    for (int i = 0; i < per_type; ++i) {
      out.push_back(Unwrap(
          generator.Generate(type, std::string(workflow::WorkflowTypeName(
                                       type)) +
                                       "_" + std::to_string(i)),
          "workflow generation"));
    }
  }
  return out;
}

/// Runs `engine_name` over `workflows` for each time requirement; records
/// are appended to `records`.  One engine instance per TR (fresh restart,
/// as between configurations in the paper).  Returns the data-preparation
/// time of the last prepared engine.
inline Micros RunEngineSweep(
    const std::string& engine_name,
    std::shared_ptr<const storage::Catalog> catalog,
    std::shared_ptr<driver::GroundTruthOracle> oracle,
    const std::vector<workflow::Workflow>& workflows,
    const std::vector<double>& time_requirements_s, double think_time_s,
    std::vector<driver::QueryRecord>* records) {
  Micros prep = 0;
  for (double tr : time_requirements_s) {
    auto engine = Unwrap(engines::CreateEngine(engine_name), "create engine");
    driver::Settings settings;
    settings.time_requirement = SecondsToMicros(tr);
    settings.think_time = SecondsToMicros(think_time_s);
    settings.data_size_label = core::DataSizeLabel(catalog->nominal_rows());
    settings.use_joins = catalog->is_normalized();
    driver::BenchmarkDriver driver(settings, engine.get(), catalog, oracle);
    prep = Unwrap(driver.PrepareEngine(), "prepare engine");
    auto batch = Unwrap(driver.RunWorkflows(workflows), "run workflows");
    for (auto& r : batch) records->push_back(std::move(r));
  }
  return prep;
}

/// Prints a section banner.
inline void Banner(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

/// Formats seconds with sub-second precision.
inline std::string Secs(Micros us) {
  return StringPrintf("%.1fs", MicrosToSeconds(us));
}

}  // namespace idebench::bench

#endif  // IDEBENCH_BENCH_BENCH_UTIL_H_
