/// \file bench_exp2_normalization.cc
/// Reproduces **Figure 6e** (Experiment 2, §5.3): proportion of TR
/// violations for the blocking and online engines on normalized vs.
/// de-normalized schemas at 100 M and 500 M tuples.  The progressive
/// engine is excluded (no join support in IDEA) and the stratified
/// engine only works on de-normalized data — both as in the paper.

#include "bench/bench_util.h"

using namespace idebench;

namespace {

double ViolationRate(const std::vector<driver::QueryRecord>& records) {
  if (records.empty()) return 0.0;
  int violations = 0;
  for (const auto& r : records) {
    if (r.metrics.tr_violated) ++violations;
  }
  return static_cast<double>(violations) /
         static_cast<double>(records.size());
}

}  // namespace

int main() {
  const std::vector<double> kTimeRequirements = {3.0};
  const std::vector<int64_t> kSizes = {100'000'000, 500'000'000};
  const std::vector<std::string> kEngines = {"blocking", "online"};

  bench::Banner(
      "Experiment 2 / Figure 6e: normalized vs de-normalized, TR=3s");

  std::printf("%-10s %-8s %14s %14s\n", "engine", "size", "denormalized",
              "normalized");

  for (const std::string& engine : kEngines) {
    for (int64_t size : kSizes) {
      double rates[2] = {0.0, 0.0};
      for (int normalized = 0; normalized <= 1; ++normalized) {
        auto catalog = bench::Unwrap(
            core::BuildFlightsCatalog(
                bench::BenchDataset(normalized != 0, size)),
            "build catalog");
        auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);
        // Workflows are always generated against the de-normalized view so
        // both layouts run the *same* logical queries.
        auto denorm = bench::Unwrap(
            core::BuildFlightsCatalog(bench::BenchDataset(false, size)),
            "build denorm view");
        const auto workflows = bench::MakeWorkflows(
            denorm->fact_table(), {workflow::WorkflowType::kMixed},
            bench::WorkflowsOverride(6));
        std::vector<driver::QueryRecord> records;
        bench::RunEngineSweep(engine, catalog, oracle, workflows,
                              kTimeRequirements, 1.0, &records);
        rates[normalized] = ViolationRate(records);
      }
      std::printf("%-10s %-8s %14s %14s\n", engine.c_str(),
                  core::DataSizeLabel(size).c_str(),
                  FormatPercent(rates[0]).c_str(),
                  FormatPercent(rates[1]).c_str());
    }
  }

  std::printf(
      "\npaper shape check: both engines do slightly *better* normalized\n"
      "(smaller total data); the blocking engine's violations grow with\n"
      "the normalized data size while the online engine holds steady\n"
      "thanks to online (wander) joins.\n");
  return 0;
}
