/// \file bench_exp1_curves.cc
/// Reproduces **Figures 6a–6c** (Experiment 1): how (a) the ratio of TR
/// violations, (b) the median of the mean relative margins, and (c) the
/// cosine distance develop with increasing time requirements, for all
/// four systems on the 500 M mixed workload.

#include "bench/bench_util.h"

using namespace idebench;

int main() {
  const std::vector<double> kTimeRequirements = {0.5, 1.0, 3.0, 5.0, 10.0};
  const std::vector<std::string> kEngines = {"blocking", "online",
                                             "progressive", "stratified"};

  bench::Banner("Experiment 1 / Figures 6a-6c: metric curves vs TR");

  auto catalog = bench::Unwrap(core::BuildFlightsCatalog(bench::BenchDataset()),
                               "build catalog");
  auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);
  const auto workflows =
      bench::MakeWorkflows(catalog->fact_table(),
                           {workflow::WorkflowType::kMixed},
                           bench::WorkflowsOverride(10));

  std::vector<driver::QueryRecord> records;
  for (const std::string& engine : kEngines) {
    bench::RunEngineSweep(engine, catalog, oracle, workflows,
                          kTimeRequirements, 1.0, &records);
  }

  auto series = [&](const std::string& engine, auto value_fn) {
    std::string out;
    for (double tr : kTimeRequirements) {
      std::vector<const driver::QueryRecord*> group;
      for (const auto& r : records) {
        if (r.driver_name == engine &&
            r.time_requirement == SecondsToMicros(tr)) {
          group.push_back(&r);
        }
      }
      out += StringPrintf(" %8.3f", value_fn(report::Summarize("", group)));
    }
    return out;
  };

  std::printf("%-14s", "TR (s):");
  for (double tr : kTimeRequirements) std::printf(" %8.1f", tr);
  std::printf("\n");

  std::printf("\n(a) ratio of TR violations\n");
  for (const auto& engine : kEngines) {
    std::printf("%-14s%s\n", engine.c_str(),
                series(engine, [](const report::SummaryRow& s) {
                  return s.tr_violation_rate;
                }).c_str());
  }

  std::printf("\n(b) median of mean relative margins\n");
  for (const auto& engine : kEngines) {
    std::printf("%-14s%s\n", engine.c_str(),
                series(engine, [](const report::SummaryRow& s) {
                  return s.median_margin;
                }).c_str());
  }

  std::printf("\n(c) mean cosine distance\n");
  for (const auto& engine : kEngines) {
    std::printf("%-14s%s\n", engine.c_str(),
                series(engine, [](const report::SummaryRow& s) {
                  return s.mean_cosine_distance;
                }).c_str());
  }

  std::printf(
      "\npaper shape check: online margins >> progressive's (near-zero);\n"
      "blocking has no margins (exact or nothing); curves improve with "
      "TR\nexcept the stratified engine, whose quality is sample-bound.\n");
  return 0;
}
