/// \file wal_test.cc
/// Durable-ingest WAL tests: record framing round-trips, the torn-tail
/// vs. mid-log-corruption distinction under exhaustive truncation and
/// byte-flip fuzz (mirroring segment_test.cc), crash recovery rebuilding
/// the exact epoch history, the truncate-on-failure discipline at every
/// injected fault site, group-commit durability reporting, and baseline
/// validation.  The headline contract: recovery never surfaces a
/// partially committed epoch, never silently drops a committed one, and
/// reproduces post-recovery query transcripts bit-identically.

#include "ingest/wal.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/fault_injector.h"
#include "common/logging.h"
#include "datagen/flights_seed.h"
#include "engines/registry.h"
#include "ingest/ingest.h"
#include "net/protocol.h"
#include "storage/catalog.h"
#include "storage/segment.h"
#include "storage/table.h"

namespace idebench::ingest {
namespace {

using chaos::FaultInjector;
using chaos::FaultSite;
using chaos::FaultSiteConfig;
using chaos::ScopedFaultInjector;

/// Temp directory helper; recursively removed in the destructor.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(std::string(::testing::TempDir()) + "/" + name) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
    std::filesystem::create_directories(path_, ec);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::vector<std::string>> MakeRows(int64_t n, int64_t base) {
  std::vector<std::vector<std::string>> rows;
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({std::to_string(base + i), "tag" + std::to_string(i % 3),
                    std::to_string(0.5 * static_cast<double>(i))});
  }
  return rows;
}

/// A small but structurally complete log: header, two committed epochs
/// (the second spanning two batch records), and an uncommitted trailing
/// batch.  Returns the scan of the pristine log for offset bookkeeping.
WalScan BuildFixtureLog(const std::string& path) {
  WalHeader header;
  header.table_name = "t";
  header.baseline_rows = 100;
  header.num_columns = 3;
  auto wal = WalWriter::Create(path, header, WalOptions());
  IDB_CHECK(wal.ok());
  IDB_CHECK((*wal)->AppendBatch(MakeRows(4, 100)).ok());
  IDB_CHECK((*wal)->AppendCommit(104, 1).ok());
  IDB_CHECK((*wal)->AppendBatch(MakeRows(3, 104)).ok());
  IDB_CHECK((*wal)->AppendBatch(MakeRows(2, 107)).ok());
  IDB_CHECK((*wal)->AppendCommit(109, 2).ok());
  IDB_CHECK((*wal)->AppendBatch(MakeRows(5, 109)).ok());  // never committed
  auto scan = ReadWal(path);
  IDB_CHECK(scan.ok());
  return *scan;
}

// ---------------------------------------------------------------------
// Framing round-trip

TEST(WalFormatTest, RoundTripsRecordsAndCommitState) {
  TempDir dir("wal_roundtrip");
  const std::string path = dir.path() + "/ingest.wal";
  const WalScan scan = BuildFixtureLog(path);

  ASSERT_EQ(scan.records.size(), 7u);
  EXPECT_EQ(scan.records[0].type, WalRecordType::kHeader);
  EXPECT_EQ(scan.header.table_name, "t");
  EXPECT_EQ(scan.header.baseline_rows, 100);
  EXPECT_EQ(scan.header.num_columns, 3);
  for (size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i].sequence, i);
  }
  EXPECT_EQ(scan.records[1].type, WalRecordType::kBatch);
  ASSERT_EQ(scan.records[1].rows.size(), 4u);
  EXPECT_EQ(scan.records[1].rows[0],
            (std::vector<std::string>{"100", "tag0", "0.000000"}));
  EXPECT_EQ(scan.records[2].type, WalRecordType::kCommit);
  EXPECT_EQ(scan.records[2].watermark, 104);
  EXPECT_EQ(scan.records[2].epoch, 1);
  EXPECT_EQ(scan.commits, 2);
  EXPECT_EQ(scan.last_commit_watermark, 109);
  EXPECT_EQ(scan.torn_bytes, 0u);
  // The uncommitted trailing batch is valid but past the commit point.
  EXPECT_GT(scan.valid_bytes, scan.committed_bytes);
  EXPECT_EQ(scan.next_sequence, 7u);
}

TEST(WalFormatTest, EmptyAndMissingFiles) {
  TempDir dir("wal_empty");
  const std::string missing = dir.path() + "/nope.wal";
  EXPECT_FALSE(ReadWal(missing).ok());

  const std::string empty = dir.path() + "/empty.wal";
  { std::ofstream out(empty, std::ios::binary); }
  auto scan = ReadWal(empty);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_bytes, 0u);
}

// ---------------------------------------------------------------------
// Corruption fuzz (mirrors segment_test.cc)

TEST(WalCorruptionTest, EveryTruncationKeepsExactlyTheIntactPrefix) {
  TempDir dir("wal_trunc");
  const std::string path = dir.path() + "/ingest.wal";
  const WalScan clean = BuildFixtureLog(path);
  const std::vector<uint8_t> bytes = ReadAll(path);
  ASSERT_EQ(bytes.size(), clean.valid_bytes);

  const std::string cut = dir.path() + "/cut.wal";
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(cut, std::vector<uint8_t>(bytes.begin(),
                                       bytes.begin() + static_cast<long>(len)));
    auto scan = ReadWal(cut);
    // Truncation only ever damages the tail: never a hard error.
    ASSERT_TRUE(scan.ok()) << "truncation at " << len << ": "
                           << scan.status().ToString();
    // Exactly the records that fully fit survive; the rest is torn tail.
    uint64_t want_valid = 0;
    int64_t want_commit = -1;
    for (const WalRecord& rec : clean.records) {
      if (rec.offset + rec.bytes <= len) {
        want_valid = rec.offset + rec.bytes;
        if (rec.type == WalRecordType::kCommit) want_commit = rec.watermark;
      }
    }
    EXPECT_EQ(scan->valid_bytes, want_valid) << "truncation at " << len;
    EXPECT_EQ(scan->last_commit_watermark, want_commit)
        << "truncation at " << len;
    EXPECT_EQ(scan->torn_bytes, len - want_valid) << "truncation at " << len;
  }
}

TEST(WalCorruptionTest, EveryByteFlipNeverSilentlyDropsACommittedEpoch) {
  TempDir dir("wal_flip");
  const std::string path = dir.path() + "/ingest.wal";
  const WalScan clean = BuildFixtureLog(path);
  const std::vector<uint8_t> bytes = ReadAll(path);
  const uint64_t last_start = clean.records.back().offset;
  ASSERT_EQ(clean.records.back().type, WalRecordType::kBatch);

  const std::string flip = dir.path() + "/flip.wal";
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<uint8_t> mutated = bytes;
    mutated[pos] ^= 0x5A;
    WriteAll(flip, mutated);
    auto scan = ReadWal(flip);
    if (pos >= last_start) {
      // Damage confined to the uncommitted trailing record: recovery
      // truncates it as a torn tail and loses nothing committed.
      ASSERT_TRUE(scan.ok()) << "flip at " << pos << ": "
                             << scan.status().ToString();
      EXPECT_EQ(scan->last_commit_watermark, clean.last_commit_watermark)
          << "flip at " << pos;
      EXPECT_EQ(scan->valid_bytes, last_start) << "flip at " << pos;
    } else {
      // Damage with intact records after it is bit rot, not a crash:
      // it must hard-error, never silently truncate committed history.
      EXPECT_FALSE(scan.ok()) << "flip at " << pos << " was accepted";
    }
  }
}

TEST(WalCorruptionTest, FlipInFinalCommitRecordFallsBackToPreviousCommit) {
  // A log ending exactly at a commit record: damage there is
  // indistinguishable from a crash before that commit's fsync returned,
  // so it truncates back to the previous commit (which is the durable
  // state the acked history could ever have claimed).
  TempDir dir("wal_flip_commit");
  const std::string path = dir.path() + "/ingest.wal";
  WalHeader header;
  header.table_name = "t";
  header.baseline_rows = 100;
  header.num_columns = 3;
  {
    auto wal = WalWriter::Create(path, header, WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendBatch(MakeRows(4, 100)).ok());
    ASSERT_TRUE((*wal)->AppendCommit(104, 1).ok());
    ASSERT_TRUE((*wal)->AppendBatch(MakeRows(2, 104)).ok());
    ASSERT_TRUE((*wal)->AppendCommit(106, 2).ok());
  }
  auto clean = ReadWal(path);
  ASSERT_TRUE(clean.ok());
  const WalRecord& final_commit = clean->records.back();
  ASSERT_EQ(final_commit.type, WalRecordType::kCommit);
  const std::vector<uint8_t> bytes = ReadAll(path);

  const std::string flip = dir.path() + "/flip.wal";
  for (uint64_t pos = final_commit.offset; pos < bytes.size(); ++pos) {
    std::vector<uint8_t> mutated = bytes;
    mutated[static_cast<size_t>(pos)] ^= 0x5A;
    WriteAll(flip, mutated);
    auto scan = ReadWal(flip);
    ASSERT_TRUE(scan.ok()) << "flip at " << pos;
    EXPECT_EQ(scan->last_commit_watermark, 104) << "flip at " << pos;
  }
}

// ---------------------------------------------------------------------
// Durable ingest + recovery over a real catalog

struct DurableFixture {
  std::shared_ptr<storage::Table> source;
  std::shared_ptr<storage::Catalog> catalog;
  std::unique_ptr<Ingestor> ingestor;
};

std::shared_ptr<storage::Catalog> FlightsBaseline(
    const std::shared_ptr<storage::Table>& source, int64_t base) {
  auto fact =
      std::make_shared<storage::Table>(source->name(), source->schema());
  for (int64_t r = 0; r < base; ++r) {
    IDB_CHECK(fact->AppendRowFrom(*source, r).ok());
  }
  auto catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(catalog->AddTable(fact).ok());
  catalog->set_nominal_rows(1'000'000);
  return catalog;
}

DurableFixture MakeDurableFlights(const std::string& wal_dir, int64_t base,
                                  int64_t total,
                                  WalOptions options = WalOptions(),
                                  uint64_t seed = 17) {
  datagen::FlightsSeedConfig config;
  config.rows = total;
  config.seed = seed;
  auto full = datagen::GenerateFlightsSeed(config);
  IDB_CHECK(full.ok());
  DurableFixture f;
  f.source =
      std::make_shared<storage::Table>(std::move(full).MoveValueUnsafe());
  f.catalog = FlightsBaseline(f.source, base);
  auto created =
      Ingestor::CreateDurable(f.catalog, total, wal_dir, options);
  IDB_CHECK(created.ok());
  f.ingestor = std::move(created).MoveValueUnsafe();
  return f;
}

query::QuerySpec CountByCarrier(const storage::Catalog& catalog) {
  query::QuerySpec spec;
  spec.viz_name = "carrier_hist";
  query::BinDimension d;
  d.column = "carrier";
  d.mode = query::BinningMode::kNominal;
  spec.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kCount;
  spec.aggregates.push_back(a);
  IDB_CHECK(spec.ResolveBins(catalog).ok());
  return spec;
}

/// Full progressive transcript (every available poll + final) of the
/// fixture query — the bit-identity yardstick.
std::vector<std::string> Transcript(
    const std::shared_ptr<storage::Catalog>& catalog, int threads) {
  auto engine =
      engines::CreateEngine("progressive", 7, threads, /*reuse_cache=*/true);
  IDB_CHECK(engine.ok());
  IDB_CHECK((*engine)->Prepare(catalog).ok());
  auto handle = (*engine)->Submit(CountByCarrier(*catalog));
  IDB_CHECK(handle.ok());
  std::vector<std::string> out;
  for (int s = 0; s < 4096 && !(*engine)->IsDone(*handle); ++s) {
    (*engine)->RunFor(*handle, 1'000'000);
    auto result = (*engine)->PollResult(*handle);
    if (result.ok() && result->available) {
      out.push_back(net::QueryResultToJson(*result).Dump());
    }
  }
  IDB_CHECK((*engine)->IsDone(*handle));
  return out;
}

TEST(WalRecoveryTest, ReplaysCommittedEpochsDropsUncommittedTail) {
  TempDir dir("wal_recover");
  DurableFixture f = MakeDurableFlights(dir.path(), 1000, 1800);
  int64_t cursor = 1000;
  for (int epoch = 0; epoch < 3; ++epoch) {
    ASSERT_TRUE(
        f.ingestor->Append(BatchFromTable(*f.source, cursor, cursor + 200))
            .ok());
    cursor += 200;
    ASSERT_TRUE(f.ingestor->Publish().ok());
  }
  // Staged but never published: must not survive recovery.
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, cursor, cursor + 150))
          .ok());
  ASSERT_EQ(f.ingestor->visible_rows(), 1600);
  ASSERT_EQ(f.ingestor->staged_rows(), 150);
  const std::vector<int64_t> live_boundaries =
      f.ingestor->table().epoch_boundaries();

  // "Crash": drop the ingestor (no drain of staged rows) and recover
  // over a fresh identical baseline.
  f.ingestor.reset();
  auto catalog = FlightsBaseline(f.source, 1000);
  RecoverInfo info;
  auto recovered =
      Ingestor::Recover(catalog, 1800, dir.path(), WalOptions(), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(info.epochs_replayed, 3);
  EXPECT_EQ(info.rows_replayed, 600);
  EXPECT_EQ(info.watermark, 1600);
  EXPECT_EQ(info.uncommitted_rows_dropped, 150);
  EXPECT_EQ((*recovered)->visible_rows(), 1600);
  EXPECT_EQ((*recovered)->staged_rows(), 0);
  // The epoch history — what seeds every shuffled walk — is identical.
  EXPECT_EQ((*recovered)->table().epoch_boundaries(), live_boundaries);
  // And the visible rows themselves are bit-identical to the source.
  for (int64_t r = 0; r < 1600; ++r) {
    ASSERT_EQ((*recovered)->table().RowToString(r), f.source->RowToString(r))
        << "row " << r;
  }
}

TEST(WalRecoveryTest, PostRecoveryTranscriptsBitIdentical) {
  TempDir dir("wal_transcript");
  DurableFixture f = MakeDurableFlights(dir.path(), 1000, 1600);
  int64_t cursor = 1000;
  for (int epoch = 0; epoch < 3; ++epoch) {
    ASSERT_TRUE(
        f.ingestor->Append(BatchFromTable(*f.source, cursor, cursor + 150))
            .ok());
    cursor += 150;
    ASSERT_TRUE(f.ingestor->Publish().ok());
  }
  const auto live_catalog = f.catalog;
  f.ingestor.reset();

  auto catalog = FlightsBaseline(f.source, 1000);
  auto recovered = Ingestor::Recover(catalog, 1600, dir.path());
  ASSERT_TRUE(recovered.ok());
  for (const int threads : {1, 4}) {
    EXPECT_EQ(Transcript(catalog, threads), Transcript(live_catalog, threads))
        << "threads=" << threads;
  }
}

TEST(WalRecoveryTest, RecoveryIsIdempotent) {
  TempDir dir("wal_idem");
  DurableFixture f = MakeDurableFlights(dir.path(), 500, 900);
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, 500, 700)).ok());
  ASSERT_TRUE(f.ingestor->Publish().ok());
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, 700, 800)).ok());  // staged
  f.ingestor.reset();

  auto first_catalog = FlightsBaseline(f.source, 500);
  RecoverInfo first;
  ASSERT_TRUE(Ingestor::Recover(first_catalog, 900, dir.path(), WalOptions(),
                                &first)
                  .ok());
  EXPECT_EQ(first.watermark, 700);
  EXPECT_EQ(first.uncommitted_rows_dropped, 100);

  // The first recovery truncated the log to its committed prefix, so a
  // second recovery (recover-from-recovery) sees a clean log.
  auto second_catalog = FlightsBaseline(f.source, 500);
  RecoverInfo second;
  ASSERT_TRUE(Ingestor::Recover(second_catalog, 900, dir.path(),
                                WalOptions(), &second)
                  .ok());
  EXPECT_EQ(second.watermark, 700);
  EXPECT_EQ(second.uncommitted_rows_dropped, 0);
  EXPECT_EQ(second.torn_bytes_dropped, 0);
  EXPECT_EQ(second.epochs_replayed, first.epochs_replayed);
}

TEST(WalRecoveryTest, ResumedLogContinuesAfterRecovery) {
  TempDir dir("wal_resume");
  DurableFixture f = MakeDurableFlights(dir.path(), 500, 900);
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, 500, 600)).ok());
  ASSERT_TRUE(f.ingestor->Publish().ok());
  f.ingestor.reset();

  auto catalog = FlightsBaseline(f.source, 500);
  auto recovered = Ingestor::Recover(catalog, 900, dir.path());
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(
      (*recovered)->Append(BatchFromTable(*f.source, 600, 700)).ok());
  ASSERT_TRUE((*recovered)->Publish().ok());
  EXPECT_EQ((*recovered)->visible_rows(), 700);
  recovered->reset();

  // The appended-after-recovery epoch replays too, with dense sequences.
  auto scan = ReadWal(Ingestor::WalPath(dir.path()));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->commits, 2);
  EXPECT_EQ(scan->last_commit_watermark, 700);
  for (size_t i = 0; i < scan->records.size(); ++i) {
    EXPECT_EQ(scan->records[i].sequence, i);
  }
  auto catalog2 = FlightsBaseline(f.source, 500);
  RecoverInfo info;
  ASSERT_TRUE(
      Ingestor::Recover(catalog2, 900, dir.path(), WalOptions(), &info).ok());
  EXPECT_EQ(info.watermark, 700);
  EXPECT_EQ(info.epochs_replayed, 2);
}

TEST(WalRecoveryTest, RejectsMismatchedBaseline) {
  TempDir dir("wal_mismatch");
  DurableFixture f = MakeDurableFlights(dir.path(), 500, 900);
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, 500, 600)).ok());
  ASSERT_TRUE(f.ingestor->Publish().ok());
  f.ingestor.reset();

  // Wrong row count: the log was created against a 500-row baseline.
  auto short_catalog = FlightsBaseline(f.source, 400);
  EXPECT_FALSE(Ingestor::Recover(short_catalog, 900, dir.path()).ok());

  // Missing log directory entirely.
  auto ok_catalog = FlightsBaseline(f.source, 500);
  EXPECT_FALSE(
      Ingestor::Recover(ok_catalog, 900, dir.path() + "/nope").ok());
}

// ---------------------------------------------------------------------
// Fault injection: the truncate-on-failure discipline

TEST(WalFaultTest, FailedAppendLeavesLogAndEpochUntouched) {
  TempDir dir("wal_fault_append");
  DurableFixture f = MakeDurableFlights(dir.path(), 500, 900);
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, 500, 600)).ok());
  ASSERT_TRUE(f.ingestor->Publish().ok());
  const auto before = ReadAll(Ingestor::WalPath(dir.path()));

  FaultInjector injector(11);
  FaultSiteConfig config;
  config.probability = 1.0;
  config.budget = 1;
  injector.Arm(FaultSite::kWalAppend, config);
  {
    ScopedFaultInjector scoped(&injector);
    const Status st =
        f.ingestor->Append(BatchFromTable(*f.source, 600, 700));
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIoError);
  }
  // Nothing staged, and the log is byte-identical: the half-written
  // record was truncated back off.
  EXPECT_EQ(f.ingestor->staged_rows(), 0);
  EXPECT_EQ(ReadAll(Ingestor::WalPath(dir.path())), before);
  EXPECT_GT(f.ingestor->wal()->stats().rollback_bytes, 0);

  // The retry (budget exhausted) succeeds and the log stays replayable.
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, 600, 700)).ok());
  ASSERT_TRUE(f.ingestor->Publish().ok());
  auto scan = ReadWal(Ingestor::WalPath(dir.path()));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->commits, 2);
  EXPECT_EQ(scan->last_commit_watermark, 700);
}

/// The replay-divergence regression: a publish whose commit write or
/// fsync fails, followed by more appends and a successful publish, must
/// leave a log whose replay produces the *live* epoch history — i.e. the
/// failed publish's would-be boundary must not exist anywhere.
void FailedPublishThenRetryStaysReplayable(FaultSite site) {
  TempDir dir(std::string("wal_fault_") + chaos::FaultSiteName(site));
  DurableFixture f = MakeDurableFlights(dir.path(), 500, 900);
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, 500, 600)).ok());

  FaultInjector injector(13);
  FaultSiteConfig config;
  config.probability = 1.0;
  config.budget = 1;
  injector.Arm(site, config);
  {
    ScopedFaultInjector scoped(&injector);
    auto watermark = f.ingestor->Publish();
    EXPECT_FALSE(watermark.ok());
  }
  // The watermark did not move and the rows stay staged.
  EXPECT_EQ(f.ingestor->visible_rows(), 500);
  EXPECT_EQ(f.ingestor->staged_rows(), 100);
  EXPECT_FALSE(f.ingestor->durable());  // batch logged, commit rolled off

  // More work lands, then a publish succeeds: ONE epoch with both
  // batches, exactly what the live table shows.
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, 600, 650)).ok());
  ASSERT_TRUE(f.ingestor->Publish().ok());
  EXPECT_TRUE(f.ingestor->durable());
  const std::vector<int64_t> live_boundaries =
      f.ingestor->table().epoch_boundaries();
  ASSERT_EQ(live_boundaries, (std::vector<int64_t>{500, 650}));
  f.ingestor.reset();

  auto catalog = FlightsBaseline(f.source, 500);
  RecoverInfo info;
  auto recovered =
      Ingestor::Recover(catalog, 900, dir.path(), WalOptions(), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->table().epoch_boundaries(), live_boundaries);
  EXPECT_EQ(info.epochs_replayed, 1);
  EXPECT_EQ(info.watermark, 650);
}

TEST(WalFaultTest, FailedCommitWriteThenRetryStaysReplayable) {
  FailedPublishThenRetryStaysReplayable(FaultSite::kWalCommit);
}

TEST(WalFaultTest, FailedCommitFsyncThenRetryStaysReplayable) {
  FailedPublishThenRetryStaysReplayable(FaultSite::kWalFsync);
}

TEST(WalFaultTest, SegmentWriteFaultLeavesNoTornDestination) {
  TempDir dir("wal_fault_segment");
  datagen::FlightsSeedConfig config;
  config.rows = 300;
  config.seed = 23;
  auto full = datagen::GenerateFlightsSeed(config);
  ASSERT_TRUE(full.ok());
  auto source =
      std::make_shared<storage::Table>(std::move(full).MoveValueUnsafe());
  auto catalog = FlightsBaseline(source, 300);

  // First write succeeds: a valid catalog is on disk.
  ASSERT_TRUE(
      storage::WriteCatalogSegments(*catalog, dir.path() + "/seg").ok());
  auto before = storage::LoadCatalogSegments(dir.path() + "/seg");
  ASSERT_TRUE(before.ok());

  // Every later write attempt fails mid-stream — the destination files
  // must remain the previous, fully valid versions.
  FaultInjector injector(29);
  FaultSiteConfig fault;
  fault.probability = 1.0;
  injector.Arm(FaultSite::kSegmentWrite, fault);
  {
    ScopedFaultInjector scoped(&injector);
    const Status st =
        storage::WriteCatalogSegments(*catalog, dir.path() + "/seg");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIoError);
  }
  auto after = storage::LoadCatalogSegments(dir.path() + "/seg");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->fact_table()->num_rows(), 300);
  // No temp debris left behind.
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.path() + "/seg")) {
    EXPECT_EQ(entry.path().extension(), entry.path().filename() == "manifest.json"
                                            ? ".json"
                                            : ".seg")
        << "stray file: " << entry.path();
  }
}

// ---------------------------------------------------------------------
// Group commit

TEST(WalGroupCommitTest, DurabilityLagsUntilTheGroupBoundaryOrDrain) {
  TempDir dir("wal_group");
  WalOptions options;
  options.sync = WalSync::kGrouped;
  options.group_commit_interval = 3;
  DurableFixture f = MakeDurableFlights(dir.path(), 500, 900, options);

  int64_t cursor = 500;
  for (int epoch = 0; epoch < 2; ++epoch) {
    ASSERT_TRUE(
        f.ingestor->Append(BatchFromTable(*f.source, cursor, cursor + 50))
            .ok());
    cursor += 50;
    ASSERT_TRUE(f.ingestor->Publish().ok());
    EXPECT_FALSE(f.ingestor->durable()) << "epoch " << epoch;
  }
  EXPECT_EQ(f.ingestor->wal()->stats().syncs, 0);

  // Third commit crosses the interval: everything becomes durable.
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, cursor, cursor + 50))
          .ok());
  cursor += 50;
  ASSERT_TRUE(f.ingestor->Publish().ok());
  EXPECT_TRUE(f.ingestor->durable());
  EXPECT_EQ(f.ingestor->wal()->stats().syncs, 1);

  // A fourth commit is again non-durable until the explicit drain.
  ASSERT_TRUE(
      f.ingestor->Append(BatchFromTable(*f.source, cursor, cursor + 50))
          .ok());
  ASSERT_TRUE(f.ingestor->Publish().ok());
  EXPECT_FALSE(f.ingestor->durable());
  ASSERT_TRUE(f.ingestor->SyncWal().ok());
  EXPECT_TRUE(f.ingestor->durable());
}

// ---------------------------------------------------------------------
// Chaos plumbing used by crash_runner

TEST(WalChaosTest, FireOnDrawFiresExactlyOnceConsumingNoRandomness) {
  FaultInjector injector(99);
  FaultSiteConfig config;
  config.fire_on_draw = 2;
  injector.Arm(FaultSite::kWalAppend, config);
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kWalAppend));  // draw 0
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kWalAppend));  // draw 1
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kWalAppend));   // draw 2
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kWalAppend));  // draw 3
  const auto stats = injector.site_stats(FaultSite::kWalAppend);
  EXPECT_EQ(stats.draws, 4);
  EXPECT_EQ(stats.fires, 1);
}

}  // namespace
}  // namespace idebench::ingest
