#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace idebench {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Invalid("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(Status::KeyError("x").code(), StatusCode::kKeyError);
  EXPECT_EQ(Status::OutOfBounds("x").code(), StatusCode::kOutOfBounds);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Unknown("x").code(), StatusCode::kUnknown);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("a"));
  EXPECT_FALSE(Status::Invalid("a") == Status::Invalid("b"));
  EXPECT_FALSE(Status::Invalid("a") == Status::KeyError("a"));
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::IOError("disk gone");
  Status b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(b.message(), "disk gone");
  EXPECT_EQ(a, b);
}

Status FailsAtStep(int failing, int step) {
  if (step == failing) return Status::Invalid("step " + std::to_string(step));
  return Status::OK();
}

Status RunSteps(int failing) {
  IDB_RETURN_NOT_OK(FailsAtStep(failing, 0));
  IDB_RETURN_NOT_OK(FailsAtStep(failing, 1));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(RunSteps(-1).ok());
  EXPECT_EQ(RunSteps(0).message(), "step 0");
  EXPECT_EQ(RunSteps(1).message(), "step 1");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::KeyError("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnknown);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  IDB_ASSIGN_OR_RETURN(int half, HalveEven(x));
  IDB_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterEven(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterEven(5).ok());
}

}  // namespace
}  // namespace idebench
