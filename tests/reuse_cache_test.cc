/// \file reuse_cache_test.cc
/// Unit tests of the cross-interaction reuse cache: signature and
/// subsumption matching, snapshot serve/replay bit-exactness (including
/// against the morsel-parallel path), match recording through partial
/// merges, and per-viz LRU eviction.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "exec/parallel.h"
#include "exec/reuse_cache.h"
#include "tests/workflow_harness.h"

namespace idebench::exec {
namespace {

using query::AggregateSpec;
using query::AggregateType;
using query::BinDimension;
using query::BinningMode;
using query::QuerySpec;

constexpr int64_t kRows = 3000;

/// A small deterministic table with enough spread for selective filters.
std::shared_ptr<storage::Catalog> MakeCatalog() {
  storage::Schema schema({
      {"value", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"amount", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"group", storage::DataType::kString, storage::AttributeKind::kNominal},
      {"code", storage::DataType::kInt64, storage::AttributeKind::kNominal},
  });
  auto table = std::make_shared<storage::Table>("fact", schema);
  const char* groups[] = {"a", "b", "c", "d"};
  Rng rng(21);
  for (int64_t i = 0; i < kRows; ++i) {
    table->mutable_column(0).AppendDouble(rng.Uniform(0.0, 100.0));
    table->mutable_column(1).AppendDouble(rng.Uniform(-10.0, 10.0));
    table->mutable_column(2).AppendString(groups[rng.UniformInt(0, 3)]);
    table->mutable_column(3).AppendInt(rng.UniformInt(0, 9));
  }
  auto catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(catalog->AddTable(table).ok());
  return catalog;
}

QuerySpec BaseSpec(const storage::Catalog& catalog,
                   const std::string& viz = "viz_a") {
  QuerySpec spec;
  spec.viz_name = viz;
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  AggregateSpec count;
  count.type = AggregateType::kCount;
  AggregateSpec avg;
  avg.type = AggregateType::kAvg;
  avg.column = "amount";
  spec.aggregates = {count, avg};
  IDB_CHECK(spec.ResolveBins(catalog).ok());
  return spec;
}

expr::Predicate Range(const std::string& column, double lo, double hi) {
  expr::Predicate p;
  p.column = column;
  p.op = expr::CompareOp::kRange;
  p.lo = lo;
  p.hi = hi;
  return p;
}

ReuseCache::Binder BinderFor(const std::shared_ptr<storage::Catalog>& catalog) {
  return [catalog](const QuerySpec& spec) {
    return BoundQuery::Bind(spec, *catalog);
  };
}

BinnedAggregatorOptions Recording() {
  BinnedAggregatorOptions options;
  options.record_matches = true;
  return options;
}

TEST(ReuseCacheTest, EqualAndRefinementMatching) {
  auto catalog = MakeCatalog();
  ReuseCache cache;

  QuerySpec base = BaseSpec(*catalog);
  base.filter.And(Range("value", 10.0, 90.0));
  auto bound = BoundQuery::Bind(base, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound, Recording());
  agg.ProcessRange(0, 1000);
  cache.Store(base, agg, BinderFor(catalog));
  ASSERT_EQ(cache.size(), 1u);

  // Identical predicates (in any order) match as equal.
  auto equal = cache.Lookup(base);
  EXPECT_EQ(equal.kind, ReuseCache::MatchKind::kEqual);
  EXPECT_EQ(equal.watermark(), 1000);

  // Adding a predicate refines the cached set.
  QuerySpec refined = base;
  refined.filter.And(Range("amount", -5.0, 5.0));
  auto refinement = cache.Lookup(refined);
  EXPECT_EQ(refinement.kind, ReuseCache::MatchKind::kRefinement);

  // Narrowing the existing range also refines.
  QuerySpec narrowed = BaseSpec(*catalog);
  narrowed.filter.And(Range("value", 20.0, 60.0));
  EXPECT_EQ(cache.Lookup(narrowed).kind, ReuseCache::MatchKind::kRefinement);

  // Widening does not (rows outside the cached range are unknown).
  QuerySpec widened = BaseSpec(*catalog);
  widened.filter.And(Range("value", 0.0, 95.0));
  EXPECT_EQ(cache.Lookup(widened).kind, ReuseCache::MatchKind::kNone);

  // A different bin spec is a different core signature: no match.
  QuerySpec rebinned = base;
  rebinned.bins[0].column = "code";
  ASSERT_TRUE(rebinned.ResolveBins(*catalog).ok());
  EXPECT_EQ(cache.Lookup(rebinned).kind, ReuseCache::MatchKind::kNone);
}

TEST(ReuseCacheTest, EpochGrowthDeltaVsInvalidateModes) {
  auto catalog = MakeCatalog();
  QuerySpec spec = BaseSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound, Recording());
  agg.ProcessRange(0, 1000);

  // Delta mode (the default): an epoch publish leaves the entry alive as
  // an equal hit — Serve caps at the snapshot depth and the engine scans
  // only the delta rows beyond it.
  ReuseCache delta;
  delta.SetEpochWatermark(kRows);
  delta.Store(spec, agg, BinderFor(catalog));
  delta.SetEpochWatermark(kRows + 500);
  EXPECT_EQ(delta.Lookup(spec).kind, ReuseCache::MatchKind::kEqual);
  EXPECT_EQ(delta.stats().stale_invalidations, 0);

  // Invalidate-on-growth baseline: the same growth kills the entry and
  // the query rescans from zero (the mode BENCH_ingest.json compares
  // delta maintenance against).
  ReuseCacheOptions options;
  options.invalidate_on_growth = true;
  ReuseCache baseline(options);
  baseline.SetEpochWatermark(kRows);
  baseline.Store(spec, agg, BinderFor(catalog));
  baseline.SetEpochWatermark(kRows + 500);
  EXPECT_EQ(baseline.Lookup(spec).kind, ReuseCache::MatchKind::kNone);
  EXPECT_EQ(baseline.stats().stale_invalidations, 1);
  EXPECT_EQ(baseline.size(), 0u);
}

TEST(ReuseCacheTest, ReshapedBinTablesDowngradeToReplay) {
  auto catalog = MakeCatalog();
  ReuseCache cache;

  QuerySpec stored = BaseSpec(*catalog);
  auto bound = BoundQuery::Bind(stored, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound, Recording());
  agg.ProcessRange(0, 1500);
  cache.Store(stored, agg, BinderFor(catalog));

  // An epoch publish re-resolves the spec's bins (here: the nominal
  // dictionary grew a value).  Signatures ignore resolved bin tables, so
  // this is still an equal-signature lookup — but index-wise snapshot
  // adoption would mis-bin, so the hit downgrades to candidate replay.
  QuerySpec grown = stored;
  grown.bins[0].bin_count += 1;
  const auto match = cache.Lookup(grown);
  EXPECT_EQ(match.kind, ReuseCache::MatchKind::kRefinement);
  EXPECT_EQ(match.watermark(), 1500);
  EXPECT_EQ(cache.stats().refinement_hits, 1);

  // A fresh store under the new shape replaces the re-shaped entry even
  // though the old snapshot is deeper: depth can't justify keeping bin
  // tables the current resolution no longer produces.
  auto grown_bound = BoundQuery::Bind(grown, *catalog);
  ASSERT_TRUE(grown_bound.ok());
  BinnedAggregator shallow(&*grown_bound, Recording());
  shallow.ProcessRange(0, 1000);
  cache.Store(grown, shallow, BinderFor(catalog));
  EXPECT_EQ(cache.size(), 1u);
  const auto after = cache.Lookup(grown);
  EXPECT_EQ(after.kind, ReuseCache::MatchKind::kEqual);
  EXPECT_EQ(after.watermark(), 1000);
}

TEST(ReuseCacheTest, StoreKeepsDeepestWatermark) {
  auto catalog = MakeCatalog();
  ReuseCache cache;
  QuerySpec spec = BaseSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregator deep(&*bound, Recording());
  deep.ProcessRange(0, 2000);
  cache.Store(spec, deep, BinderFor(catalog));
  EXPECT_EQ(cache.Lookup(spec).watermark(), 2000);

  // A shallower snapshot of the same signature must not replace it.
  BinnedAggregator shallow(&*bound, Recording());
  shallow.ProcessRange(0, 500);
  cache.Store(spec, shallow, BinderFor(catalog));
  EXPECT_EQ(cache.Lookup(spec).watermark(), 2000);

  // A deeper one does.
  BinnedAggregator deeper(&*bound, Recording());
  deeper.ProcessRange(0, 2500);
  cache.Store(spec, deeper, BinderFor(catalog));
  EXPECT_EQ(cache.Lookup(spec).watermark(), 2500);

  // Aggregators without a recorder are not cacheable.
  ReuseCache fresh;
  BinnedAggregator unrecorded(&*bound);
  unrecorded.ProcessRange(0, 100);
  fresh.Store(spec, unrecorded, BinderFor(catalog));
  EXPECT_EQ(fresh.size(), 0u);
}

/// Serve must reproduce direct processing bit for bit: full snapshot
/// adoption, partial replay below the watermark, and refined replay.
TEST(ReuseCacheTest, ServeIsBitIdenticalToDirectProcessing) {
  auto catalog = MakeCatalog();
  ReuseCache cache;
  QuerySpec base = BaseSpec(*catalog);
  base.filter.And(Range("value", 5.0, 95.0));
  auto bound = BoundQuery::Bind(base, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregator source(&*bound, Recording());
  source.ProcessRange(0, 2000);
  cache.Store(base, source, BinderFor(catalog));
  auto match = cache.Lookup(base);
  ASSERT_EQ(match.kind, ReuseCache::MatchKind::kEqual);

  // Full adoption + physical continuation == direct feed of [0, 2600).
  {
    BinnedAggregator served(&*bound, Recording());
    EXPECT_EQ(ReuseCache::Serve(match, &served, 0, 2600), 2000);
    served.ProcessRange(2000, 2600);
    BinnedAggregator direct(&*bound, Recording());
    direct.ProcessRange(0, 2600);
    EXPECT_EQ(served.rows_seen(), direct.rows_seen());
    EXPECT_EQ(served.rows_matched(), direct.rows_matched());
    testharness::ExpectResultsBitIdentical(
        served.ExactResult(), direct.ExactResult(), "full adoption");
    testharness::ExpectResultsBitIdentical(
        served.EstimateFromUniformSample(kRows, 1.96),
        direct.EstimateFromUniformSample(kRows, 1.96), "full adoption est");
    // The recorder survives adoption, so the served aggregator can
    // itself be stored at the deeper watermark.
    EXPECT_EQ(served.matched_rows().size(), direct.matched_rows().size());
  }

  // Partial replay below the watermark == direct feed of [0, 700).
  {
    BinnedAggregator served(&*bound, Recording());
    EXPECT_EQ(ReuseCache::Serve(match, &served, 0, 700), 700);
    BinnedAggregator direct(&*bound, Recording());
    direct.ProcessRange(0, 700);
    EXPECT_EQ(served.rows_seen(), direct.rows_seen());
    EXPECT_EQ(served.rows_matched(), direct.rows_matched());
    testharness::ExpectResultsBitIdentical(
        served.ExactResult(), direct.ExactResult(), "partial replay");
  }

  // Refined replay: candidates re-filtered through the stricter query.
  {
    QuerySpec refined = base;
    refined.filter.And(Range("amount", -3.0, 3.0));
    auto refined_bound = BoundQuery::Bind(refined, *catalog);
    ASSERT_TRUE(refined_bound.ok());
    auto refined_match = cache.Lookup(refined);
    ASSERT_EQ(refined_match.kind, ReuseCache::MatchKind::kRefinement);

    BinnedAggregator served(&*refined_bound, Recording());
    EXPECT_EQ(ReuseCache::Serve(refined_match, &served, 0, 2000), 2000);
    BinnedAggregator direct(&*refined_bound, Recording());
    direct.ProcessRange(0, 2000);
    EXPECT_EQ(served.rows_seen(), direct.rows_seen());
    EXPECT_EQ(served.rows_matched(), direct.rows_matched());
    testharness::ExpectResultsBitIdentical(
        served.ExactResult(), direct.ExactResult(), "refined replay");
    // Matches recorded during replay carry the original feed positions.
    ASSERT_EQ(served.matched_rows().size(), direct.matched_rows().size());
    for (size_t i = 0; i < served.matched_rows().size(); ++i) {
      EXPECT_EQ(served.matched_rows()[i].pos, direct.matched_rows()[i].pos);
      EXPECT_EQ(served.matched_rows()[i].row, direct.matched_rows()[i].row);
    }
  }

  // Ranges past the watermark serve nothing.
  {
    BinnedAggregator served(&*bound, Recording());
    EXPECT_EQ(ReuseCache::Serve(match, &served, 2000, 2600), 2000);
    EXPECT_EQ(served.rows_seen(), 0);
  }
}

/// Snapshots compose with morsel-parallel continuation: adopting a
/// snapshot then feeding the rest through MorselProcessRange equals the
/// same call sequence without the cache, at any parallelism.
TEST(ReuseCacheTest, ServeComposesWithMorselPathMergeFrom) {
  auto catalog = MakeCatalog();
  ReuseCache cache;
  QuerySpec spec = BaseSpec(*catalog);
  spec.filter.And(Range("value", 10.0, 80.0));
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregator source(&*bound, Recording());
  MorselProcessRange(&source, 0, 1500, /*parallelism=*/4,
                     /*morsel_rows=*/512);
  cache.Store(spec, source, BinderFor(catalog));
  auto match = cache.Lookup(spec);
  ASSERT_EQ(match.kind, ReuseCache::MatchKind::kEqual);

  for (int parallelism : {1, 2, 4}) {
    BinnedAggregator served(&*bound, Recording());
    ASSERT_EQ(ReuseCache::Serve(match, &served, 0, kRows), 1500);
    MorselProcessRange(&served, 1500, kRows, parallelism, /*morsel_rows=*/512);

    BinnedAggregator direct(&*bound, Recording());
    MorselProcessRange(&direct, 0, 1500, /*parallelism=*/2,
                       /*morsel_rows=*/512);
    MorselProcessRange(&direct, 1500, kRows, parallelism, /*morsel_rows=*/512);

    EXPECT_EQ(served.rows_seen(), direct.rows_seen());
    EXPECT_EQ(served.rows_matched(), direct.rows_matched());
    testharness::ExpectResultsBitIdentical(
        served.ExactResult(), direct.ExactResult(),
        "morsel continuation, parallelism " + std::to_string(parallelism));
    // Recorder positions survive the partial merges in morsel order.
    ASSERT_EQ(served.matched_rows().size(), direct.matched_rows().size());
    for (size_t i = 0; i < served.matched_rows().size(); ++i) {
      EXPECT_EQ(served.matched_rows()[i].pos, direct.matched_rows()[i].pos);
    }
  }
}

/// Weighted feeds replay with their recorded weights.
TEST(ReuseCacheTest, WeightedReplayPreservesWeights) {
  auto catalog = MakeCatalog();
  ReuseCache cache;
  QuerySpec spec = BaseSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  // Two weight strata, as the stratified engine feeds them.
  std::vector<int64_t> rows(kRows);
  for (int64_t i = 0; i < kRows; ++i) rows[static_cast<size_t>(i)] = i;
  BinnedAggregator source(&*bound, Recording());
  source.ProcessBatch(rows.data(), 1200, 3.5);
  source.ProcessBatch(rows.data() + 1200, 800, 7.25);
  cache.Store(spec, source, BinderFor(catalog));

  auto match = cache.Lookup(spec);
  ASSERT_EQ(match.kind, ReuseCache::MatchKind::kEqual);
  BinnedAggregator served(&*bound, Recording());
  // Replay a window straddling the weight boundary.
  EXPECT_EQ(ReuseCache::Serve(match, &served, 0, 1700), 1700);

  BinnedAggregator direct(&*bound, Recording());
  direct.ProcessBatch(rows.data(), 1200, 3.5);
  direct.ProcessBatch(rows.data() + 1200, 500, 7.25);
  EXPECT_EQ(served.rows_seen(), direct.rows_seen());
  testharness::ExpectResultsBitIdentical(
      served.EstimateFromWeightedSample(1.96),
      direct.EstimateFromWeightedSample(1.96), "weighted replay");
}

/// Past the recording cap the candidate list is released and the state
/// becomes non-cacheable — memory stays bounded no matter how weak the
/// filter is.
TEST(ReuseCacheTest, RecorderOverflowDisablesCaching) {
  auto catalog = MakeCatalog();
  QuerySpec spec = BaseSpec(*catalog);  // no filter: every row matches
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregatorOptions options = Recording();
  options.record_matches_limit = 100;
  BinnedAggregator agg(&*bound, options);
  agg.ProcessRange(0, 500);
  EXPECT_TRUE(agg.matches_overflowed());
  EXPECT_TRUE(agg.matched_rows().empty());
  // Results are unaffected by the recorder overflowing.
  EXPECT_EQ(agg.rows_matched(), 500);

  ReuseCache cache;
  cache.Store(spec, agg, BinderFor(catalog));
  EXPECT_EQ(cache.size(), 0u);

  // Overflow propagates through merges (morsel partials).
  BinnedAggregator target(&*bound, options);
  target.MergeFrom(agg);
  EXPECT_TRUE(target.matches_overflowed());

  // Merging matched rows from a non-recording side poisons the
  // recorder too: the candidate list would otherwise silently miss them.
  BinnedAggregator plain(&*bound);
  plain.ProcessRange(0, 50);
  BinnedAggregator recording(&*bound, Recording());
  recording.MergeFrom(plain);
  EXPECT_TRUE(recording.matches_overflowed());
  EXPECT_TRUE(recording.matched_rows().empty());
}

/// The byte budget LRU-evicts heavy snapshots while keeping the most
/// recent entry.
TEST(ReuseCacheTest, ByteBudgetEviction) {
  auto catalog = MakeCatalog();
  ReuseCacheOptions options;
  // Each unfiltered snapshot records 2000 matches (~48 KB + floor).
  options.max_total_bytes = 120 << 10;
  ReuseCache cache(options);

  for (double lo : {1.0, 2.0, 3.0, 4.0}) {
    QuerySpec spec = BaseSpec(*catalog);
    spec.filter.And(Range("amount", -100.0 - lo, 100.0 + lo));  // matches all
    auto bound = BoundQuery::Bind(spec, *catalog);
    ASSERT_TRUE(bound.ok());
    BinnedAggregator agg(&*bound, Recording());
    agg.ProcessRange(0, 2000);
    cache.Store(spec, agg, BinderFor(catalog));
    EXPECT_LE(cache.total_bytes(), options.max_total_bytes);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GT(cache.stats().evictions, 0);
  // The most recently stored entry survives.
  QuerySpec last = BaseSpec(*catalog);
  last.filter.And(Range("amount", -104.0, 104.0));
  EXPECT_EQ(cache.Lookup(last).kind, ReuseCache::MatchKind::kEqual);
}

TEST(ReuseCacheTest, PerVizLruEviction) {
  auto catalog = MakeCatalog();
  ReuseCacheOptions options;
  options.max_entries_per_viz = 2;
  options.max_entries_total = 3;
  ReuseCache cache(options);

  const auto store_with_filter = [&](const std::string& viz, double lo) {
    QuerySpec spec = BaseSpec(*catalog, viz);
    spec.filter.And(Range("value", lo, 99.0));
    auto bound = BoundQuery::Bind(spec, *catalog);
    ASSERT_TRUE(bound.ok());
    BinnedAggregator agg(&*bound, Recording());
    agg.ProcessRange(0, 200);
    cache.Store(spec, agg, BinderFor(catalog));
  };

  store_with_filter("viz_a", 1.0);
  store_with_filter("viz_a", 2.0);
  ASSERT_EQ(cache.size(), 2u);
  // Third distinct signature for viz_a evicts that viz's LRU entry.
  store_with_filter("viz_a", 3.0);
  EXPECT_EQ(cache.size(), 2u);
  {
    QuerySpec oldest = BaseSpec(*catalog, "viz_a");
    oldest.filter.And(Range("value", 1.0, 99.0));
    EXPECT_EQ(cache.Lookup(oldest).kind, ReuseCache::MatchKind::kNone);
  }
  // Another viz gets its own budget, but the global cap still holds.
  store_with_filter("viz_b", 1.0);
  EXPECT_EQ(cache.size(), 3u);
  store_with_filter("viz_b", 2.0);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_GT(cache.stats().evictions, 0);
}

/// Workflow boundaries clear the cache; discarding a viz drops only its
/// entries.
TEST(ReuseCacheTest, ClearAndDropViz) {
  auto catalog = MakeCatalog();
  ReuseCache cache;
  const auto store_for = [&](const std::string& viz) {
    QuerySpec spec = BaseSpec(*catalog, viz);
    auto bound = BoundQuery::Bind(spec, *catalog);
    ASSERT_TRUE(bound.ok());
    BinnedAggregator agg(&*bound, Recording());
    agg.ProcessRange(0, 100);
    cache.Store(spec, agg, BinderFor(catalog));
  };
  store_for("viz_a");
  {
    QuerySpec other = BaseSpec(*catalog, "viz_b");
    other.filter.And(Range("value", 1.0, 99.0));
    auto bound = BoundQuery::Bind(other, *catalog);
    ASSERT_TRUE(bound.ok());
    BinnedAggregator agg(&*bound, Recording());
    agg.ProcessRange(0, 100);
    cache.Store(other, agg, BinderFor(catalog));
  }
  ASSERT_EQ(cache.size(), 2u);

  cache.DropViz("viz_a");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(BaseSpec(*catalog, "viz_a")).kind,
            ReuseCache::MatchKind::kNone);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.total_bytes(), 0);
}

TEST(ReuseCacheTest, StatsCountHitsAndMisses) {
  auto catalog = MakeCatalog();
  ReuseCache cache;
  QuerySpec spec = BaseSpec(*catalog);
  EXPECT_EQ(cache.Lookup(spec).kind, ReuseCache::MatchKind::kNone);

  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound, Recording());
  agg.ProcessRange(0, 100);
  cache.Store(spec, agg, BinderFor(catalog));
  cache.Lookup(spec);

  QuerySpec refined = spec;
  refined.filter.And(Range("value", 0.0, 50.0));
  cache.Lookup(refined);

  const metrics::ReuseCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.equal_hits, 1);
  EXPECT_EQ(stats.refinement_hits, 1);
  EXPECT_EQ(stats.stores, 1);
  EXPECT_EQ(stats.entries, 1);
}

}  // namespace
}  // namespace idebench::exec
