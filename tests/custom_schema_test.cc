/// \file custom_schema_test.cc
/// Customizability (paper §3.2): the workload generator, scaler and
/// driver must work against arbitrary user schemas, not just the default
/// flights dataset.

#include <gtest/gtest.h>

#include "datagen/cholesky_scaler.h"
#include "driver/benchmark_driver.h"
#include "engines/registry.h"
#include "tests/test_util.h"
#include "workflow/generator.h"

namespace idebench {
namespace {

/// A non-flights schema with mixed types.
storage::Table MakeOrdersTable(int64_t rows = 2'000) {
  storage::Schema schema({
      {"order_value", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"quantity", storage::DataType::kInt64,
       storage::AttributeKind::kQuantitative},
      {"region", storage::DataType::kString, storage::AttributeKind::kNominal},
  });
  storage::Table t("orders", schema);
  Rng rng(77);
  const char* regions[] = {"north", "south", "east", "west"};
  for (int64_t i = 0; i < rows; ++i) {
    t.mutable_column(0).AppendDouble(std::max(1.0, rng.Gaussian(100.0, 40.0)));
    t.mutable_column(1).AppendInt(rng.UniformInt(1, 9));
    t.mutable_column(2).AppendString(regions[rng.UniformInt(0, 3)]);
  }
  return t;
}

TEST(CustomSchemaTest, GeneratorFallsBackToAllColumns) {
  storage::Table orders = MakeOrdersTable();
  workflow::GeneratorConfig config;
  config.min_interactions = 10;
  config.max_interactions = 14;
  workflow::WorkflowGenerator generator(&orders, config, 5);
  for (workflow::WorkflowType type : workflow::AllWorkflowTypes()) {
    auto wf = generator.Generate(type, "orders_wf");
    ASSERT_TRUE(wf.ok()) << workflow::WorkflowTypeName(type);
    // Every referenced column must exist in the orders schema.
    for (const auto& interaction : wf->interactions) {
      if (interaction.type != workflow::InteractionType::kCreateViz) continue;
      for (const auto& bin : interaction.viz.bins) {
        EXPECT_GE(orders.schema().FieldIndex(bin.column), 0) << bin.column;
      }
      for (const auto& agg : interaction.viz.aggregates) {
        if (!agg.column.empty()) {
          EXPECT_GE(orders.schema().FieldIndex(agg.column), 0) << agg.column;
        }
      }
    }
  }
}

TEST(CustomSchemaTest, AggregatesNeverTargetNominalColumns) {
  storage::Table orders = MakeOrdersTable();
  workflow::GeneratorConfig config;
  workflow::WorkflowGenerator generator(&orders, config, 6);
  auto wf = generator.Generate(workflow::WorkflowType::kMixed, "w");
  ASSERT_TRUE(wf.ok());
  for (const auto& interaction : wf->interactions) {
    if (interaction.type != workflow::InteractionType::kCreateViz) continue;
    for (const auto& agg : interaction.viz.aggregates) {
      EXPECT_NE(agg.column, "region");
    }
  }
}

TEST(CustomSchemaTest, ScalerWorksWithoutDerivedColumns) {
  storage::Table orders = MakeOrdersTable();
  datagen::ScalerConfig config;
  config.target_rows = 5'000;
  auto scaled = datagen::ScaleDataset(orders, config);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->num_rows(), 5'000);
  // The nominal column keeps its dictionary.
  EXPECT_EQ(scaled->ColumnByName("region")->dictionary().size(), 4);
  // Marginal mean preserved within a few percent.
  double mean = 0.0;
  for (int64_t r = 0; r < scaled->num_rows(); ++r) {
    mean += scaled->ColumnByName("order_value")->ValueAsDouble(r);
  }
  mean /= static_cast<double>(scaled->num_rows());
  EXPECT_NEAR(mean, 100.0, 10.0);
}

TEST(CustomSchemaTest, EndToEndBenchmarkOnCustomData) {
  auto catalog = std::make_shared<storage::Catalog>();
  ASSERT_TRUE(catalog
                  ->AddTable(std::make_shared<storage::Table>(
                      MakeOrdersTable(5'000)))
                  .ok());
  catalog->set_nominal_rows(50'000'000);

  workflow::GeneratorConfig generator_config;
  generator_config.min_interactions = 8;
  generator_config.max_interactions = 10;
  workflow::WorkflowGenerator generator(catalog->fact_table(),
                                        generator_config, 12);
  auto wf = generator.Generate(workflow::WorkflowType::kOneToN, "orders");
  ASSERT_TRUE(wf.ok());

  for (const std::string& name : {std::string("progressive"),
                                  std::string("stratified")}) {
    auto engine = engines::CreateEngine(name);
    ASSERT_TRUE(engine.ok());
    driver::Settings settings;
    settings.time_requirement = SecondsToMicros(3.0);
    settings.think_time = SecondsToMicros(1.0);
    driver::BenchmarkDriver benchmark_driver(settings, engine->get(), catalog);
    ASSERT_TRUE(benchmark_driver.PrepareEngine().ok()) << name;
    std::vector<driver::QueryRecord> records;
    ASSERT_TRUE(benchmark_driver.RunWorkflow(*wf, &records).ok()) << name;
    EXPECT_GT(records.size(), 5u) << name;
  }
}

TEST(CustomSchemaTest, StratifiedEngineWithoutConfiguredColumnIsUniform) {
  // The default stratification column ("carrier") does not exist in the
  // orders schema; Prepare must fall back to uniform sampling.
  auto catalog = std::make_shared<storage::Catalog>();
  ASSERT_TRUE(catalog
                  ->AddTable(std::make_shared<storage::Table>(
                      MakeOrdersTable(1'000)))
                  .ok());
  auto engine = engines::CreateEngine("stratified");
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE((*engine)->Prepare(catalog).ok());
}

}  // namespace
}  // namespace idebench
