/// \file segment_test.cc
/// Tiered columnar storage (storage/segment.h): round-trip bit-identity,
/// per-segment encoding choice, persisted zone maps and dictionary
/// bitsets, edge-size tables, catalog manifests, and — the reason the
/// reader bounds-checks everything — a byte-flip / truncation corruption
/// sweep where every mutated file must be rejected with a clean `Status`.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/fault_injector.h"
#include "common/random.h"
#include "storage/segment.h"

namespace idebench::storage {
namespace {

/// Temp path helper; the file/dir contents are removed in the destructor.
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_(std::string(::testing::TempDir()) + "/" + name) {}
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A table whose columns exercise every encoding: sorted low-cardinality
/// int64 (RLE), narrow-range noisy int64 (bit-packed), wide random int64
/// (raw), doubles with NaN payloads and signed zeros (raw), and a string
/// column whose values cluster by region so per-segment bitsets differ.
Table MakeMixedTable(int64_t rows, uint64_t seed = 7) {
  Schema schema({
      {"sorted", DataType::kInt64, AttributeKind::kNominal},
      {"narrow", DataType::kInt64, AttributeKind::kNominal},
      {"wide", DataType::kInt64, AttributeKind::kQuantitative},
      {"value", DataType::kDouble, AttributeKind::kQuantitative},
      {"tag", DataType::kString, AttributeKind::kNominal},
  });
  Table t("mixed", schema);
  Rng rng(seed);
  const char* tags[] = {"alpha", "beta", "gamma", "delta",
                        "epsilon", "zeta", "eta", "theta"};
  for (int64_t i = 0; i < rows; ++i) {
    t.mutable_column(0).AppendInt(i / 977);  // long runs, sorted
    t.mutable_column(1).AppendInt(1000 + rng.UniformInt(0, 200));
    t.mutable_column(2).AppendInt(rng.UniformInt(
        std::numeric_limits<int32_t>::min(),
        std::numeric_limits<int32_t>::max()));
    double v;
    if (rng.Bernoulli(0.03)) {
      v = std::numeric_limits<double>::quiet_NaN();
    } else if (rng.Bernoulli(0.02)) {
      v = -0.0;
    } else {
      v = rng.Uniform(-1e6, 1e6);
    }
    t.mutable_column(3).AppendDouble(v);
    // Early rows only use the first half of the tag alphabet, late rows
    // the second half — so segment bitsets genuinely differ.
    const int lo = i < rows / 2 ? 0 : 4;
    t.mutable_column(4).AppendString(tags[lo + rng.UniformInt(0, 3)]);
  }
  return t;
}

/// Bitwise column equality: typed storage, dictionary, stats, zone maps.
void ExpectColumnsIdentical(const Column& a, const Column& b) {
  ASSERT_EQ(a.type(), b.type()) << a.name();
  ASSERT_EQ(a.size(), b.size()) << a.name();
  if (a.type() == DataType::kDouble) {
    for (int64_t i = 0; i < a.size(); ++i) {
      uint64_t ba, bb;
      std::memcpy(&ba, &a.doubles()[static_cast<size_t>(i)], 8);
      std::memcpy(&bb, &b.doubles()[static_cast<size_t>(i)], 8);
      ASSERT_EQ(ba, bb) << a.name() << " row " << i
                        << ": double bits differ";
    }
  } else {
    ASSERT_EQ(a.ints(), b.ints()) << a.name();
  }
  ASSERT_EQ(a.dictionary().values(), b.dictionary().values()) << a.name();
  // Stats and zone maps must rebuild identically (Decode replays every
  // value through the append funnel).
  uint64_t mina, minb, maxa, maxb;
  const double am = a.Min(), bm = b.Min(), ax = a.Max(), bx = b.Max();
  std::memcpy(&mina, &am, 8);
  std::memcpy(&minb, &bm, 8);
  std::memcpy(&maxa, &ax, 8);
  std::memcpy(&maxb, &bx, 8);
  EXPECT_EQ(mina, minb) << a.name() << ": Min differs";
  EXPECT_EQ(maxa, maxb) << a.name() << ": Max differs";
  ASSERT_EQ(a.zone_map().size(), b.zone_map().size()) << a.name();
  for (size_t z = 0; z < a.zone_map().size(); ++z) {
    EXPECT_EQ(a.zone_map()[z].min, b.zone_map()[z].min) << a.name();
    EXPECT_EQ(a.zone_map()[z].max, b.zone_map()[z].max) << a.name();
    EXPECT_EQ(a.zone_map()[z].nan_count, b.zone_map()[z].nan_count)
        << a.name();
  }
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int c = 0; c < a.num_columns(); ++c) {
    ExpectColumnsIdentical(a.column(c), b.column(c));
  }
}

// --- Round trip -------------------------------------------------------------

TEST(SegmentFileTest, MixedTableRoundTripsBitIdentical) {
  const Table original = MakeMixedTable(3 * kSegmentRows + 1234);
  TempPath file("mixed_roundtrip.seg");
  ASSERT_TRUE(WriteSegmentFile(original, file.path()).ok());

  auto opened = SegmentFile::Open(file.path());
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened->table_name(), "mixed");
  EXPECT_EQ(opened->num_rows(), original.num_rows());
  EXPECT_EQ(opened->num_segments(), 4);
  EXPECT_EQ(opened->segment_rows(3), 1234);

  auto decoded = opened->Decode();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectTablesIdentical(original, *decoded);
}

TEST(SegmentFileTest, EdgeSizesRoundTrip) {
  for (const int64_t rows :
       {int64_t{0}, int64_t{1}, kSegmentRows, kSegmentRows + 1}) {
    const Table original = MakeMixedTable(rows, /*seed=*/rows + 3);
    TempPath file("edge_" + std::to_string(rows) + ".seg");
    ASSERT_TRUE(WriteSegmentFile(original, file.path()).ok()) << rows;
    auto opened = SegmentFile::Open(file.path());
    ASSERT_TRUE(opened.ok()) << rows << ": " << opened.status();
    EXPECT_EQ(opened->num_segments(),
              (rows + kSegmentRows - 1) / kSegmentRows)
        << rows;
    auto decoded = opened->Decode();
    ASSERT_TRUE(decoded.ok()) << rows << ": " << decoded.status();
    ExpectTablesIdentical(original, *decoded);
  }
}

// --- Encoding choice --------------------------------------------------------

TEST(SegmentFileTest, EncodingChosenPerColumnShape) {
  const Table original = MakeMixedTable(kSegmentRows);
  TempPath file("encodings.seg");
  ASSERT_TRUE(WriteSegmentFile(original, file.path()).ok());
  auto opened = SegmentFile::Open(file.path());
  ASSERT_TRUE(opened.ok()) << opened.status();

  // Sorted, ~67 runs of ~977: RLE by a mile.
  EXPECT_EQ(opened->view(opened->ColumnIndex("sorted"), 0).encoding,
            SegmentEncoding::kRle);
  // 201 distinct noisy values: 8-bit FOR packing.
  const SegmentView& narrow =
      opened->view(opened->ColumnIndex("narrow"), 0);
  EXPECT_EQ(narrow.encoding, SegmentEncoding::kBitPacked);
  EXPECT_EQ(narrow.base, 1000);
  EXPECT_EQ(narrow.bits, 8);
  // Full 32-bit range noise: packing needs 32 bits (4 B/row) and still
  // beats raw; what matters is the values survive exactly (round-trip
  // test above), so only assert it is not RLE.
  EXPECT_NE(opened->view(opened->ColumnIndex("wide"), 0).encoding,
            SegmentEncoding::kRle);
  // Doubles are always raw — NaN payloads must survive byte-exact.
  EXPECT_EQ(opened->view(opened->ColumnIndex("value"), 0).encoding,
            SegmentEncoding::kRawDouble);
}

TEST(SegmentFileTest, ConstantColumnPacksToRleSingleRun) {
  Schema schema({{"k", DataType::kInt64, AttributeKind::kNominal}});
  Table t("konst", schema);
  for (int64_t i = 0; i < kSegmentRows; ++i) {
    t.mutable_column(0).AppendInt(42);
  }
  TempPath file("konst.seg");
  ASSERT_TRUE(WriteSegmentFile(t, file.path()).ok());
  auto opened = SegmentFile::Open(file.path());
  ASSERT_TRUE(opened.ok()) << opened.status();
  const SegmentView& v = opened->view(0, 0);
  EXPECT_EQ(v.encoding, SegmentEncoding::kRle);
  EXPECT_EQ(v.num_runs, 1);
  EXPECT_EQ(v.rle_values()[0], 42);
  EXPECT_EQ(v.rle_lengths()[0], kSegmentRows);
  // 64K rows of one value: 12 payload bytes.
  EXPECT_EQ(v.bytes, 12u);
}

// --- Persisted zones and dictionary bitsets ---------------------------------

TEST(SegmentFileTest, FooterZonesMatchColumnZoneMap) {
  const Table original = MakeMixedTable(2 * kSegmentRows + 99);
  TempPath file("zones.seg");
  ASSERT_TRUE(WriteSegmentFile(original, file.path()).ok());
  auto opened = SegmentFile::Open(file.path());
  ASSERT_TRUE(opened.ok()) << opened.status();
  for (int c = 0; c < original.num_columns(); ++c) {
    const auto& zones = original.column(c).zone_map();
    ASSERT_EQ(static_cast<int64_t>(zones.size()), opened->num_segments());
    for (int64_t s = 0; s < opened->num_segments(); ++s) {
      const ZoneEntry& z = opened->view(c, s).zone;
      EXPECT_EQ(z.min, zones[static_cast<size_t>(s)].min);
      EXPECT_EQ(z.max, zones[static_cast<size_t>(s)].max);
      EXPECT_EQ(z.nan_count, zones[static_cast<size_t>(s)].nan_count);
    }
  }
}

TEST(SegmentFileTest, DictBitsetTracksPerSegmentPresence) {
  // MakeMixedTable confines tags 0..3 to the first half of the rows and
  // tags 4..7 to the second half.
  const Table original = MakeMixedTable(2 * kSegmentRows);
  TempPath file("bitsets.seg");
  ASSERT_TRUE(WriteSegmentFile(original, file.path()).ok());
  auto opened = SegmentFile::Open(file.path());
  ASSERT_TRUE(opened.ok()) << opened.status();
  const int tag = opened->ColumnIndex("tag");
  ASSERT_GE(tag, 0);
  ASSERT_EQ(opened->column_meta(tag).dict_values.size(), 8u);
  const SegmentView& first = opened->view(tag, 0);
  const SegmentView& second = opened->view(tag, 1);
  for (int64_t code = 0; code < 4; ++code) {
    EXPECT_TRUE(first.MightContainCode(code)) << code;
    EXPECT_FALSE(second.MightContainCode(code)) << code;
  }
  for (int64_t code = 4; code < 8; ++code) {
    EXPECT_FALSE(first.MightContainCode(code)) << code;
    EXPECT_TRUE(second.MightContainCode(code)) << code;
  }
  // Out-of-range codes are proven absent; non-string columns never prune.
  EXPECT_FALSE(first.MightContainCode(-1));
  EXPECT_FALSE(first.MightContainCode(1000));
  EXPECT_TRUE(opened->view(opened->ColumnIndex("wide"), 0)
                  .MightContainCode(12345));
}

// --- Corruption -------------------------------------------------------------

TEST(SegmentFileTest, EveryByteFlipIsRejected) {
  const Table original = MakeMixedTable(kSegmentRows / 16);
  TempPath file("flip.seg");
  ASSERT_TRUE(WriteSegmentFile(original, file.path()).ok());
  const std::vector<uint8_t> pristine = ReadAll(file.path());
  ASSERT_GT(pristine.size(), 0u);

  // Flip one bit at a sweep of positions covering head magic, payload,
  // footer and trailer.  The checksum covers [0, size-16) and the tail
  // magic/size field are validated directly, so every flip must surface
  // as a clean error from Open (never a crash, never silent acceptance).
  Rng rng(23);
  std::vector<size_t> positions = {0, 1, 7, 8, 9,
                                   pristine.size() - 1, pristine.size() - 8,
                                   pristine.size() - 16, pristine.size() - 17,
                                   pristine.size() - 24};
  for (int i = 0; i < 64; ++i) {
    positions.push_back(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pristine.size()) - 1)));
  }
  for (const size_t pos : positions) {
    std::vector<uint8_t> mutated = pristine;
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
    WriteAll(file.path(), mutated);
    auto opened = SegmentFile::Open(file.path());
    EXPECT_FALSE(opened.ok()) << "flip at byte " << pos << " was accepted";
  }
}

TEST(SegmentFileTest, EveryTruncationIsRejected) {
  const Table original = MakeMixedTable(kSegmentRows / 16);
  TempPath file("trunc.seg");
  ASSERT_TRUE(WriteSegmentFile(original, file.path()).ok());
  const std::vector<uint8_t> pristine = ReadAll(file.path());

  std::vector<size_t> lengths = {0, 1, 8, 16, 23, 24,
                                 pristine.size() / 2, pristine.size() - 1};
  Rng rng(29);
  for (int i = 0; i < 16; ++i) {
    lengths.push_back(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pristine.size()) - 1)));
  }
  for (const size_t len : lengths) {
    WriteAll(file.path(),
             std::vector<uint8_t>(pristine.begin(),
                                  pristine.begin() +
                                      static_cast<std::ptrdiff_t>(len)));
    auto opened = SegmentFile::Open(file.path());
    EXPECT_FALSE(opened.ok()) << "truncation to " << len << " was accepted";
  }
}

TEST(SegmentFileTest, MissingFileIsRejected) {
  auto opened = SegmentFile::Open(std::string(::testing::TempDir()) +
                                  "/does_not_exist.seg");
  EXPECT_FALSE(opened.ok());
}

// --- Chaos sites ------------------------------------------------------------

TEST(SegmentFileTest, ChaosSitesInjectOpenMmapAndChecksumFailures) {
  const Table original = MakeMixedTable(1000);
  TempPath file("chaos.seg");
  ASSERT_TRUE(WriteSegmentFile(original, file.path()).ok());

  for (const chaos::FaultSite site :
       {chaos::FaultSite::kSegmentOpen, chaos::FaultSite::kSegmentMmap,
        chaos::FaultSite::kSegmentChecksum}) {
    chaos::FaultInjector injector(31);
    injector.Arm(site, {/*probability=*/1.0, /*budget=*/-1});
    chaos::ScopedFaultInjector scoped(&injector);
    auto opened = SegmentFile::Open(file.path());
    EXPECT_FALSE(opened.ok()) << chaos::FaultSiteName(site);
    EXPECT_EQ(injector.site_stats(site).fires, 1)
        << chaos::FaultSiteName(site);
  }
  // Disarmed: the same file opens fine.
  auto opened = SegmentFile::Open(file.path());
  EXPECT_TRUE(opened.ok()) << opened.status();
}

// --- Catalog round trip -----------------------------------------------------

TEST(SegmentCatalogTest, CatalogRoundTripsWithManifest) {
  auto fact = std::make_shared<Table>(MakeMixedTable(5000));
  Schema dim_schema({
      {"k", DataType::kInt64, AttributeKind::kNominal},
      {"label", DataType::kString, AttributeKind::kNominal},
  });
  auto dim = std::make_shared<Table>("dims", dim_schema);
  for (int64_t i = 0; i < 16; ++i) {
    dim->mutable_column(0).AppendInt(i);
    dim->mutable_column(1).AppendString("d" + std::to_string(i % 5));
  }
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(fact).ok());
  ASSERT_TRUE(catalog.AddTable(dim).ok());
  ASSERT_TRUE(catalog.AddForeignKey({"narrow", "dims", "k"}).ok());
  catalog.set_nominal_rows(123'456'789);

  const std::string dir =
      std::string(::testing::TempDir()) + "/segcat_roundtrip";
  ASSERT_TRUE(WriteCatalogSegments(catalog, dir).ok());

  auto loaded = LoadCatalogSegments(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->tables().size(), 2u);
  ExpectTablesIdentical(*catalog.tables()[0], *loaded->tables()[0]);
  ExpectTablesIdentical(*catalog.tables()[1], *loaded->tables()[1]);
  ASSERT_EQ(loaded->foreign_keys().size(), 1u);
  EXPECT_EQ(loaded->foreign_keys()[0].fact_column, "narrow");
  EXPECT_EQ(loaded->foreign_keys()[0].dimension_table, "dims");
  EXPECT_EQ(loaded->foreign_keys()[0].dimension_key, "k");
  EXPECT_EQ(loaded->nominal_rows(), 123'456'789);

  std::remove((dir + "/mixed.seg").c_str());
  std::remove((dir + "/dims.seg").c_str());
  std::remove((dir + "/manifest.json").c_str());
}

TEST(SegmentCatalogTest, MissingManifestIsRejected) {
  auto loaded = LoadCatalogSegments(std::string(::testing::TempDir()) +
                                    "/no_such_cat_dir");
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace idebench::storage
