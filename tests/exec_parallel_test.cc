/// \file exec_parallel_test.cc
/// Morsel-driven parallel execution tests (exec/parallel.h):
///
///  * thread-count invariance — the morsel path produces bit-identical
///    bins, estimates, margins, and row counters for every parallelism
///    in {1, 2, 4, 7}, across aggregate types, filters, joins, weights,
///    2-D binning, and the dense↔hash bin-table boundary;
///  * against the flat sequential scalar reference, integer-valued
///    accumulators (row counters, COUNT, MIN/MAX) are exactly equal and
///    real-valued sums agree to ~1e-12 relative (floating-point addition
///    is not associative, so the fixed morsel reduction tree can differ
///    from the flat fold in the last ulps);
///  * `BinnedAggregator::MergeFrom` unit tests with disjoint and
///    overlapping key sets and all dense/hash table combinations;
///  * worker-pool scheduling sanity and engine-level invariance for all
///    four engines plus the ground-truth oracle.

#include <atomic>
#include <chrono>
#include <thread>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aqp/sampler.h"
#include "common/logging.h"
#include "common/random.h"
#include "driver/ground_truth.h"
#include "driver/settings.h"
#include "engines/blocking_engine.h"
#include "engines/online_engine.h"
#include "engines/progressive_engine.h"
#include "engines/registry.h"
#include "engines/stratified_engine.h"
#include "exec/aggregator.h"
#include "exec/bound_query.h"
#include "exec/join_index.h"
#include "exec/parallel.h"

namespace idebench::exec {
namespace {

using query::AggregateSpec;
using query::AggregateType;
using query::BinDimension;
using query::BinningMode;
using query::QuerySpec;

constexpr int64_t kRows = 4000;
/// Small morsel override so a 4000-row fixture still spans several
/// morsels (tree depth > 1) in the invariance tests.
constexpr int64_t kSmallMorsel = 2 * kVectorBatchSize;

const int kThreadCounts[] = {1, 2, 4, 7};

/// Star catalog exercising every kernel: NaN aggregate inputs, dangling
/// foreign keys, string/int64/double columns, negative values.
std::shared_ptr<storage::Catalog> MakeWideCatalog(int64_t rows = kRows) {
  storage::Schema fact_schema({
      {"value", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"amount", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"group", storage::DataType::kString, storage::AttributeKind::kNominal},
      {"code", storage::DataType::kInt64, storage::AttributeKind::kNominal},
      {"dim_id", storage::DataType::kInt64, storage::AttributeKind::kNominal},
  });
  auto fact = std::make_shared<storage::Table>("fact", fact_schema);
  const char* groups[] = {"a", "b", "c", "d", "e", "f"};
  Rng rng(7);
  for (int64_t i = 0; i < rows; ++i) {
    fact->mutable_column(0).AppendDouble(rng.Uniform(-50.0, 150.0));
    fact->mutable_column(1).AppendDouble(
        rng.Bernoulli(0.05) ? std::numeric_limits<double>::quiet_NaN()
                            : rng.Uniform(0.0, 1000.0));
    fact->mutable_column(2).AppendString(groups[rng.UniformInt(0, 5)]);
    fact->mutable_column(3).AppendInt(rng.UniformInt(0, 12));
    fact->mutable_column(4).AppendInt(
        rng.Bernoulli(0.1) ? 99 : rng.UniformInt(0, 9));
  }

  storage::Schema dim_schema({
      {"dim_id", storage::DataType::kInt64, storage::AttributeKind::kNominal},
      {"dlabel", storage::DataType::kString, storage::AttributeKind::kNominal},
      {"dval", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
  });
  auto dim = std::make_shared<storage::Table>("dims", dim_schema);
  const char* dlabels[] = {"north", "south", "east", "west"};
  for (int64_t i = 0; i < 10; ++i) {
    dim->mutable_column(0).AppendInt(i);
    dim->mutable_column(1).AppendString(dlabels[i % 4]);
    dim->mutable_column(2).AppendDouble(static_cast<double>(i) * 2.5 - 3.0);
  }

  auto catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(catalog->AddTable(fact).ok());
  IDB_CHECK(catalog->AddTable(dim).ok());
  IDB_CHECK(catalog->AddForeignKey({"dim_id", "dims", "dim_id"}).ok());
  return catalog;
}

/// Flat (de-normalized) catalog with *integer-valued* doubles, so every
/// accumulator stream is exact and merge trees cannot differ from flat
/// folds — used where tests assert bitwise equality against references.
std::shared_ptr<storage::Catalog> MakeIntegralCatalog(int64_t rows) {
  storage::Schema schema({
      {"g", storage::DataType::kInt64, storage::AttributeKind::kNominal},
      {"v", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"group", storage::DataType::kString, storage::AttributeKind::kNominal},
  });
  auto fact = std::make_shared<storage::Table>("fact", schema);
  const char* groups[] = {"x", "y", "z"};
  for (int64_t i = 0; i < rows; ++i) {
    fact->mutable_column(0).AppendInt(i / 100);  // deterministic bins
    fact->mutable_column(1).AppendDouble(static_cast<double>(i % 37));
    fact->mutable_column(2).AppendString(groups[i % 3]);
  }
  auto catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(catalog->AddTable(fact).ok());
  return catalog;
}

AggregateSpec Agg(AggregateType type, const std::string& column = "") {
  AggregateSpec a;
  a.type = type;
  a.column = column;
  return a;
}

std::vector<AggregateSpec> AllAggs(const std::string& column) {
  return {Agg(AggregateType::kCount), Agg(AggregateType::kSum, column),
          Agg(AggregateType::kAvg, column), Agg(AggregateType::kMin, column),
          Agg(AggregateType::kMax, column)};
}

void ExpectNearRel(double a, double b, double tol, const char* what,
                   int64_t key, size_t agg) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_LE(std::fabs(a - b), tol * scale)
      << what << " differs in bin " << key << " agg " << agg << ": " << a
      << " vs " << b;
}

/// Asserts two results agree: identical bin keys and metadata; estimates
/// and margins bit-identical when `tol == 0`, else within `tol` relative.
void ExpectResultsMatch(const query::QueryResult& a,
                        const query::QueryResult& b, double tol = 0.0) {
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_DOUBLE_EQ(a.progress, b.progress);
  EXPECT_EQ(a.rows_processed, b.rows_processed);
  ASSERT_EQ(a.bins.size(), b.bins.size());
  for (const auto& [key, bin] : a.bins) {
    auto it = b.bins.find(key);
    ASSERT_NE(it, b.bins.end()) << "bin " << key << " missing";
    ASSERT_EQ(bin.values.size(), it->second.values.size());
    for (size_t i = 0; i < bin.values.size(); ++i) {
      if (tol == 0.0) {
        EXPECT_EQ(bin.values[i].estimate, it->second.values[i].estimate)
            << "estimate, bin " << key << " agg " << i;
        EXPECT_EQ(bin.values[i].margin, it->second.values[i].margin)
            << "margin, bin " << key << " agg " << i;
      } else {
        ExpectNearRel(bin.values[i].estimate, it->second.values[i].estimate,
                      tol, "estimate", key, i);
        ExpectNearRel(bin.values[i].margin, it->second.values[i].margin, tol,
                      "margin", key, i);
      }
    }
  }
}

/// Compares every snapshot type of two aggregators.
void ExpectAggregatorsMatch(const BinnedAggregator& a,
                            const BinnedAggregator& b, double tol = 0.0) {
  EXPECT_EQ(a.rows_seen(), b.rows_seen());
  EXPECT_EQ(a.rows_matched(), b.rows_matched());
  ExpectResultsMatch(a.ExactResult(), b.ExactResult(), tol);
  ExpectResultsMatch(a.EstimateFromUniformSample(2 * kRows, 1.96),
                     b.EstimateFromUniformSample(2 * kRows, 1.96), tol);
  ExpectResultsMatch(a.EstimateFromWeightedSample(1.96),
                     b.EstimateFromWeightedSample(1.96), tol);
}

Result<BoundQuery> BindWithJoins(
    const QuerySpec& spec, const storage::Catalog& catalog,
    std::unique_ptr<JoinIndex>* join_out) {
  std::vector<const JoinIndex*> joins;
  auto required = BoundQuery::RequiredJoins(spec, catalog);
  IDB_RETURN_NOT_OK(required.status());
  if (!required->empty()) {
    IDB_ASSIGN_OR_RETURN(JoinIndex built,
                         JoinIndex::BuildLazy(catalog, catalog.foreign_keys()[0]));
    *join_out = std::make_unique<JoinIndex>(std::move(built));
    joins.push_back(join_out->get());
  }
  return BoundQuery::Bind(spec, catalog, joins);
}

/// The invariance harness: feeds `rows` with `weight` through
///  (1) the flat scalar reference,
///  (2) the morsel path at parallelism 1 (the reference reduction tree),
///  (3) the morsel path at parallelism {2, 4, 7}.
/// (2) and (3) must agree *bitwise*; against (1), counters are exact and
/// estimates/margins agree within `scalar_tol` (0 = bitwise there too).
void RunThreadInvariance(const QuerySpec& spec,
                         const std::shared_ptr<storage::Catalog>& catalog,
                         const std::vector<int64_t>& rows, double weight,
                         double scalar_tol,
                         BinnedAggregatorOptions options = {}) {
  std::unique_ptr<JoinIndex> join;
  auto bound = BindWithJoins(spec, *catalog, &join);
  ASSERT_TRUE(bound.ok());

  BinnedAggregatorOptions scalar_options = options;
  scalar_options.enable_vectorized = false;
  BinnedAggregator scalar(&*bound, scalar_options);
  for (int64_t row : rows) scalar.ProcessRowWeighted(row, weight);

  BinnedAggregator reference(&*bound, options);
  ASSERT_TRUE(reference.uses_vectorized());
  MorselProcessBatch(&reference, rows.data(),
                     static_cast<int64_t>(rows.size()), weight,
                     /*parallelism=*/1, kSmallMorsel);

  // Counters are integral: exact against the scalar reference always.
  EXPECT_EQ(scalar.rows_seen(), reference.rows_seen());
  EXPECT_EQ(scalar.rows_matched(), reference.rows_matched());
  ExpectAggregatorsMatch(scalar, reference, scalar_tol);

  for (int threads : kThreadCounts) {
    BinnedAggregator parallel(&*bound, options);
    MorselProcessBatch(&parallel, rows.data(),
                       static_cast<int64_t>(rows.size()), weight, threads,
                       kSmallMorsel);
    // Bit-identical across every thread count: the reduction tree is
    // fixed by the morsel decomposition, not by the schedule.
    ExpectAggregatorsMatch(reference, parallel, /*tol=*/0.0);
  }
}

std::vector<int64_t> SequentialRows(int64_t n = kRows) {
  std::vector<int64_t> rows(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) rows[static_cast<size_t>(i)] = i;
  return rows;
}

std::vector<int64_t> ShuffledRowIds(uint64_t seed, int64_t n = kRows) {
  Rng rng(seed);
  aqp::ShuffledIndex index(n, &rng);
  return index.permutation();
}

// --- Thread-count invariance ------------------------------------------------

TEST(ThreadInvarianceTest, CountOnlyIsBitIdenticalToScalarReference) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "p";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount)};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  // COUNT accumulators are integers: merging is associative, so even the
  // scalar reference matches bit for bit.
  RunThreadInvariance(spec, catalog, ShuffledRowIds(11), 1.0,
                      /*scalar_tol=*/0.0);
}

TEST(ThreadInvarianceTest, AllAggregateTypes) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "p";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = AllAggs("value");
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  RunThreadInvariance(spec, catalog, SequentialRows(), 1.0, 1e-12);
  RunThreadInvariance(spec, catalog, ShuffledRowIds(13), 1.0, 1e-12);
}

TEST(ThreadInvarianceTest, FiltersWithNaNInputs) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "p";
  BinDimension d;
  d.column = "value";
  d.mode = BinningMode::kFixedCount;
  d.requested_bins = 16;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "amount"),
                     Agg(AggregateType::kAvg, "amount")};
  expr::Predicate range;
  range.column = "value";
  range.op = expr::CompareOp::kRange;
  range.lo = -20.0;
  range.hi = 120.0;
  spec.filter.And(range);
  expr::Predicate in_set;
  in_set.column = "code";
  in_set.op = expr::CompareOp::kIn;
  in_set.set_values = {1.0, 3.0, 5.0, 7.0, 11.0};
  spec.filter.And(in_set);
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  RunThreadInvariance(spec, catalog, ShuffledRowIds(17), 1.0, 1e-12);
}

TEST(ThreadInvarianceTest, TwoDimensionalBinning) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "p";
  BinDimension d1;
  d1.column = "value";
  d1.mode = BinningMode::kFixedCount;
  d1.requested_bins = 12;
  BinDimension d2;
  d2.column = "code";
  d2.mode = BinningMode::kNominal;
  spec.bins = {d1, d2};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "amount")};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  RunThreadInvariance(spec, catalog, ShuffledRowIds(19), 1.0, 1e-12);
}

TEST(ThreadInvarianceTest, JoinedDimensionColumns) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "p";
  BinDimension d;
  d.column = "dlabel";  // reached through the join, with dangling keys
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kAvg, "dval"),
                     Agg(AggregateType::kSum, "value")};
  expr::Predicate dim_pred;
  dim_pred.column = "dval";
  dim_pred.op = expr::CompareOp::kRange;
  dim_pred.lo = -10.0;
  dim_pred.hi = 18.0;
  spec.filter.And(dim_pred);
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  RunThreadInvariance(spec, catalog, ShuffledRowIds(23), 1.0, 1e-12);
}

TEST(ThreadInvarianceTest, WeightedSamples) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "p";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = AllAggs("amount");
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  for (double weight : {4.0, 117.5}) {
    RunThreadInvariance(spec, catalog, ShuffledRowIds(29), weight, 1e-12);
  }
}

TEST(ThreadInvarianceTest, HashBinTableFallback) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "p";
  BinDimension d;
  d.column = "value";
  d.mode = BinningMode::kFixedCount;
  d.requested_bins = 64;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "value")};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  BinnedAggregatorOptions no_dense;
  no_dense.enable_dense_bins = false;
  RunThreadInvariance(spec, catalog, SequentialRows(), 1.0, 1e-12, no_dense);
  // Key space one over the limit: transparent hash fallback inside the
  // partials as well as the target.
  BinnedAggregatorOptions tiny_limit;
  tiny_limit.dense_key_limit = 63;
  RunThreadInvariance(spec, catalog, SequentialRows(), 1.0, 1e-12, tiny_limit);
}

TEST(ThreadInvarianceTest, RangeAndShuffledDriversAtDefaultMorselSize) {
  // Large integral-valued input spanning several *default-size* morsels:
  // every accumulator stream is exact, so range/shuffled morsel drivers
  // must be bit-identical to the flat sequential path at any parallelism.
  constexpr int64_t kBig = 3 * kMorselRows + 12345;
  auto catalog = MakeIntegralCatalog(kBig);
  QuerySpec spec;
  spec.viz_name = "p";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount), Agg(AggregateType::kSum, "v"),
                     Agg(AggregateType::kMin, "v"),
                     Agg(AggregateType::kMax, "v")};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregator sequential(&*bound);
  sequential.ProcessRange(0, kBig);

  for (int threads : kThreadCounts) {
    BinnedAggregator ranged(&*bound);
    MorselProcessRange(&ranged, 0, kBig, threads);
    ExpectAggregatorsMatch(sequential, ranged, /*tol=*/0.0);
  }

  Rng rng(31);
  aqp::ShuffledIndex order(kBig, &rng);
  BinnedAggregator walk_seq(&*bound);
  walk_seq.ProcessShuffled(order, 500, kBig);
  for (int threads : {2, 7}) {
    BinnedAggregator walk_par(&*bound);
    MorselProcessShuffled(&walk_par, order, 500, kBig, threads);
    ExpectAggregatorsMatch(walk_seq, walk_par, /*tol=*/0.0);
  }
}

TEST(ThreadInvarianceTest, IncrementalFeedsAccumulateAcrossCalls) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "p";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount)};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  // Two increments through the morsel path == one sequential feed
  // (COUNT: exact), mirroring how engines advance queries in slices.
  BinnedAggregator whole(&*bound);
  whole.ProcessRange(0, kRows);
  BinnedAggregator sliced(&*bound);
  MorselProcessRange(&sliced, 0, kRows / 3, 4, kSmallMorsel);
  MorselProcessRange(&sliced, kRows / 3, kRows, 4, kSmallMorsel);
  ExpectAggregatorsMatch(whole, sliced, /*tol=*/0.0);
}

// --- MergeFrom unit tests ---------------------------------------------------

QuerySpec IntegralSpec(const storage::Catalog& catalog) {
  QuerySpec spec;
  spec.viz_name = "m";
  BinDimension d;
  d.column = "g";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = AllAggs("v");
  IDB_CHECK(spec.ResolveBins(catalog).ok());
  return spec;
}

TEST(MergeFromTest, DisjointKeySets) {
  auto catalog = MakeIntegralCatalog(2000);
  QuerySpec spec = IntegralSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  // Rows [0, 1000) bin to g 0..9, rows [1000, 2000) to g 10..19.
  BinnedAggregator left(&*bound);
  left.ProcessRange(0, 1000);
  BinnedAggregator right(&*bound);
  right.ProcessRange(1000, 2000);
  BinnedAggregator reference(&*bound);
  reference.ProcessRange(0, 2000);

  left.MergeFrom(right);
  ExpectAggregatorsMatch(reference, left, /*tol=*/0.0);
}

TEST(MergeFromTest, OverlappingKeySets) {
  auto catalog = MakeIntegralCatalog(2000);
  QuerySpec spec = IntegralSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregator left(&*bound);
  left.ProcessRange(0, 1500);
  BinnedAggregator right(&*bound);
  right.ProcessRange(500, 2000);  // bins 5..14 overlap with left
  BinnedAggregator reference(&*bound);
  reference.ProcessRange(0, 1500);
  reference.ProcessRange(500, 2000);

  left.MergeFrom(right);
  ExpectAggregatorsMatch(reference, left, /*tol=*/0.0);
}

TEST(MergeFromTest, WeightedAccumulatorsMerge) {
  auto catalog = MakeIntegralCatalog(1200);
  QuerySpec spec = IntegralSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  const std::vector<int64_t> rows = SequentialRows(1200);
  BinnedAggregator left(&*bound);
  left.ProcessBatch(rows.data(), 600, /*weight=*/3.0);
  BinnedAggregator right(&*bound);
  right.ProcessBatch(rows.data() + 600, 600, /*weight=*/3.0);
  BinnedAggregator reference(&*bound);
  reference.ProcessBatch(rows.data(), 1200, /*weight=*/3.0);

  left.MergeFrom(right);
  ExpectAggregatorsMatch(reference, left, /*tol=*/0.0);
}

TEST(MergeFromTest, DenseHashBoundaryReconciliation) {
  auto catalog = MakeIntegralCatalog(2000);
  QuerySpec spec = IntegralSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregatorOptions hash_options;
  hash_options.enable_dense_bins = false;

  BinnedAggregator reference(&*bound);
  reference.ProcessRange(0, 2000);

  // dense target <- hash source.
  {
    BinnedAggregator dense_target(&*bound);
    ASSERT_TRUE(dense_target.uses_dense_bins());
    BinnedAggregator hash_source(&*bound, hash_options);
    ASSERT_FALSE(hash_source.uses_dense_bins());
    dense_target.ProcessRange(0, 800);
    hash_source.ProcessRange(800, 2000);
    dense_target.MergeFrom(hash_source);
    ExpectAggregatorsMatch(reference, dense_target, /*tol=*/0.0);
  }
  // hash target <- dense source.
  {
    BinnedAggregator hash_target(&*bound, hash_options);
    BinnedAggregator dense_source(&*bound);
    hash_target.ProcessRange(0, 800);
    dense_source.ProcessRange(800, 2000);
    hash_target.MergeFrom(dense_source);
    ExpectAggregatorsMatch(reference, hash_target, /*tol=*/0.0);
  }
}

TEST(MergeFromTest, EmptySidesAreNoOps) {
  auto catalog = MakeIntegralCatalog(500);
  QuerySpec spec = IntegralSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregator reference(&*bound);
  reference.ProcessRange(0, 500);

  BinnedAggregator fed(&*bound);
  fed.ProcessRange(0, 500);
  BinnedAggregator empty(&*bound);
  fed.MergeFrom(empty);  // merging empty changes nothing
  ExpectAggregatorsMatch(reference, fed, /*tol=*/0.0);

  BinnedAggregator target(&*bound);
  target.MergeFrom(fed);  // merging into empty adopts everything
  ExpectAggregatorsMatch(reference, target, /*tol=*/0.0);
}

TEST(MergeFromTest, PartialsShareCompiledKernels) {
  auto catalog = MakeIntegralCatalog(500);
  QuerySpec spec = IntegralSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound);
  auto partial = agg.NewPartial();
  EXPECT_TRUE(partial->uses_vectorized());
  EXPECT_EQ(partial->uses_dense_bins(), agg.uses_dense_bins());
  EXPECT_EQ(partial->rows_seen(), 0);
  partial->ProcessRange(0, 500);
  agg.MergeFrom(*partial);
  BinnedAggregator reference(&*bound);
  reference.ProcessRange(0, 500);
  ExpectAggregatorsMatch(reference, agg, /*tol=*/0.0);
}

// --- Worker pool ------------------------------------------------------------

TEST(WorkerPoolTest, EveryTaskRunsExactlyOnce) {
  constexpr int64_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  WorkerPool::Shared().ParallelFor(kTasks, 7, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(WorkerPoolTest, NestedParallelForRunsInline) {
  std::atomic<int> total{0};
  WorkerPool::Shared().ParallelFor(4, 4, [&](int64_t) {
    WorkerPool::Shared().ParallelFor(8, 4,
                                     [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(WorkerPoolTest, ParallelismCapsParticipation) {
  // Grow the pool well beyond the next job's parallelism...
  WorkerPool::Shared().ParallelFor(16, 8, [](int64_t) {});
  // ...then verify a tasks > parallelism job never exceeds its cap, even
  // though idle workers are available.
  std::atomic<int> active{0};
  std::atomic<int> high_water{0};
  WorkerPool::Shared().ParallelFor(64, 2, [&](int64_t) {
    const int now = active.fetch_add(1) + 1;
    int seen = high_water.load();
    while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    active.fetch_sub(1);
  });
  EXPECT_LE(high_water.load(), 2);
  EXPECT_GE(high_water.load(), 1);
}

TEST(WorkerPoolTest, SequentialFallbackForTinyWork) {
  std::atomic<int> total{0};
  WorkerPool::Shared().ParallelFor(1, 8, [&](int64_t) { total.fetch_add(1); });
  WorkerPool::Shared().ParallelFor(3, 1, [&](int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 4);
}

// --- Engine-level invariance ------------------------------------------------

/// Rows large enough that engine scans span several default morsels.
constexpr int64_t kEngineRows = 2 * kMorselRows + 7777;

query::QueryResult RunEngineToCompletion(engines::Engine* engine,
                                         const QuerySpec& spec) {
  auto handle = engine->Submit(spec);
  IDB_CHECK(handle.ok());
  for (int i = 0; i < 10'000 && !engine->IsDone(*handle); ++i) {
    engine->RunFor(*handle, 60'000'000'000LL);
  }
  IDB_CHECK(engine->IsDone(*handle));
  auto result = engine->PollResult(*handle);
  IDB_CHECK(result.ok());
  return *result;
}

QuerySpec ExactAggSpec(const storage::Catalog& catalog) {
  // COUNT/MIN/MAX accumulators are associative, so results must be
  // bit-identical across *all* thread settings including the threads=1
  // sequential code path.
  QuerySpec spec;
  spec.viz_name = "e";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount), Agg(AggregateType::kMin, "v"),
                     Agg(AggregateType::kMax, "v")};
  IDB_CHECK(spec.ResolveBins(catalog).ok());
  return spec;
}

TEST(EngineThreadInvarianceTest, BlockingEngine) {
  auto catalog = MakeIntegralCatalog(kEngineRows);
  QuerySpec spec = ExactAggSpec(*catalog);
  std::vector<query::QueryResult> results;
  for (int threads : kThreadCounts) {
    engines::BlockingEngineConfig config;
    config.execution_threads = threads;
    engines::BlockingEngine engine(config);
    ASSERT_TRUE(engine.Prepare(catalog).ok());
    results.push_back(RunEngineToCompletion(&engine, spec));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectResultsMatch(results[0], results[i], /*tol=*/0.0);
  }
}

TEST(EngineThreadInvarianceTest, BlockingEngineSumWithinUlps) {
  auto catalog = MakeWideCatalog(20'000);
  QuerySpec spec;
  spec.viz_name = "e";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kSum, "value"),
                     Agg(AggregateType::kAvg, "amount")};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());

  auto run = [&](int threads) {
    engines::BlockingEngineConfig config;
    config.execution_threads = threads;
    engines::BlockingEngine engine(config);
    IDB_CHECK(engine.Prepare(catalog).ok());
    return RunEngineToCompletion(&engine, spec);
  };
  const query::QueryResult t1 = run(1);
  const query::QueryResult t2 = run(2);
  const query::QueryResult t4 = run(4);
  const query::QueryResult t7 = run(7);
  // Identical across every morsel-path thread count...
  ExpectResultsMatch(t2, t4, /*tol=*/0.0);
  ExpectResultsMatch(t2, t7, /*tol=*/0.0);
  // ...and within regrouping ulps of the sequential path.
  ExpectResultsMatch(t1, t2, /*tol=*/1e-12);
}

TEST(EngineThreadInvarianceTest, ProgressiveEngine) {
  auto catalog = MakeIntegralCatalog(kEngineRows);
  QuerySpec spec = ExactAggSpec(*catalog);
  std::vector<query::QueryResult> results;
  for (int threads : kThreadCounts) {
    engines::ProgressiveEngineConfig config;
    config.execution_threads = threads;
    engines::ProgressiveEngine engine(config);
    ASSERT_TRUE(engine.Prepare(catalog).ok());
    results.push_back(RunEngineToCompletion(&engine, spec));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectResultsMatch(results[0], results[i], /*tol=*/0.0);
  }
}

TEST(EngineThreadInvarianceTest, OnlineEngine) {
  auto catalog = MakeIntegralCatalog(kEngineRows);
  QuerySpec spec;
  spec.viz_name = "e";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount)};  // supported online
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  std::vector<query::QueryResult> results;
  for (int threads : kThreadCounts) {
    engines::OnlineEngineConfig config;
    config.execution_threads = threads;
    engines::OnlineEngine engine(config);
    ASSERT_TRUE(engine.Prepare(catalog).ok());
    results.push_back(RunEngineToCompletion(&engine, spec));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectResultsMatch(results[0], results[i], /*tol=*/0.0);
  }
}

TEST(EngineThreadInvarianceTest, StratifiedEngine) {
  auto catalog = MakeIntegralCatalog(60'000);
  QuerySpec spec;
  spec.viz_name = "e";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount), Agg(AggregateType::kSum, "v")};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());

  auto run = [&](int threads) {
    engines::StratifiedEngineConfig config;
    config.stratify_by = "group";
    config.sampling_rate = 0.5;
    config.execution_threads = threads;
    engines::StratifiedEngine engine(config);
    IDB_CHECK(engine.Prepare(catalog).ok());
    return RunEngineToCompletion(&engine, spec);
  };
  const query::QueryResult t1 = run(1);
  const query::QueryResult t2 = run(2);
  const query::QueryResult t4 = run(4);
  const query::QueryResult t7 = run(7);
  // Stratum weights are non-integral, so the morsel-path results agree
  // bitwise with each other and to ulps with the sequential path.
  ExpectResultsMatch(t2, t4, /*tol=*/0.0);
  ExpectResultsMatch(t2, t7, /*tol=*/0.0);
  ExpectResultsMatch(t1, t2, /*tol=*/1e-12);
}

TEST(GroundTruthOracleTest, ParallelScanIsThreadCountIndependent) {
  auto catalog = MakeWideCatalog(20'000);
  QuerySpec spec;
  spec.viz_name = "gt";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "value")};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());

  // The oracle always runs the morsel path, so even real-valued sums are
  // bit-identical across thread settings.
  driver::GroundTruthOracle one(catalog, /*threads=*/1);
  driver::GroundTruthOracle many(catalog, /*threads=*/5);
  auto a = one.Get(spec);
  auto b = many.Get(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectResultsMatch(**a, **b, /*tol=*/0.0);
}

TEST(RegistryTest, CreateEngineThreadsParameter) {
  for (const std::string& name : engines::BuiltinEngineNames()) {
    auto engine = engines::CreateEngine(name, 0, 4);
    EXPECT_TRUE(engine.ok()) << name;
  }
  EXPECT_FALSE(engines::CreateEngine("blocking", 0, -2).ok());
}

TEST(SettingsTest, ThreadsRoundTripAndValidation) {
  driver::Settings s;
  s.threads = 6;
  auto parsed = driver::Settings::FromJson(s.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->threads, 6);
  s.threads = -1;
  EXPECT_FALSE(s.Validate().ok());
  s.threads = 0;  // hardware concurrency
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_EQ(ResolveThreadCount(3), 3);
}

}  // namespace
}  // namespace idebench::exec
