#include "common/clock.h"

#include <gtest/gtest.h>

namespace idebench {
namespace {

TEST(VirtualClockTest, StartsAtConfiguredTime) {
  VirtualClock c;
  EXPECT_EQ(c.Now(), 0);
  VirtualClock c2(500);
  EXPECT_EQ(c2.Now(), 500);
}

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock c;
  c.Advance(100);
  c.Advance(250);
  EXPECT_EQ(c.Now(), 350);
}

TEST(VirtualClockTest, NegativeAdvanceIgnored) {
  VirtualClock c(10);
  c.Advance(-5);
  EXPECT_EQ(c.Now(), 10);
}

TEST(VirtualClockTest, AdvanceToOnlyMovesForward) {
  VirtualClock c;
  c.AdvanceTo(1000);
  EXPECT_EQ(c.Now(), 1000);
  c.AdvanceTo(500);
  EXPECT_EQ(c.Now(), 1000);
}

TEST(WallClockTest, MonotonicNonDecreasing) {
  WallClock c;
  const Micros a = c.Now();
  const Micros b = c.Now();
  EXPECT_LE(a, b);
}

TEST(WallClockTest, AdvanceSleeps) {
  WallClock c;
  const Micros before = c.Now();
  c.Advance(2'000);  // 2 ms
  EXPECT_GE(c.Now() - before, 1'500);
}

TEST(ClockConversionTest, SecondsRoundTrip) {
  EXPECT_EQ(SecondsToMicros(0.5), 500'000);
  EXPECT_EQ(SecondsToMicros(3.0), 3'000'000);
  EXPECT_DOUBLE_EQ(MicrosToSeconds(250'000), 0.25);
  EXPECT_DOUBLE_EQ(MicrosToSeconds(SecondsToMicros(7.25)), 7.25);
}

}  // namespace
}  // namespace idebench
