#include "report/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace idebench::report {
namespace {

driver::QueryRecord MakeRecord(int64_t id, bool violated, double mre,
                               double missing = 0.1,
                               const std::string& driver_name = "blocking") {
  driver::QueryRecord r;
  r.id = id;
  r.driver_name = driver_name;
  r.viz_name = "viz_0";
  r.data_size = "500m";
  r.workflow = "wf";
  r.workflow_type = "mixed";
  r.time_requirement = 3'000'000;
  r.think_time = 1'000'000;
  r.binning_type = "nominal";
  r.agg_type = "count";
  r.metrics.tr_violated = violated;
  r.metrics.mean_rel_error = mre;
  r.metrics.missing_bins = missing;
  r.metrics.bins_delivered = 10;
  r.metrics.bins_in_gt = 12;
  r.metrics.mean_margin_rel = mre / 2.0;
  r.metrics.cosine_distance = mre / 10.0;
  r.metrics.bias = 1.0;
  return r;
}

TEST(DetailedReportTest, HeaderAndRowFieldCountsMatch) {
  const std::string header = DetailedReportHeader();
  const std::string row = DetailedReportRow(MakeRecord(0, false, 0.25));
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
}

TEST(DetailedReportTest, WriteCsvFile) {
  std::vector<driver::QueryRecord> records = {MakeRecord(0, false, 0.1),
                                              MakeRecord(1, true, 0.0)};
  const std::string path =
      std::string(::testing::TempDir()) + "/detailed_report.csv";
  ASSERT_TRUE(WriteDetailedReport(records, path).ok());
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3);  // header + 2 rows
  std::remove(path.c_str());
}

TEST(DetailedReportTest, RenderTableTruncates) {
  std::vector<driver::QueryRecord> records;
  for (int i = 0; i < 50; ++i) records.push_back(MakeRecord(i, false, 0.1));
  const std::string table = RenderDetailedTable(records, 5);
  EXPECT_NE(table.find("45 more rows"), std::string::npos);
}

TEST(SummaryTest, ViolationRateAndQualityStats) {
  std::vector<driver::QueryRecord> records = {
      MakeRecord(0, false, 0.10), MakeRecord(1, false, 0.30),
      MakeRecord(2, true, 0.0),   MakeRecord(3, false, 0.20),
  };
  std::vector<const driver::QueryRecord*> ptrs;
  for (const auto& r : records) ptrs.push_back(&r);
  SummaryRow row = Summarize("test", ptrs);
  EXPECT_EQ(row.queries, 4);
  EXPECT_DOUBLE_EQ(row.tr_violation_rate, 0.25);
  // Quality stats over the 3 non-violating queries only.
  EXPECT_NEAR(row.median_mre, 0.20, 1e-12);
  EXPECT_NEAR(row.mean_mre, 0.20, 1e-12);
  EXPECT_NEAR(row.area_above_cdf, 0.20, 1e-12);
  EXPECT_NEAR(row.mean_missing_bins, 0.1, 1e-12);
}

TEST(SummaryTest, AreaAboveCdfTruncatesAtOne) {
  std::vector<driver::QueryRecord> records = {
      MakeRecord(0, false, 5.0),  // truncated to 1
      MakeRecord(1, false, 0.0),
  };
  std::vector<const driver::QueryRecord*> ptrs;
  for (const auto& r : records) ptrs.push_back(&r);
  SummaryRow row = Summarize("trunc", ptrs);
  EXPECT_NEAR(row.area_above_cdf, 0.5, 1e-12);
}

TEST(SummaryTest, EmptyGroup) {
  SummaryRow row = Summarize("empty", {});
  EXPECT_EQ(row.queries, 0);
  EXPECT_DOUBLE_EQ(row.tr_violation_rate, 0.0);
}

TEST(SummaryTest, SummarizeByGroupsInFirstEncounterOrder) {
  std::vector<driver::QueryRecord> records = {
      MakeRecord(0, false, 0.1, 0.1, "b_engine"),
      MakeRecord(1, false, 0.2, 0.1, "a_engine"),
      MakeRecord(2, false, 0.3, 0.1, "b_engine"),
  };
  auto rows = SummarizeBy(
      records, [](const driver::QueryRecord& r) { return r.driver_name; });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].group, "b_engine");
  EXPECT_EQ(rows[0].queries, 2);
  EXPECT_EQ(rows[1].group, "a_engine");
  EXPECT_EQ(rows[1].queries, 1);
}

TEST(SummaryTest, RenderTableContainsGroups) {
  std::vector<driver::QueryRecord> records = {MakeRecord(0, false, 0.1)};
  auto rows = SummarizeBy(
      records, [](const driver::QueryRecord& r) { return r.driver_name; });
  const std::string table = RenderSummaryTable(rows);
  EXPECT_NE(table.find("blocking"), std::string::npos);
  EXPECT_NE(table.find("tr_viol"), std::string::npos);
}

TEST(CdfTest, MonotoneAndBounded) {
  std::vector<driver::QueryRecord> records = {
      MakeRecord(0, false, 0.05), MakeRecord(1, false, 0.25),
      MakeRecord(2, false, 0.55), MakeRecord(3, false, 2.0),
  };
  std::vector<const driver::QueryRecord*> ptrs;
  for (const auto& r : records) ptrs.push_back(&r);
  const std::vector<double> cdf = MreCdf(ptrs, 11);
  ASSERT_EQ(cdf.size(), 11u);
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_GE(cdf.front(), 0.0);
  // Error 2.0 exceeds the truncation point: CDF tops out at 0.75.
  EXPECT_NEAR(cdf.back(), 0.75, 1e-12);
  // At threshold 0.3 two of four errors are below.
  EXPECT_NEAR(cdf[3], 0.5, 1e-12);
}

TEST(CdfTest, EmptyAndViolatedOnly) {
  const std::vector<double> empty_cdf = MreCdf({}, 5);
  for (double v : empty_cdf) EXPECT_DOUBLE_EQ(v, 0.0);

  std::vector<driver::QueryRecord> records = {MakeRecord(0, true, 0.1)};
  std::vector<const driver::QueryRecord*> ptrs{&records[0]};
  const std::vector<double> cdf = MreCdf(ptrs, 5);
  for (double v : cdf) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CdfTest, RenderProducesOneGlyphPerPoint) {
  const std::string rendered = RenderCdf({0.0, 0.5, 1.0});
  // Each glyph is a multi-byte UTF-8 block character or space.
  EXPECT_FALSE(rendered.empty());
}

}  // namespace
}  // namespace idebench::report
