#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace idebench::storage {
namespace {

TEST(DictionaryTest, InsertionOrderedCodes) {
  Dictionary d;
  EXPECT_EQ(d.GetOrInsert("x"), 0);
  EXPECT_EQ(d.GetOrInsert("y"), 1);
  EXPECT_EQ(d.GetOrInsert("x"), 0);  // idempotent
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.At(0), "x");
  EXPECT_EQ(d.At(1), "y");
  EXPECT_EQ(d.Lookup("y"), 1);
  EXPECT_EQ(d.Lookup("absent"), -1);
}

TEST(ColumnTest, Int64Basics) {
  Column c({"n", DataType::kInt64, AttributeKind::kQuantitative});
  c.AppendInt(5);
  c.AppendInt(-3);
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.ValueAsInt(0), 5);
  EXPECT_DOUBLE_EQ(c.ValueAsDouble(1), -3.0);
  EXPECT_EQ(c.ValueAsString(1), "-3");
  EXPECT_DOUBLE_EQ(c.Min(), -3.0);
  EXPECT_DOUBLE_EQ(c.Max(), 5.0);
}

TEST(ColumnTest, DoubleBasics) {
  Column c({"v", DataType::kDouble, AttributeKind::kQuantitative});
  c.AppendDouble(1.5);
  c.AppendDouble(-0.25);
  EXPECT_DOUBLE_EQ(c.ValueAsDouble(0), 1.5);
  EXPECT_EQ(c.ValueAsInt(1), 0);  // truncation
  EXPECT_DOUBLE_EQ(c.Min(), -0.25);
  EXPECT_DOUBLE_EQ(c.Max(), 1.5);
}

TEST(ColumnTest, StringIsDictionaryEncoded) {
  Column c({"s", DataType::kString, AttributeKind::kQuantitative});
  // String columns are forcibly nominal.
  EXPECT_EQ(c.field().kind, AttributeKind::kNominal);
  c.AppendString("aa");
  c.AppendString("bb");
  c.AppendString("aa");
  EXPECT_EQ(c.size(), 3);
  EXPECT_DOUBLE_EQ(c.ValueAsDouble(0), 0.0);  // code view
  EXPECT_DOUBLE_EQ(c.ValueAsDouble(1), 1.0);
  EXPECT_DOUBLE_EQ(c.ValueAsDouble(2), 0.0);
  EXPECT_EQ(c.ValueAsString(2), "aa");
  EXPECT_EQ(c.dictionary().size(), 2);
}

TEST(ColumnTest, AppendCodeRequiresExistingCode) {
  Column c({"s", DataType::kString, AttributeKind::kNominal});
  c.mutable_dictionary().GetOrInsert("only");
  c.AppendCode(0);
  EXPECT_EQ(c.ValueAsString(0), "only");
}

TEST(ColumnTest, AppendParsed) {
  Column i({"i", DataType::kInt64, AttributeKind::kQuantitative});
  EXPECT_TRUE(i.AppendParsed("42").ok());
  EXPECT_FALSE(i.AppendParsed("xyz").ok());
  Column d({"d", DataType::kDouble, AttributeKind::kQuantitative});
  EXPECT_TRUE(d.AppendParsed("-1.5e2").ok());
  EXPECT_DOUBLE_EQ(d.ValueAsDouble(0), -150.0);
  EXPECT_FALSE(d.AppendParsed("").ok());
  Column s({"s", DataType::kString, AttributeKind::kNominal});
  EXPECT_TRUE(s.AppendParsed("anything").ok());
}

TEST(ColumnTest, AppendFromRemapsDictionary) {
  Column src({"s", DataType::kString, AttributeKind::kNominal});
  src.AppendString("a");
  src.AppendString("b");
  Column dst({"s", DataType::kString, AttributeKind::kNominal});
  dst.AppendString("z");  // code 0 is taken by a different value
  dst.AppendFrom(src, 1);
  EXPECT_EQ(dst.ValueAsString(1), "b");
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", DataType::kInt64, AttributeKind::kQuantitative},
            {"b", DataType::kDouble, AttributeKind::kQuantitative}});
  EXPECT_EQ(s.num_fields(), 2);
  EXPECT_EQ(s.FieldIndex("b"), 1);
  EXPECT_EQ(s.FieldIndex("missing"), -1);
  ASSERT_TRUE(s.FieldByName("a").ok());
  EXPECT_FALSE(s.FieldByName("missing").ok());
}

TEST(SchemaTest, AddFieldRejectsDuplicates) {
  Schema s;
  EXPECT_TRUE(
      s.AddField({"a", DataType::kInt64, AttributeKind::kQuantitative}).ok());
  EXPECT_EQ(
      s.AddField({"a", DataType::kDouble, AttributeKind::kQuantitative})
          .code(),
      StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ToStringListsFields) {
  Schema s({{"x", DataType::kDouble, AttributeKind::kQuantitative}});
  EXPECT_EQ(s.ToString(), "(x: double)");
}

TEST(TableTest, TinyTableShape) {
  Table t = testutil::MakeTinyTable();
  EXPECT_EQ(t.num_rows(), 8);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_NE(t.ColumnByName("value"), nullptr);
  EXPECT_EQ(t.ColumnByName("nope"), nullptr);
  EXPECT_EQ(t.RowToString(0), "10.000000,a,0");
}

TEST(TableTest, AppendRowFrom) {
  Table a = testutil::MakeTinyTable();
  Table b("copy", a.schema());
  EXPECT_TRUE(b.AppendRowFrom(a, 3).ok());
  EXPECT_EQ(b.num_rows(), 1);
  EXPECT_DOUBLE_EQ(b.column(0).ValueAsDouble(0), 40.0);
  EXPECT_EQ(b.column(1).ValueAsString(0), "b");
  EXPECT_FALSE(b.AppendRowFrom(a, 100).ok());
  Table mismatched("m", Schema({{"x", DataType::kInt64,
                                 AttributeKind::kQuantitative}}));
  EXPECT_FALSE(mismatched.AppendRowFrom(a, 0).ok());
}

TEST(CatalogTest, FirstTableIsFact) {
  auto catalog = testutil::MakeTinyCatalog();
  EXPECT_NE(catalog->fact_table(), nullptr);
  EXPECT_EQ(catalog->fact_table()->name(), "tiny");
  EXPECT_FALSE(catalog->is_normalized());
  EXPECT_EQ(catalog->nominal_rows(), 8);
}

TEST(CatalogTest, NominalRowsOverride) {
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  EXPECT_EQ(catalog->nominal_rows(), 1'000'000);
}

TEST(CatalogTest, RejectsDuplicateTables) {
  Catalog c;
  auto t = std::make_shared<Table>(testutil::MakeTinyTable());
  EXPECT_TRUE(c.AddTable(t).ok());
  EXPECT_EQ(c.AddTable(t).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(c.AddTable(nullptr).ok());
}

TEST(CatalogTest, ForeignKeyValidation) {
  Catalog c;
  auto fact = std::make_shared<Table>(testutil::MakeTinyTable());
  ASSERT_TRUE(c.AddTable(fact).ok());
  Schema dim_schema({{"flag", DataType::kInt64, AttributeKind::kNominal},
                     {"label", DataType::kString, AttributeKind::kNominal}});
  auto dim = std::make_shared<Table>("flags", dim_schema);
  dim->mutable_column(0).AppendInt(0);
  dim->mutable_column(1).AppendString("off");
  dim->mutable_column(0).AppendInt(1);
  dim->mutable_column(1).AppendString("on");
  ASSERT_TRUE(c.AddTable(dim).ok());

  EXPECT_TRUE(c.AddForeignKey({"flag", "flags", "flag"}).ok());
  EXPECT_TRUE(c.is_normalized());
  EXPECT_NE(c.FindForeignKey("flags"), nullptr);
  EXPECT_EQ(c.FindForeignKey("absent"), nullptr);

  EXPECT_FALSE(c.AddForeignKey({"missing", "flags", "flag"}).ok());
  EXPECT_FALSE(c.AddForeignKey({"flag", "missing", "flag"}).ok());
  EXPECT_FALSE(c.AddForeignKey({"flag", "flags", "missing"}).ok());
}

TEST(ZoneMapTest, MaintainedPerBlockAcrossAppendPaths) {
  Column c({"v", DataType::kInt64, AttributeKind::kQuantitative});
  // Two full blocks plus a partial third, values descending so per-block
  // bounds differ from the whole-column cache.
  const int64_t rows = 2 * kZoneMapBlockRows + 100;
  for (int64_t i = 0; i < rows; ++i) c.AppendInt(rows - i);
  const auto& zones = c.zone_map();
  ASSERT_EQ(zones.size(), 3u);
  EXPECT_DOUBLE_EQ(zones[0].max, static_cast<double>(rows));
  EXPECT_DOUBLE_EQ(zones[0].min,
                   static_cast<double>(rows - kZoneMapBlockRows + 1));
  EXPECT_DOUBLE_EQ(zones[1].max,
                   static_cast<double>(rows - kZoneMapBlockRows));
  EXPECT_DOUBLE_EQ(zones[2].min, 1.0);
  EXPECT_DOUBLE_EQ(zones[2].max, 100.0);
  EXPECT_DOUBLE_EQ(c.Min(), 1.0);
  EXPECT_DOUBLE_EQ(c.Max(), static_cast<double>(rows));
}

TEST(ZoneMapTest, NaNValuesCountedAndNeverWidenBounds) {
  Column c({"v", DataType::kDouble, AttributeKind::kQuantitative});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaN first: the zone bounds must still pick up the later finite
  // values (a NaN-first block must not become unprunable-forever, nor
  // hide real values).
  c.AppendDouble(nan);
  c.AppendDouble(3.0);
  c.AppendDouble(nan);
  c.AppendDouble(7.0);
  const auto& zones = c.zone_map();
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_DOUBLE_EQ(zones[0].min, 3.0);
  EXPECT_DOUBLE_EQ(zones[0].max, 7.0);
  EXPECT_EQ(zones[0].nan_count, 2);
}

TEST(ZoneMapTest, AllNaNBlockKeepsEmptySentinels) {
  Column c({"v", DataType::kDouble, AttributeKind::kQuantitative});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  c.AppendDouble(nan);
  c.AppendDouble(nan);
  const auto& zones = c.zone_map();
  ASSERT_EQ(zones.size(), 1u);
  // min > max marks "no finite values": every range test on the block
  // fails, which pruning reads as provably-no-match (NaN rows match
  // nothing).
  EXPECT_GT(zones[0].min, zones[0].max);
  EXPECT_EQ(zones[0].nan_count, 2);
}

TEST(ZoneMapTest, AppendCodePathMaintainsZoneMapAndMinMax) {
  // Regression: the pre-encoded-dictionary AppendCode path must update
  // the zone map and min/max cache exactly like AppendString — a stale
  // map here would let pruning drop matching rows.
  Column c({"s", DataType::kString, AttributeKind::kNominal});
  c.mutable_dictionary().GetOrInsert("a");  // code 0
  c.mutable_dictionary().GetOrInsert("b");  // code 1
  c.mutable_dictionary().GetOrInsert("c");  // code 2
  const int64_t rows = kZoneMapBlockRows + 50;
  for (int64_t i = 0; i < rows; ++i) c.AppendCode(i < kZoneMapBlockRows ? 1 : 2);
  const auto& zones = c.zone_map();
  ASSERT_EQ(zones.size(), 2u);
  EXPECT_DOUBLE_EQ(zones[0].min, 1.0);
  EXPECT_DOUBLE_EQ(zones[0].max, 1.0);
  EXPECT_DOUBLE_EQ(zones[1].min, 2.0);
  EXPECT_DOUBLE_EQ(zones[1].max, 2.0);
  EXPECT_DOUBLE_EQ(c.Min(), 1.0);
  EXPECT_DOUBLE_EQ(c.Max(), 2.0);
  // Mixed-path parity: AppendString continues the same map.
  c.AppendString("a");
  EXPECT_DOUBLE_EQ(c.zone_map()[1].min, 0.0);
  EXPECT_DOUBLE_EQ(c.Min(), 0.0);
}

TEST(ZoneMapTest, PlaceholderZerosMatchSingleAppendsBitForBit) {
  // The bulk staging fill (one stats fold per zone block) must leave the
  // column in exactly the state n single zero-appends would — including
  // unaligned starts that continue a partial block.
  for (const int64_t head : {int64_t{0}, int64_t{7}, kZoneMapBlockRows - 1}) {
    for (const int64_t n :
         {int64_t{1}, int64_t{100}, kZoneMapBlockRows, 2 * kZoneMapBlockRows + 3}) {
      Column bulk({"v", DataType::kInt64, AttributeKind::kQuantitative});
      Column slow({"v", DataType::kInt64, AttributeKind::kQuantitative});
      for (int64_t i = 0; i < head; ++i) {
        bulk.AppendInt(i + 5);
        slow.AppendInt(i + 5);
      }
      bulk.AppendPlaceholderZeros(n);
      for (int64_t i = 0; i < n; ++i) slow.AppendInt(0);
      ASSERT_EQ(bulk.size(), slow.size()) << head << " " << n;
      EXPECT_EQ(bulk.ints(), slow.ints()) << head << " " << n;
      EXPECT_DOUBLE_EQ(bulk.Min(), slow.Min());
      EXPECT_DOUBLE_EQ(bulk.Max(), slow.Max());
      ASSERT_EQ(bulk.zone_map().size(), slow.zone_map().size())
          << head << " " << n;
      for (size_t z = 0; z < bulk.zone_map().size(); ++z) {
        EXPECT_DOUBLE_EQ(bulk.zone_map()[z].min, slow.zone_map()[z].min);
        EXPECT_DOUBLE_EQ(bulk.zone_map()[z].max, slow.zone_map()[z].max);
        EXPECT_EQ(bulk.zone_map()[z].nan_count, slow.zone_map()[z].nan_count);
      }
    }
  }
  // Double and string variants take the same code path through the typed
  // vectors; smoke the type dispatch.
  Column d({"v", DataType::kDouble, AttributeKind::kQuantitative});
  d.AppendPlaceholderZeros(10);
  EXPECT_EQ(d.size(), 10);
  EXPECT_DOUBLE_EQ(d.Min(), 0.0);
  Column s({"s", DataType::kString, AttributeKind::kNominal});
  s.mutable_dictionary().GetOrInsert("a");
  s.AppendPlaceholderZeros(10);
  EXPECT_EQ(s.size(), 10);
  EXPECT_EQ(s.ValueAsString(0), "a");
}

TEST(CatalogTest, TableForColumnSearchesFactFirst) {
  Catalog c;
  auto fact = std::make_shared<Table>(testutil::MakeTinyTable());
  ASSERT_TRUE(c.AddTable(fact).ok());
  Schema dim_schema({{"other", DataType::kInt64, AttributeKind::kNominal}});
  ASSERT_TRUE(c.AddTable(std::make_shared<Table>("dim", dim_schema)).ok());

  auto fact_col = c.TableForColumn("value");
  ASSERT_TRUE(fact_col.ok());
  EXPECT_EQ((*fact_col)->name(), "tiny");
  auto dim_col = c.TableForColumn("other");
  ASSERT_TRUE(dim_col.ok());
  EXPECT_EQ((*dim_col)->name(), "dim");
  EXPECT_FALSE(c.TableForColumn("nowhere").ok());
}

}  // namespace
}  // namespace idebench::storage
