#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace idebench {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 20'000; ++i) {
    const int64_t v = rng.UniformInt(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    ++hits[static_cast<size_t>(v)];
  }
  for (int h : hits) EXPECT_GT(h, 3'000);  // ~4000 expected each
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(10);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
  EXPECT_EQ(rng.UniformInt(7, 3), 7);  // lo >= hi returns lo
}

TEST(RngTest, GaussianMomentsAreStandardNormal) {
  Rng rng(11);
  const int n = 200'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(12);
  const double lambda = 0.25;
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(14);
  int heads = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfIsSkewedTowardSmallRanks) {
  Rng rng(15);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 50'000; ++i) {
    const int64_t v = rng.Zipf(10, 1.1);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    ++hits[static_cast<size_t>(v)];
  }
  EXPECT_GT(hits[0], hits[4]);
  EXPECT_GT(hits[4], hits[9]);
  EXPECT_GT(hits[0], 5 * hits[9]);
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng rng(16);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 40'000; ++i) {
    ++hits[static_cast<size_t>(rng.Zipf(8, 0.0))];
  }
  for (int h : hits) EXPECT_NEAR(h, 5000, 600);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 30'000; ++i) {
    const int64_t v = rng.Categorical({1.0, 2.0, 7.0});
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 3);
    ++hits[static_cast<size_t>(v)];
  }
  EXPECT_NEAR(hits[0] / 30'000.0, 0.1, 0.02);
  EXPECT_NEAR(hits[1] / 30'000.0, 0.2, 0.02);
  EXPECT_NEAR(hits[2] / 30'000.0, 0.7, 0.02);
}

TEST(RngTest, CategoricalEdgeCases) {
  Rng rng(18);
  EXPECT_EQ(rng.Categorical({}), -1);
  EXPECT_EQ(rng.Categorical({5.0}), 0);
  // All-zero weights fall back to uniform; result must be in range.
  const int64_t v = rng.Categorical({0.0, 0.0, 0.0});
  EXPECT_GE(v, 0);
  EXPECT_LT(v, 3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(20);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  // Parent state unchanged by forking: same next value as a twin.
  Rng twin(20);
  EXPECT_EQ(parent.Next(), twin.Next());
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.Next() == child2.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

/// Property sweep: UniformInt stays within arbitrary bounds.
class UniformIntRangeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(UniformIntRangeTest, StaysInBounds) {
  const auto [lo, hi] = GetParam();
  Rng rng(static_cast<uint64_t>(lo * 31 + hi));
  for (int i = 0; i < 2'000; ++i) {
    const int64_t v = rng.UniformInt(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, UniformIntRangeTest,
    ::testing::Values(std::pair<int64_t, int64_t>{0, 1},
                      std::pair<int64_t, int64_t>{-10, 10},
                      std::pair<int64_t, int64_t>{0, 1'000'000},
                      std::pair<int64_t, int64_t>{-1'000'000, -999'990},
                      std::pair<int64_t, int64_t>{42, 42}));

}  // namespace
}  // namespace idebench
