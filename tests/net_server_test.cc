/// \file net_server_test.cc
/// Loopback tests of the serving front-end (net/server.h): frame
/// protocol end-to-end, explicit overload rejection with degradation
/// before refusal, backpressure under injected write stalls, clean
/// drain on abrupt client disconnect, and survival of the chaos net
/// fault sites.  Every test pins the serving contract: the server never
/// crashes, every admitted query yields exactly one terminal update,
/// and every refusal is an explicit frame.

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/fault_injector.h"
#include "engines/blocking_engine.h"
#include "engines/progressive_engine.h"
#include "ingest/ingest.h"
#include "net/client.h"
#include "net/protocol.h"
#include "tests/test_util.h"
#include "workflow/interaction.h"

namespace idebench::net {
namespace {

constexpr Micros kWait = 10 * kMicrosPerSecond;

query::VizSpec GroupViz(const std::string& name) {
  query::VizSpec v;
  v.name = name;
  v.source = "tiny";
  query::BinDimension d;
  d.column = "group";
  d.mode = query::BinningMode::kNominal;
  v.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kCount;
  v.aggregates.push_back(a);
  return v;
}

JsonValue InteractionRequest(int64_t session, int64_t request,
                             const std::string& viz_name) {
  JsonValue msg = JsonValue::Object();
  msg.Set("type", "interaction");
  msg.Set("session", session);
  msg.Set("request", request);
  msg.Set("interaction",
          workflow::Interaction::CreateViz(GroupViz(viz_name)).ToJson());
  return msg;
}

/// One running server on an ephemeral loopback port (virtual-clock mode
/// unless the options say otherwise), stopped + joined on destruction.
class ServerFixture {
 public:
  ServerFixture(ServerOptions options, engines::Engine* engine,
                std::shared_ptr<const storage::Catalog> catalog,
                ingest::Ingestor* ingestor = nullptr) {
    auto created = Server::Create(std::move(options), engine, catalog);
    IDB_CHECK(created.ok());
    server_ = std::move(created).MoveValueUnsafe();
    // Attach before the loop thread exists: the loop reads the ingestor
    // pointer without synchronization.
    if (ingestor != nullptr) server_->AttachIngestor(ingestor);
    thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
  }

  ~ServerFixture() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      server_->RequestStop();
      thread_.join();
    }
  }

  Server& server() { return *server_; }
  const Status& serve_status() const { return serve_status_; }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
  Status serve_status_ = Status::OK();
};

ServerOptions VirtualModeOptions() {
  ServerOptions o;
  o.wall_pacing = false;
  o.virtual_step = 50'000;
  o.poll_interval = 1'000;
  o.scheduler.time_requirement = 2'000'000;
  o.scheduler.quantum = 50'000;
  return o;
}

/// Drains client messages until every query in `expect_final` has seen
/// its terminal update; returns query_id -> final update message.
std::map<int64_t, JsonValue> CollectFinals(Client* client,
                                           std::vector<int64_t> expect_final) {
  std::map<int64_t, JsonValue> finals;
  while (finals.size() < expect_final.size()) {
    JsonValue msg;
    auto next = client->Next(&msg, kWait);
    if (!next.ok() || !*next) break;  // timeout/error: return what we have
    if (MessageType(msg) != "update" || !msg.GetBool("final", false)) continue;
    const int64_t query = msg.GetInt("query", -1);
    EXPECT_EQ(finals.count(query), 0u) << "duplicate terminal for " << query;
    finals[query] = std::move(msg);
  }
  return finals;
}

TEST(NetServerTest, LoopbackSubmitStreamsUpdatesToFinal) {
  engines::ProgressiveEngineConfig config;
  config.query_overhead_us = 0;
  config.restart_overhead_us = 0;
  config.sample_us_per_row = 50'000.0;  // 8 rows = 400ms of virtual work
  engines::ProgressiveEngine engine(config);
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  ServerFixture fixture(VirtualModeOptions(), &engine, catalog);
  auto client = Client::Connect("127.0.0.1", fixture.server().port(), "test");
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto session = (*client)->OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_GE(*session, 0);

  ASSERT_TRUE((*client)->Send(InteractionRequest(*session, 1, "viz_0")).ok());
  auto submitted = (*client)->WaitFor("submitted", kWait);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  EXPECT_EQ(submitted->GetInt("request", -1), 1);
  EXPECT_EQ(submitted->GetInt("degrade_level", -1), 0);
  const JsonValue& queries = submitted->Get("queries");
  ASSERT_TRUE(queries.is_array());
  ASSERT_EQ(queries.size(), 1u);
  const int64_t query_id = queries.at(0).GetInt("query", -1);
  // The wire carries the client's raw viz name, not the namespaced one.
  EXPECT_EQ(queries.at(0).GetString("viz", ""), "viz_0");

  // Partials stream, then exactly one completed terminal.
  int partials = 0;
  bool saw_final = false;
  while (!saw_final) {
    JsonValue msg;
    auto next = (*client)->Next(&msg, kWait);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(*next) << "timed out before the terminal update";
    if (MessageType(msg) != "update") continue;
    EXPECT_EQ(msg.GetInt("query", -1), query_id);
    EXPECT_EQ(msg.GetString("viz", ""), "viz_0");
    if (msg.GetBool("final", false)) {
      saw_final = true;
      EXPECT_TRUE(msg.GetBool("completed", false));
      const JsonValue& result = msg.Get("result");
      ASSERT_TRUE(result.is_object());
      EXPECT_EQ(result.GetInt("rows", 0), 8);
    } else {
      ++partials;
    }
  }
  EXPECT_GE(partials, 1);

  ASSERT_TRUE((*client)->CloseSession(*session).ok());
  fixture.Stop();
  EXPECT_TRUE(fixture.serve_status().ok());
  EXPECT_EQ(fixture.server().ratekeeper().live(), 0);
}

TEST(NetServerTest, OverloadDegradesThenRejectsExplicitly) {
  // Blocking engine on a huge nominal table: every query runs to its
  // deadline, so live count builds up fast.
  engines::BlockingEngineConfig config;
  config.scan_ns_per_row = 10'000.0;
  config.query_overhead_us = 0;
  engines::BlockingEngine engine(config);
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  ServerOptions options = VirtualModeOptions();
  options.ratekeeper.soft_live_limit = 2;
  options.ratekeeper.hard_live_limit = 6;
  options.ratekeeper.degrade_levels = 3;
  options.ratekeeper.min_budget_scale = 0.25;
  options.ratekeeper.tenant_rate = 0.0;  // isolate the global ladder
  ServerFixture fixture(options, &engine, catalog);

  auto client = Client::Connect("127.0.0.1", fixture.server().port(), "flood");
  ASSERT_TRUE(client.ok());
  auto session = (*client)->OpenSession();
  ASSERT_TRUE(session.ok());

  // Flood 10 interactions back-to-back (faster than any can finalize).
  const int kRequests = 10;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(
        (*client)
            ->Send(InteractionRequest(*session, i, "viz_" + std::to_string(i)))
            .ok());
  }

  // Every request answers: submitted or rejected, nothing silent.
  int submitted = 0, rejected = 0, degraded = 0;
  double last_scale = 1.0;
  std::vector<int64_t> admitted_queries;
  for (int seen = 0; seen < kRequests; ++seen) {
    JsonValue msg;
    while (true) {
      auto next = (*client)->Next(&msg, kWait);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      ASSERT_TRUE(*next) << "request " << seen << " never answered";
      const std::string type = MessageType(msg);
      if (type == "submitted" || type == "rejected") break;
    }
    if (MessageType(msg) == "submitted") {
      ++submitted;
      const double scale = msg.GetDouble("budget_scale", 1.0);
      EXPECT_LE(scale, last_scale);  // the ladder only tightens
      last_scale = scale;
      if (msg.GetInt("degrade_level", 0) > 0) {
        ++degraded;
        EXPECT_LT(scale, 1.0);
      }
      const JsonValue& queries = msg.Get("queries");
      for (size_t q = 0; q < queries.size(); ++q) {
        if (!queries.at(q).GetBool("unsupported", false)) {
          admitted_queries.push_back(queries.at(q).GetInt("query", -1));
        }
      }
    } else {
      ++rejected;
      EXPECT_EQ(msg.GetString("reason", ""), "over_capacity");
      EXPECT_GE(msg.GetInt("retry_after_ms", -1), 0);
    }
  }
  EXPECT_EQ(submitted + rejected, kRequests);
  EXPECT_GT(rejected, 0) << "flood at 2x capacity must see rejections";
  EXPECT_GT(degraded, 0) << "budgets must shrink before refusal";

  // Every admitted query still delivers exactly one terminal update.
  const auto finals = CollectFinals(client->get(), admitted_queries);
  EXPECT_EQ(finals.size(), admitted_queries.size());

  fixture.Stop();
  EXPECT_TRUE(fixture.serve_status().ok());
  EXPECT_EQ(fixture.server().ratekeeper().live(), 0);
  EXPECT_GT(fixture.server().ratekeeper().stats().rejected, 0);
}

TEST(NetServerTest, WriteStallsCoalescePartialsNeverFinals) {
  // kNetWrite stalls flushes; kNetPartialFrame tears frames at byte
  // boundaries.  Partials coalesce under the stall, the terminal always
  // lands, and the peer's decoder reassembles torn frames.
  chaos::FaultInjector injector(7);
  injector.Arm(chaos::FaultSite::kNetWrite, {0.6, -1});
  injector.Arm(chaos::FaultSite::kNetPartialFrame, {0.5, -1});
  chaos::ScopedFaultInjector scope(&injector);

  engines::ProgressiveEngineConfig config;
  config.query_overhead_us = 0;
  config.restart_overhead_us = 0;
  config.sample_us_per_row = 100'000.0;  // many partial pushes
  engines::ProgressiveEngine engine(config);
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  ServerOptions options = VirtualModeOptions();
  options.write_queue_soft_limit = 2;  // tiny: force coalescing fast
  ServerFixture fixture(options, &engine, catalog);

  auto client = Client::Connect("127.0.0.1", fixture.server().port(), "slow");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto session = (*client)->OpenSession();
  ASSERT_TRUE(session.ok());

  ASSERT_TRUE((*client)->Send(InteractionRequest(*session, 1, "viz_0")).ok());
  auto submitted = (*client)->WaitFor("submitted", kWait);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  const int64_t query_id =
      submitted->Get("queries").at(0).GetInt("query", -1);

  const auto finals = CollectFinals(client->get(), {query_id});
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_TRUE(finals.at(query_id).GetBool("completed", false));

  fixture.Stop();
  EXPECT_TRUE(fixture.serve_status().ok());
  const ServerStats& stats = fixture.server().stats();
  EXPECT_GT(stats.partials_coalesced + stats.partials_dropped, 0)
      << "write stalls must trigger backpressure, not unbounded buffering";
  EXPECT_EQ(stats.slow_client_disconnects, 0);
}

TEST(NetServerTest, AbruptDisconnectDrainsSessionsCleanly) {
  engines::BlockingEngineConfig config;
  config.scan_ns_per_row = 10'000.0;
  config.query_overhead_us = 0;
  engines::BlockingEngine engine(config);
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000'000);  // runs to the deadline
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  ServerFixture fixture(VirtualModeOptions(), &engine, catalog);

  {
    auto doomed =
        Client::Connect("127.0.0.1", fixture.server().port(), "doomed");
    ASSERT_TRUE(doomed.ok());
    auto session = (*doomed)->OpenSession();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(
        (*doomed)->Send(InteractionRequest(*session, 1, "viz_0")).ok());
    auto submitted = (*doomed)->WaitFor("submitted", kWait);
    ASSERT_TRUE(submitted.ok());
    // Destructor closes the socket with the query still live.
  }

  // A second client still gets full service while the first drains.
  auto survivor =
      Client::Connect("127.0.0.1", fixture.server().port(), "survivor");
  ASSERT_TRUE(survivor.ok());
  auto session = (*survivor)->OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      (*survivor)->Send(InteractionRequest(*session, 1, "viz_0")).ok());
  auto submitted = (*survivor)->WaitFor("submitted", kWait);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  const int64_t query_id =
      submitted->Get("queries").at(0).GetInt("query", -1);
  const auto finals = CollectFinals(survivor->get(), {query_id});
  EXPECT_EQ(finals.size(), 1u);

  fixture.Stop();
  EXPECT_TRUE(fixture.serve_status().ok());
  // The torn client's admitted query finalized (explicitly counted),
  // and the ratekeeper's live count returned to zero — no leak.
  EXPECT_EQ(fixture.server().ratekeeper().live(), 0);
  EXPECT_GT(fixture.server().stats().finals_after_disconnect, 0);
  EXPECT_GE(fixture.server().stats().connections_closed, 1);
}

TEST(NetServerTest, SurvivesAcceptAndReadFaults) {
  // Budgeted faults: 4 refused accepts, 2 torn reads, then clean air.
  // Draw streams are seeded, so the schedule is fixed; server stats are
  // only read after Stop() (the serve thread owns them while live).
  chaos::FaultInjector injector(11);
  injector.Arm(chaos::FaultSite::kNetAccept, {0.5, 4});
  injector.Arm(chaos::FaultSite::kNetRead, {0.5, 2});
  chaos::ScopedFaultInjector scope(&injector);

  engines::ProgressiveEngineConfig config;
  config.query_overhead_us = 0;
  config.restart_overhead_us = 0;
  config.sample_us_per_row = 10'000.0;
  engines::ProgressiveEngine engine(config);
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  ServerFixture fixture(VirtualModeOptions(), &engine, catalog);
  const int port = fixture.server().port();

  // Burn the accept budget: each attempt is exactly one accept draw.
  // Refusals surface as clean connect/handshake errors, never hangs, and
  // the listener survives every one of them.
  int refused = 0;
  {
    std::vector<std::unique_ptr<Client>> live;
    for (int attempt = 0; attempt < 24; ++attempt) {
      auto connected =
          Client::Connect("127.0.0.1", port, "burn", kMicrosPerSecond);
      if (connected.ok()) {
        live.push_back(std::move(connected).MoveValueUnsafe());
      } else {
        ++refused;
      }
    }
    // 24 draws at p=0.5 against a budget of 4: the accept budget is
    // spent (a read fault during a handshake can also refuse a connect,
    // so `refused` may exceed it).
    EXPECT_GE(refused, 4);
  }

  // Burn any remaining read budget with ping traffic; a fired read
  // fault tears that connection, so reconnect and keep going.
  for (int round = 0; round < 8; ++round) {
    auto pinger = Client::Connect("127.0.0.1", port, "pinger",
                                  kMicrosPerSecond);
    if (!pinger.ok()) continue;
    for (int i = 0; i < 4; ++i) {
      JsonValue ping = JsonValue::Object();
      ping.Set("type", "ping");
      if (!(*pinger)->Send(ping).ok()) break;
      if (!(*pinger)->WaitFor("pong", kMicrosPerSecond).ok()) break;
    }
  }

  // Both budgets exhausted: a fresh client now gets clean service.
  auto client = Client::Connect("127.0.0.1", port, "retry", kWait);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto session = (*client)->OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*client)->Send(InteractionRequest(*session, 1, "viz_0")).ok());
  auto submitted = (*client)->WaitFor("submitted", kWait);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  const int64_t query_id =
      submitted->Get("queries").at(0).GetInt("query", -1);
  const auto finals = CollectFinals(client->get(), {query_id});
  EXPECT_EQ(finals.size(), 1u);

  fixture.Stop();
  EXPECT_TRUE(fixture.serve_status().ok());
  EXPECT_GE(fixture.server().stats().accept_faults, 4);
  EXPECT_GE(fixture.server().stats().read_faults, 2);
}

TEST(NetServerTest, MalformedInputGetsExplicitErrorNeverCrash) {
  engines::ProgressiveEngineConfig config;
  engines::ProgressiveEngine engine(config);
  auto catalog = testutil::MakeTinyCatalog();
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  ServerFixture fixture(VirtualModeOptions(), &engine, catalog);

  // An unknown message type: explicit "error" reply, connection stays.
  auto client = Client::Connect("127.0.0.1", fixture.server().port(), "evil");
  ASSERT_TRUE(client.ok());
  JsonValue untyped = JsonValue::Object();
  untyped.Set("hello", "there");
  ASSERT_TRUE((*client)->Send(untyped).ok());
  auto err = (*client)->WaitFor("error", kWait);
  ASSERT_TRUE(err.ok()) << err.status().ToString();

  // A framing violation over a raw socket: the server replies with an
  // error frame (best effort) and drops the connection — no crash, no
  // hang.  The client library rejects such bytes, so go below it.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(fixture.server().port()));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string garbage;
  garbage.push_back(0);
  garbage.push_back(0);
  garbage.push_back(0);
  garbage.push_back(4);
  garbage += "\xde\xad\xbe\xef";
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));
  // The server must close on us (possibly after an error frame).
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
  }
  ::close(fd);

  // The server is still fully alive for well-behaved clients.
  auto session = (*client)->OpenSession();
  ASSERT_TRUE(session.ok());

  fixture.Stop();
  EXPECT_TRUE(fixture.serve_status().ok());
  EXPECT_GT(fixture.server().stats().protocol_errors, 0);
}

JsonValue AppendRequest(int64_t request,
                        const std::vector<std::vector<std::string>>& rows,
                        bool publish) {
  JsonValue msg = JsonValue::Object();
  msg.Set("type", "append");
  msg.Set("request", request);
  JsonValue wire_rows = JsonValue::Array();
  for (const std::vector<std::string>& row : rows) {
    JsonValue wire_row = JsonValue::Array();
    for (const std::string& field : row) wire_row.Append(field);
    wire_rows.Append(std::move(wire_row));
  }
  msg.Set("rows", std::move(wire_rows));
  msg.Set("publish", publish);
  return msg;
}

TEST(NetServerTest, AppendFrameStagesPublishesAndRejects) {
  engines::ProgressiveEngineConfig config;
  config.query_overhead_us = 0;
  config.restart_overhead_us = 0;
  engines::ProgressiveEngine engine(config);
  auto catalog = testutil::MakeTinyCatalog();
  auto ingestor = ingest::Ingestor::Create(catalog, 12);
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  ServerFixture fixture(VirtualModeOptions(), &engine, catalog,
                        ingestor->get());
  auto client = Client::Connect("127.0.0.1", fixture.server().port(), "feed");
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Staging only: rows land invisible, watermark reports visible rows.
  ASSERT_TRUE(
      (*client)
          ->Send(AppendRequest(1, {{"90", "a", "0"}, {"100", "b", "1"}},
                               /*publish=*/false))
          .ok());
  auto staged = (*client)->WaitFor("appended", kWait);
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  EXPECT_EQ(staged->GetInt("request", -1), 1);
  EXPECT_EQ(staged->GetInt("staged", -1), 2);
  EXPECT_EQ(staged->GetInt("watermark", -1), 8);
  EXPECT_FALSE(staged->GetBool("published", true));

  // A bare publish folds the staged epoch in atomically.
  ASSERT_TRUE((*client)->Send(AppendRequest(2, {}, /*publish=*/true)).ok());
  auto published = (*client)->WaitFor("appended", kWait);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(published->GetInt("staged", -1), 0);
  EXPECT_EQ(published->GetInt("watermark", -1), 10);
  EXPECT_TRUE(published->GetBool("published", false));

  // A malformed row rejects the whole batch, staging nothing.
  ASSERT_TRUE(
      (*client)->Send(AppendRequest(3, {{"not-a-number", "c", "0"}}, false)).ok());
  auto invalid = (*client)->WaitFor("rejected", kWait);
  ASSERT_TRUE(invalid.ok()) << invalid.status().ToString();
  EXPECT_EQ(invalid->GetInt("request", -1), 3);
  EXPECT_EQ(invalid->GetString("reason", ""), "invalid_rows");

  // Overflowing the reserved capacity is an explicit refusal with a
  // retry hint, not a partial append (10 visible + 3 > 12).
  ASSERT_TRUE((*client)
                  ->Send(AppendRequest(
                      4, {{"1", "a", "0"}, {"2", "b", "1"}, {"3", "c", "0"}},
                      false))
                  .ok());
  auto full = (*client)->WaitFor("rejected", kWait);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->GetString("reason", ""), "ingest_capacity");

  fixture.Stop();
  EXPECT_TRUE(fixture.serve_status().ok());
  EXPECT_EQ(fixture.server().stats().append_rows, 2);
  EXPECT_EQ(fixture.server().stats().epochs_published, 1);
  EXPECT_EQ(fixture.server().stats().appends_rejected, 2);
}

TEST(NetServerTest, AppendWithoutIngestorIsRejectedExplicitly) {
  engines::ProgressiveEngine engine;
  auto catalog = testutil::MakeTinyCatalog();
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  ServerFixture fixture(VirtualModeOptions(), &engine, catalog);
  auto client = Client::Connect("127.0.0.1", fixture.server().port(), "feed");
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  ASSERT_TRUE((*client)->Send(AppendRequest(7, {{"90", "a", "0"}}, true)).ok());
  auto rejected = (*client)->WaitFor("rejected", kWait);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->GetInt("request", -1), 7);
  EXPECT_EQ(rejected->GetString("reason", ""), "no_ingestor");

  fixture.Stop();
  EXPECT_TRUE(fixture.serve_status().ok());
}

}  // namespace
}  // namespace idebench::net
