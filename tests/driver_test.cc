#include "driver/benchmark_driver.h"

#include <gtest/gtest.h>

#include "driver/ground_truth.h"
#include "driver/settings.h"
#include "engines/blocking_engine.h"
#include "engines/online_engine.h"
#include "engines/progressive_engine.h"
#include "tests/test_util.h"
#include "workflow/workflow.h"

namespace idebench::driver {
namespace {

using engines::BlockingEngine;
using engines::BlockingEngineConfig;
using workflow::Interaction;
using workflow::Workflow;
using workflow::WorkflowType;

query::VizSpec MakeGroupViz(const std::string& name) {
  query::VizSpec v;
  v.name = name;
  v.source = "tiny";
  query::BinDimension d;
  d.column = "group";
  d.mode = query::BinningMode::kNominal;
  v.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kCount;
  v.aggregates.push_back(a);
  return v;
}

expr::FilterExpr LabelFilter(const std::string& column,
                             const std::string& label) {
  expr::FilterExpr f;
  expr::Predicate p;
  p.column = column;
  p.op = expr::CompareOp::kIn;
  p.string_values = {label};
  f.And(p);
  return f;
}

TEST(SettingsTest, ValidationAndJsonRoundTrip) {
  Settings s;
  EXPECT_TRUE(s.Validate().ok());
  auto parsed = Settings::FromJson(s.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->time_requirement, s.time_requirement);
  EXPECT_EQ(parsed->think_time, s.think_time);

  Settings bad = s;
  bad.time_requirement = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = s;
  bad.confidence_level = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = s;
  bad.concurrency_penalty = -1;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(GroundTruthTest, ExactAndCached) {
  auto catalog = testutil::MakeTinyCatalog();
  GroundTruthOracle oracle(catalog);
  query::QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto truth = oracle.Get(spec);
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE((*truth)->exact);
  EXPECT_DOUBLE_EQ((*truth)->bins.at(0).values[0].estimate, 4.0);
  EXPECT_EQ(oracle.cache_hits(), 0);
  auto again = oracle.Get(spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *truth);  // same pointer
  EXPECT_EQ(oracle.cache_hits(), 1);
}

/// Warm must fill the cache with answers bit-identical to sequential Get
/// calls, independent of the oracle's thread count, and leave later Gets
/// as pure cache hits.
TEST(GroundTruthTest, WarmThreadInvariant) {
  auto catalog = testutil::MakeTinyCatalog();

  // A few distinct specs (plus a duplicate, which Warm must dedupe).
  std::vector<query::QuerySpec> specs;
  specs.push_back(testutil::MakeCountByGroupSpec(*catalog));
  specs.push_back(testutil::MakeAvgValueSpec(*catalog));
  specs.push_back(testutil::MakeAvgValueSpec(*catalog, 2));
  specs.push_back(testutil::MakeCountByGroupSpec(*catalog));

  GroundTruthOracle sequential(catalog, /*threads=*/1);
  for (const query::QuerySpec& spec : specs) {
    ASSERT_TRUE(sequential.Get(spec).ok());
  }

  for (int threads : {1, 4}) {
    GroundTruthOracle warmed(catalog, threads);
    ASSERT_TRUE(warmed.Warm(specs).ok());
    EXPECT_EQ(warmed.cache_size(), 3);
    for (const query::QuerySpec& spec : specs) {
      auto expected = sequential.Get(spec);
      auto actual = warmed.Get(spec);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok());
      ASSERT_EQ((*expected)->bins.size(), (*actual)->bins.size());
      for (const auto& [key, bin] : (*expected)->bins) {
        const auto it = (*actual)->bins.find(key);
        ASSERT_NE(it, (*actual)->bins.end());
        ASSERT_EQ(bin.values.size(), it->second.values.size());
        for (size_t v = 0; v < bin.values.size(); ++v) {
          EXPECT_EQ(bin.values[v].estimate, it->second.values[v].estimate);
          EXPECT_EQ(bin.values[v].margin, it->second.values[v].margin);
        }
      }
    }
    // Every post-warm Get was a cache hit.
    EXPECT_EQ(warmed.cache_hits(), static_cast<int64_t>(specs.size()));
    // Warming again is a no-op.
    ASSERT_TRUE(warmed.Warm(specs).ok());
    EXPECT_EQ(warmed.cache_size(), 3);
  }
}

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testutil::MakeTinyCatalog();
    catalog_->set_nominal_rows(1'000'000);
  }

  Settings FastSettings() {
    Settings s;
    s.time_requirement = SecondsToMicros(1.0);
    s.think_time = SecondsToMicros(0.5);
    s.data_size_label = "1m";
    return s;
  }

  Workflow TwoVizWorkflow() {
    Workflow wf;
    wf.name = "wf_test";
    wf.type = WorkflowType::kSequential;
    wf.interactions.push_back(Interaction::CreateViz(MakeGroupViz("v0")));
    wf.interactions.push_back(Interaction::CreateViz(MakeGroupViz("v1")));
    wf.interactions.push_back(Interaction::Link("v0", "v1"));
    wf.interactions.push_back(
        Interaction::SetSelection("v0", LabelFilter("group", "a")));
    return wf;
  }

  std::shared_ptr<storage::Catalog> catalog_;
};

TEST_F(DriverTest, RunsWorkflowAndRecordsQueries) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;  // 1 M rows -> 10 ms: everything finishes
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  BenchmarkDriver driver(FastSettings(), &engine, catalog_);
  ASSERT_TRUE(driver.PrepareEngine().ok());
  EXPECT_GT(driver.data_preparation_time(), 0);

  std::vector<QueryRecord> records;
  ASSERT_TRUE(driver.RunWorkflow(TwoVizWorkflow(), &records).ok());
  // create v0 -> 1 query; create v1 -> 1; link -> v1 updates -> 1;
  // selection on v0 -> v1 updates -> 1.  Total 4.
  ASSERT_EQ(records.size(), 4u);
  for (const QueryRecord& r : records) {
    EXPECT_FALSE(r.metrics.tr_violated);
    EXPECT_EQ(r.driver_name, "blocking");
    EXPECT_EQ(r.workflow, "wf_test");
    EXPECT_LE(r.end_time - r.start_time, SecondsToMicros(1.0));
    EXPECT_FALSE(r.sql.empty());
  }
  // The last query (v1 filtered to group "a") has ground truth of 1 bin.
  EXPECT_EQ(records[3].metrics.bins_in_gt, 1);
  EXPECT_DOUBLE_EQ(records[3].metrics.missing_bins, 0.0);
  // Interaction ids recorded against the triggering interaction.
  EXPECT_EQ(records[3].interaction_id, 3);
}

TEST_F(DriverTest, WarmGroundTruthPrecomputesWorkflowQueries) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto oracle = std::make_shared<GroundTruthOracle>(catalog_, /*threads=*/4);
  BenchmarkDriver driver(FastSettings(), &engine, catalog_, oracle);
  ASSERT_TRUE(driver.PrepareEngine().ok());

  // The dry pass enumerates and resolves the same queries the run will
  // trigger, so the run itself is all cache hits.
  ASSERT_TRUE(driver.WarmGroundTruth({TwoVizWorkflow()}).ok());
  const int64_t warmed = oracle->cache_size();
  EXPECT_GT(warmed, 0);
  std::vector<QueryRecord> records;
  ASSERT_TRUE(driver.RunWorkflow(TwoVizWorkflow(), &records).ok());
  EXPECT_EQ(oracle->cache_size(), warmed);
  EXPECT_EQ(oracle->cache_hits(), static_cast<int64_t>(records.size()));
}

TEST_F(DriverTest, TrViolationsForSlowEngine) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10'000.0;  // 1 M rows -> 10 s: never finishes
  BlockingEngine engine(config);
  BenchmarkDriver driver(FastSettings(), &engine, catalog_);
  ASSERT_TRUE(driver.PrepareEngine().ok());
  std::vector<QueryRecord> records;
  ASSERT_TRUE(driver.RunWorkflow(TwoVizWorkflow(), &records).ok());
  for (const QueryRecord& r : records) {
    EXPECT_TRUE(r.metrics.tr_violated);
    EXPECT_DOUBLE_EQ(r.metrics.missing_bins, 1.0);
    // Cancelled exactly at the time requirement.
    EXPECT_EQ(r.end_time - r.start_time, SecondsToMicros(1.0));
  }
}

TEST_F(DriverTest, StartTimesAdvanceByThinkTime) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  BenchmarkDriver driver(FastSettings(), &engine, catalog_);
  ASSERT_TRUE(driver.PrepareEngine().ok());
  std::vector<QueryRecord> records;
  ASSERT_TRUE(driver.RunWorkflow(TwoVizWorkflow(), &records).ok());
  EXPECT_EQ(records[0].start_time, 0);
  EXPECT_EQ(records[1].start_time, SecondsToMicros(0.5));
  EXPECT_EQ(records[2].start_time, SecondsToMicros(1.0));
  EXPECT_EQ(records[3].start_time, SecondsToMicros(1.5));
}

TEST_F(DriverTest, ResolveQueryRewritesNominalLabels) {
  BlockingEngine engine;
  BenchmarkDriver driver(FastSettings(), &engine, catalog_);
  query::QuerySpec spec;
  spec.viz_name = "v";
  query::BinDimension d;
  d.column = "group";
  d.mode = query::BinningMode::kNominal;
  spec.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kCount;
  spec.aggregates.push_back(a);
  expr::Predicate p;
  p.column = "group";
  p.op = expr::CompareOp::kIn;
  p.string_values = {"b", "no_such_label"};
  spec.filter.And(p);

  ASSERT_TRUE(driver.ResolveQuery(&spec).ok());
  ASSERT_EQ(spec.filter.predicates()[0].set_values.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.filter.predicates()[0].set_values[0], 1.0);   // "b"
  EXPECT_DOUBLE_EQ(spec.filter.predicates()[0].set_values[1], -1.0);  // absent
  EXPECT_TRUE(spec.bins[0].resolved);
}

TEST_F(DriverTest, ConcurrencyPenaltyShrinksBudget) {
  // With a harsh penalty, the 1:2 fan-out interaction gets half the
  // budget per query and the (exactly-1s) queries start violating.
  BlockingEngineConfig config;
  config.scan_ns_per_row = 900.0;  // 1 M rows -> 0.9 s < TR alone
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  Settings settings = FastSettings();
  settings.concurrency_penalty = 1.0;  // two queries -> budget / 2
  BenchmarkDriver driver(settings, &engine, catalog_);
  ASSERT_TRUE(driver.PrepareEngine().ok());

  Workflow wf;
  wf.name = "fanout";
  wf.type = WorkflowType::kOneToN;
  wf.interactions.push_back(Interaction::CreateViz(MakeGroupViz("hub")));
  wf.interactions.push_back(Interaction::CreateViz(MakeGroupViz("t1")));
  wf.interactions.push_back(Interaction::CreateViz(MakeGroupViz("t2")));
  wf.interactions.push_back(Interaction::Link("hub", "t1"));
  wf.interactions.push_back(Interaction::Link("hub", "t2"));
  // Selection on the hub triggers t1 and t2 concurrently.
  wf.interactions.push_back(
      Interaction::SetSelection("hub", LabelFilter("group", "a")));

  std::vector<QueryRecord> records;
  ASSERT_TRUE(driver.RunWorkflow(wf, &records).ok());
  // Single-viz creations finish (0.9 s < 1 s)...
  EXPECT_FALSE(records[0].metrics.tr_violated);
  // ...but the two concurrent updates triggered by the selection violate.
  const QueryRecord& concurrent = records.back();
  EXPECT_EQ(concurrent.num_concurrent, 2);
  EXPECT_TRUE(concurrent.metrics.tr_violated);
}

TEST_F(DriverTest, RunWorkflowsAccumulatesRecords) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;
  BlockingEngine engine(config);
  BenchmarkDriver driver(FastSettings(), &engine, catalog_);
  ASSERT_TRUE(driver.PrepareEngine().ok());
  auto records = driver.RunWorkflows({TwoVizWorkflow(), TwoVizWorkflow()});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 8u);
  // Query ids are unique across workflows.
  EXPECT_EQ((*records)[7].id, 7);
}

/// Multi-session serving mode: more workflows than sessions, so every
/// session replays several workflows back-to-back (the dashboard must
/// reset between them), concurrently with the others on one shared
/// engine, under the fair deadline scheduler.
TEST_F(DriverTest, MultiSessionRunDistributesWorkflowsFairly) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  Settings settings = FastSettings();
  settings.sessions = 2;
  BenchmarkDriver driver(settings, &engine, catalog_);
  ASSERT_TRUE(driver.PrepareEngine().ok());

  // 2 sessions x 2 workflows each: workflow boundaries inside a session.
  const std::vector<workflow::Workflow> workflows = {
      TwoVizWorkflow(), TwoVizWorkflow(), TwoVizWorkflow(), TwoVizWorkflow()};
  auto records = driver.RunWorkflows(workflows);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 16u);  // 4 queries per workflow

  // Both sessions produced half the records; everything completed.
  int per_session[2] = {0, 0};
  for (const QueryRecord& r : *records) {
    ASSERT_GE(r.session, 0);
    ASSERT_LT(r.session, 2);
    ++per_session[r.session];
    EXPECT_FALSE(r.metrics.tr_violated);
  }
  EXPECT_EQ(per_session[0], 8);
  EXPECT_EQ(per_session[1], 8);

  const session::SchedulerStats& stats = driver.scheduler_stats();
  EXPECT_EQ(stats.sessions_opened, 2);
  EXPECT_EQ(stats.queries_submitted, 16);
  EXPECT_EQ(stats.completed, 16);
  EXPECT_EQ(stats.max_deadline_overshoot, 0);
}

TEST_F(DriverTest, UnsupportedQueriesReportedAsViolations) {
  // The stratified engine rejects nothing on denormalized data, so use a
  // progressive engine with a doctored spec?  Simpler: the online engine
  // with fallback disabled rejects AVG queries.
  engines::OnlineEngineConfig config;
  config.enable_fallback = false;
  engines::OnlineEngine engine(config);
  BenchmarkDriver driver(FastSettings(), &engine, catalog_);
  ASSERT_TRUE(driver.PrepareEngine().ok());

  query::VizSpec avg_viz;
  avg_viz.name = "v";
  avg_viz.source = "tiny";
  query::BinDimension d;
  d.column = "group";
  d.mode = query::BinningMode::kNominal;
  avg_viz.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kAvg;
  a.column = "value";
  avg_viz.aggregates.push_back(a);

  Workflow wf;
  wf.name = "unsupported";
  wf.type = WorkflowType::kIndependent;
  wf.interactions.push_back(Interaction::CreateViz(avg_viz));
  std::vector<QueryRecord> records;
  ASSERT_TRUE(driver.RunWorkflow(wf, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].metrics.tr_violated);
}

}  // namespace
}  // namespace idebench::driver
