#include <cstdio>

#include <gtest/gtest.h>

#include "datagen/flights_seed.h"
#include "workflow/generator.h"
#include "workflow/viz_graph.h"
#include "workflow/workflow.h"

namespace idebench::workflow {
namespace {

query::VizSpec MakeViz(const std::string& name) {
  query::VizSpec v;
  v.name = name;
  v.source = "flights";
  query::BinDimension d;
  d.column = "dep_delay";
  d.mode = query::BinningMode::kFixedCount;
  d.requested_bins = 10;
  v.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kCount;
  v.aggregates.push_back(a);
  return v;
}

expr::FilterExpr MakeFilter(const std::string& column, double lo, double hi) {
  expr::FilterExpr f;
  expr::Predicate p;
  p.column = column;
  p.op = expr::CompareOp::kRange;
  p.lo = lo;
  p.hi = hi;
  f.And(p);
  return f;
}

TEST(InteractionTest, JsonRoundTripAllTypes) {
  std::vector<Interaction> interactions = {
      Interaction::CreateViz(MakeViz("viz_0")),
      Interaction::SetFilter("viz_0", MakeFilter("dep_delay", 0, 10)),
      Interaction::SetSelection("viz_0", MakeFilter("dep_delay", 2, 4)),
      Interaction::Link("viz_0", "viz_1"),
      Interaction::Discard("viz_0"),
  };
  for (const Interaction& i : interactions) {
    auto parsed = Interaction::FromJson(i.ToJson());
    ASSERT_TRUE(parsed.ok()) << i.ToJson().Dump();
    EXPECT_EQ(parsed->ToJson(), i.ToJson());
  }
}

TEST(InteractionTest, FromJsonErrors) {
  EXPECT_FALSE(Interaction::FromJson(JsonValue(1)).ok());
  JsonValue unknown = JsonValue::Object();
  unknown.Set("type", "explode");
  EXPECT_FALSE(Interaction::FromJson(unknown).ok());
  JsonValue link_missing = JsonValue::Object();
  link_missing.Set("type", "link");
  link_missing.Set("from", "a");
  EXPECT_FALSE(Interaction::FromJson(link_missing).ok());
}

TEST(WorkflowTest, TypeNameRoundTrip) {
  for (WorkflowType t : AllWorkflowTypes()) {
    auto parsed = WorkflowTypeFromName(WorkflowTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(WorkflowTypeFromName("nope").ok());
}

TEST(WorkflowTest, JsonAndFileRoundTrip) {
  Workflow w;
  w.name = "test_wf";
  w.type = WorkflowType::kSequential;
  w.interactions.push_back(Interaction::CreateViz(MakeViz("viz_0")));
  w.interactions.push_back(
      Interaction::SetFilter("viz_0", MakeFilter("dep_delay", -5, 60)));

  auto parsed = Workflow::FromJson(w.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, "test_wf");
  EXPECT_EQ(parsed->type, WorkflowType::kSequential);
  EXPECT_EQ(parsed->size(), 2u);

  const std::string path =
      std::string(::testing::TempDir()) + "/wf_roundtrip.json";
  ASSERT_TRUE(w.SaveToFile(path).ok());
  auto loaded = Workflow::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToJson(), w.ToJson());
  std::remove(path.c_str());
}

TEST(VizGraphTest, CreateAffectsOnlyItself) {
  VizGraph g;
  std::vector<std::string> affected;
  ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz("viz_0")), &affected).ok());
  EXPECT_EQ(affected, (std::vector<std::string>{"viz_0"}));
  EXPECT_TRUE(g.HasViz("viz_0"));
}

TEST(VizGraphTest, DuplicateCreateRejected) {
  VizGraph g;
  std::vector<std::string> affected;
  ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz("v")), &affected).ok());
  EXPECT_FALSE(g.Apply(Interaction::CreateViz(MakeViz("v")), &affected).ok());
}

TEST(VizGraphTest, FilterPropagatesToDescendants) {
  VizGraph g;
  std::vector<std::string> affected;
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz(name)), &affected).ok());
  }
  affected.clear();
  ASSERT_TRUE(g.Apply(Interaction::Link("a", "b"), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::Link("b", "c"), &affected).ok());

  affected.clear();
  ASSERT_TRUE(g.Apply(Interaction::SetFilter("a", MakeFilter("dep_delay", 0, 5)),
                      &affected)
                  .ok());
  EXPECT_EQ(affected, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(VizGraphTest, SelectionAffectsOnlyDescendants) {
  VizGraph g;
  std::vector<std::string> affected;
  ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz("src")), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz("dst")), &affected).ok());
  affected.clear();
  ASSERT_TRUE(g.Apply(Interaction::Link("src", "dst"), &affected).ok());
  affected.clear();
  ASSERT_TRUE(
      g.Apply(Interaction::SetSelection("src", MakeFilter("dep_delay", 1, 2)),
              &affected)
          .ok());
  EXPECT_EQ(affected, (std::vector<std::string>{"dst"}));
}

TEST(VizGraphTest, LinkCycleRejected) {
  VizGraph g;
  std::vector<std::string> affected;
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz(name)), &affected).ok());
  }
  ASSERT_TRUE(g.Apply(Interaction::Link("a", "b"), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::Link("b", "c"), &affected).ok());
  EXPECT_FALSE(g.Apply(Interaction::Link("c", "a"), &affected).ok());
  EXPECT_FALSE(g.Apply(Interaction::Link("a", "a"), &affected).ok());
}

TEST(VizGraphTest, LinkUnknownVizRejected) {
  VizGraph g;
  std::vector<std::string> affected;
  ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz("a")), &affected).ok());
  EXPECT_FALSE(g.Apply(Interaction::Link("a", "ghost"), &affected).ok());
  EXPECT_FALSE(g.Apply(Interaction::Link("ghost", "a"), &affected).ok());
}

TEST(VizGraphTest, DiscardRemovesVizAndLinks) {
  VizGraph g;
  std::vector<std::string> affected;
  ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz("a")), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz("b")), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::Link("a", "b"), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::Discard("a"), &affected).ok());
  EXPECT_FALSE(g.HasViz("a"));
  EXPECT_TRUE(g.links().empty());
  EXPECT_FALSE(g.Apply(Interaction::Discard("a"), &affected).ok());
}

TEST(VizGraphTest, BuildQueryConjoinsAncestorFiltersAndSelections) {
  VizGraph g;
  std::vector<std::string> affected;
  ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz("src")), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz("dst")), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::Link("src", "dst"), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::SetFilter("src", MakeFilter("distance", 0, 500)),
                      &affected)
                  .ok());
  ASSERT_TRUE(
      g.Apply(Interaction::SetSelection("src", MakeFilter("dep_delay", 1, 2)),
              &affected)
          .ok());
  ASSERT_TRUE(g.Apply(Interaction::SetFilter("dst", MakeFilter("air_time", 10, 99)),
                      &affected)
                  .ok());

  auto q = g.BuildQuery("dst");
  ASSERT_TRUE(q.ok());
  // dst's own filter + src's filter + src's selection = 3 predicates.
  EXPECT_EQ(q->filter.size(), 3u);
  // The source viz itself sees only its own filter.
  auto src_q = g.BuildQuery("src");
  ASSERT_TRUE(src_q.ok());
  EXPECT_EQ(src_q->filter.size(), 1u);
  EXPECT_FALSE(g.BuildQuery("ghost").ok());
}

TEST(VizGraphTest, DiamondTopologyVisitsAncestorsOnce) {
  // a -> b, a -> c, b -> d, c -> d: a's filter must appear once in d's
  // query, not twice.
  VizGraph g;
  std::vector<std::string> affected;
  for (const char* name : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(g.Apply(Interaction::CreateViz(MakeViz(name)), &affected).ok());
  }
  ASSERT_TRUE(g.Apply(Interaction::Link("a", "b"), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::Link("a", "c"), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::Link("b", "d"), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::Link("c", "d"), &affected).ok());
  ASSERT_TRUE(g.Apply(Interaction::SetFilter("a", MakeFilter("distance", 0, 1)),
                      &affected)
                  .ok());
  auto q = g.BuildQuery("d");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->filter.size(), 1u);
}

class GeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::FlightsSeedConfig config;
    config.rows = 10'000;
    config.seed = 11;
    auto table = datagen::GenerateFlightsSeed(config);
    ASSERT_TRUE(table.ok());
    table_ = std::make_unique<storage::Table>(std::move(table).MoveValueUnsafe());
  }

  std::unique_ptr<storage::Table> table_;
};

TEST_F(GeneratorTest, GeneratesValidWorkflowsOfEveryType) {
  GeneratorConfig config;
  WorkflowGenerator generator(table_.get(), config, 99);
  for (WorkflowType type : AllWorkflowTypes()) {
    auto wf = generator.Generate(type, "wf");
    ASSERT_TRUE(wf.ok()) << WorkflowTypeName(type);
    EXPECT_GE(static_cast<int>(wf->size()), config.min_interactions);
    // Replaying through a fresh graph must succeed (structural validity).
    VizGraph graph;
    for (const Interaction& i : wf->interactions) {
      std::vector<std::string> affected;
      ASSERT_TRUE(graph.Apply(i, &affected).ok())
          << WorkflowTypeName(type) << ": " << i.ToJson().Dump();
    }
  }
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  GeneratorConfig config;
  WorkflowGenerator g1(table_.get(), config, 5);
  WorkflowGenerator g2(table_.get(), config, 5);
  auto w1 = g1.Generate(WorkflowType::kMixed, "w");
  auto w2 = g2.Generate(WorkflowType::kMixed, "w");
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ(w1->ToJson(), w2->ToJson());
}

TEST_F(GeneratorTest, IndependentWorkflowsHaveNoLinks) {
  GeneratorConfig config;
  WorkflowGenerator generator(table_.get(), config, 3);
  auto wf = generator.Generate(WorkflowType::kIndependent, "w");
  ASSERT_TRUE(wf.ok());
  for (const Interaction& i : wf->interactions) {
    EXPECT_NE(i.type, InteractionType::kLink);
  }
}

TEST_F(GeneratorTest, LinkedTypesContainLinks) {
  GeneratorConfig config;
  WorkflowGenerator generator(table_.get(), config, 4);
  for (WorkflowType type : {WorkflowType::kSequential, WorkflowType::kOneToN,
                            WorkflowType::kNToOne}) {
    auto wf = generator.Generate(type, "w");
    ASSERT_TRUE(wf.ok());
    int links = 0;
    for (const Interaction& i : wf->interactions) {
      if (i.type == InteractionType::kLink) ++links;
    }
    EXPECT_GE(links, 1) << WorkflowTypeName(type);
  }
}

TEST_F(GeneratorTest, DefaultSuiteShape) {
  GeneratorConfig config;
  config.min_interactions = 6;
  config.max_interactions = 8;
  WorkflowGenerator generator(table_.get(), config, 8);
  auto suite = generator.GenerateDefaultSuite(2);
  ASSERT_TRUE(suite.ok());
  EXPECT_EQ(suite->size(), 10u);  // 5 types x 2
}

TEST_F(GeneratorTest, JsonRoundTripOfGeneratedWorkflow) {
  GeneratorConfig config;
  WorkflowGenerator generator(table_.get(), config, 21);
  auto wf = generator.Generate(WorkflowType::kOneToN, "w");
  ASSERT_TRUE(wf.ok());
  auto parsed = Workflow::FromJson(wf->ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToJson(), wf->ToJson());
}

/// Property sweep: all workflow types generate structurally valid
/// workflows across many seeds.
class GeneratorSeedSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeneratorSeedSweep, AlwaysStructurallyValid) {
  const auto [seed, type_index] = GetParam();
  datagen::FlightsSeedConfig data_config;
  data_config.rows = 3'000;
  data_config.seed = 1;
  auto table = datagen::GenerateFlightsSeed(data_config);
  ASSERT_TRUE(table.ok());
  GeneratorConfig config;
  config.min_interactions = 8;
  config.max_interactions = 14;
  WorkflowGenerator generator(&*table, config,
                              static_cast<uint64_t>(seed));
  const WorkflowType type = AllWorkflowTypes()[static_cast<size_t>(type_index)];
  auto wf = generator.Generate(type, "sweep");
  ASSERT_TRUE(wf.ok());
  VizGraph graph;
  for (const Interaction& i : wf->interactions) {
    std::vector<std::string> affected;
    ASSERT_TRUE(graph.Apply(i, &affected).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndTypes, GeneratorSeedSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                                            ::testing::Values(0, 1, 2, 3, 4)));

}  // namespace
}  // namespace idebench::workflow
