/// \file chaos_test.cc
/// Deterministic chaos harness tests (src/chaos/):
///
///  * `FaultInjector` unit tests — seeded determinism, per-site budget,
///    stream independence (arming one site never perturbs another's
///    schedule), and scoped process-global installation;
///  * exec-layer result-transparency proofs — an injected worker-pool
///    stall is bit-identical to the dispatched run (same morsel
///    boundaries, inline drain), and an injected morsel slowdown equals
///    an explicit one-batch-morsel run bit for bit;
///  * CSV fault sites with a retry-until-budget-dry loader loop;
///  * session-scheduler fault handling — injected run faults retry with
///    virtual-time backoff and either recover (completed) or exhaust
///    retries into exactly one terminal `failed` update, with the
///    deadline guarantee intact throughout;
///  * scenario harness — seed-replay identity (same seed => byte-equal
///    event logs and scheduler stats), and the invariant sweep across
///    the scenario catalog, engines and seeds, including the uninjected
///    reference-run result-identity check.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/fault_injector.h"
#include "chaos/invariants.h"
#include "chaos/scenario.h"
#include "common/logging.h"
#include "common/random.h"
#include "engines/registry.h"
#include "exec/aggregator.h"
#include "exec/bound_query.h"
#include "exec/parallel.h"
#include "session/session.h"
#include "storage/csv.h"
#include "tests/test_util.h"
#include "workflow/interaction.h"

namespace idebench::chaos {
namespace {

using session::ProgressiveUpdate;
using session::SessionManager;
using session::SessionManagerOptions;
using workflow::Interaction;

// --- FaultInjector ----------------------------------------------------------

std::vector<bool> DrawSequence(FaultInjector* injector, FaultSite site,
                               int n) {
  std::vector<bool> fires;
  for (int i = 0; i < n; ++i) fires.push_back(injector->ShouldFire(site));
  return fires;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector a(42);
  FaultInjector b(42);
  a.Arm(FaultSite::kEngineRun, {0.3, -1});
  b.Arm(FaultSite::kEngineRun, {0.3, -1});
  EXPECT_EQ(DrawSequence(&a, FaultSite::kEngineRun, 200),
            DrawSequence(&b, FaultSite::kEngineRun, 200));

  FaultInjector c(43);
  c.Arm(FaultSite::kEngineRun, {0.3, -1});
  EXPECT_NE(DrawSequence(&a, FaultSite::kEngineRun, 200),
            DrawSequence(&c, FaultSite::kEngineRun, 200));
}

TEST(FaultInjectorTest, BudgetCapsFires) {
  FaultInjector injector(7);
  injector.Arm(FaultSite::kCsvOpen, {1.0, 3});
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.ShouldFire(FaultSite::kCsvOpen)) ++fires;
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(injector.site_stats(FaultSite::kCsvOpen).fires, 3);
  EXPECT_EQ(injector.total_fires(), 3);
}

TEST(FaultInjectorTest, DisarmedSitesNeverDrawOrFire) {
  FaultInjector injector(7);
  injector.Arm(FaultSite::kEngineRun, {1.0, -1});
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kReusePoison));
  EXPECT_EQ(injector.site_stats(FaultSite::kReusePoison).draws, 0);
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kEngineRun));
}

TEST(FaultInjectorTest, SiteStreamsAreIndependent) {
  // Arming (and drawing from) an extra site must not perturb another
  // site's schedule: each site forks its own rng stream.
  FaultInjector lone(11);
  lone.Arm(FaultSite::kEngineRun, {0.25, -1});
  FaultInjector paired(11);
  paired.Arm(FaultSite::kEngineRun, {0.25, -1});
  paired.Arm(FaultSite::kReuseEvictStorm, {0.5, -1});

  std::vector<bool> lone_fires, paired_fires;
  for (int i = 0; i < 300; ++i) {
    lone_fires.push_back(lone.ShouldFire(FaultSite::kEngineRun));
    // Interleave draws on the extra site.
    paired.ShouldFire(FaultSite::kReuseEvictStorm);
    paired_fires.push_back(paired.ShouldFire(FaultSite::kEngineRun));
    paired.ShouldFire(FaultSite::kReuseEvictStorm);
  }
  EXPECT_EQ(lone_fires, paired_fires);
}

TEST(FaultInjectorTest, ScopedInstallRestoresPrevious) {
  ASSERT_EQ(FaultInjector::Current(), nullptr);
  EXPECT_FALSE(FaultInjector::Fire(FaultSite::kEngineRun));
  FaultInjector outer(1);
  {
    ScopedFaultInjector outer_scope(&outer);
    EXPECT_EQ(FaultInjector::Current(), &outer);
    FaultInjector inner(2);
    inner.Arm(FaultSite::kEngineRun, {1.0, -1});
    {
      ScopedFaultInjector inner_scope(&inner);
      EXPECT_EQ(FaultInjector::Current(), &inner);
      EXPECT_TRUE(FaultInjector::Fire(FaultSite::kEngineRun));
    }
    EXPECT_EQ(FaultInjector::Current(), &outer);
    // Outer injector is unarmed: no fire, no draw.
    EXPECT_FALSE(FaultInjector::Fire(FaultSite::kEngineRun));
  }
  EXPECT_EQ(FaultInjector::Current(), nullptr);
}

// --- Exec-layer result transparency ----------------------------------------

/// Real-valued catalog: transparency must hold bitwise even where sums
/// are not exactly representable.
std::shared_ptr<storage::Catalog> ExecCatalog(int64_t rows = 4000) {
  storage::Schema schema({
      {"group", storage::DataType::kString, storage::AttributeKind::kNominal},
      {"value", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
  });
  auto fact = std::make_shared<storage::Table>("fact", schema);
  const char* groups[] = {"a", "b", "c", "d"};
  Rng rng(23);
  for (int64_t i = 0; i < rows; ++i) {
    fact->mutable_column(0).AppendString(groups[rng.UniformInt(0, 3)]);
    fact->mutable_column(1).AppendDouble(rng.Gaussian() * 100.0);
  }
  auto catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(catalog->AddTable(fact).ok());
  return catalog;
}

query::QuerySpec ExecSpec(const storage::Catalog& catalog) {
  query::QuerySpec spec;
  spec.viz_name = "v";
  query::BinDimension d;
  d.column = "group";
  d.mode = query::BinningMode::kNominal;
  spec.bins = {d};
  query::AggregateSpec count;
  count.type = query::AggregateType::kCount;
  query::AggregateSpec sum;
  sum.type = query::AggregateType::kSum;
  sum.column = "value";
  spec.aggregates = {count, sum};
  IDB_CHECK(spec.ResolveBins(catalog).ok());
  return spec;
}

TEST(ChaosExecTest, WorkerPoolStallIsBitTransparent) {
  auto catalog = ExecCatalog();
  const query::QuerySpec spec = ExecSpec(*catalog);
  auto bound = exec::BoundQuery::Bind(spec, *catalog, {});
  ASSERT_TRUE(bound.ok());
  std::vector<int64_t> rows(4000);
  for (int64_t i = 0; i < 4000; ++i) rows[static_cast<size_t>(i)] = i;
  const int64_t morsel = 2 * exec::kVectorBatchSize;

  exec::BinnedAggregator reference(&*bound);
  exec::MorselProcessBatch(&reference, rows.data(), 4000, 1.0,
                           /*parallelism=*/4, morsel);

  FaultInjector injector(5);
  injector.Arm(FaultSite::kWorkerPoolStall, {1.0, -1});
  ScopedFaultInjector scope(&injector);
  exec::BinnedAggregator stalled(&*bound);
  exec::MorselProcessBatch(&stalled, rows.data(), 4000, 1.0,
                           /*parallelism=*/4, morsel);
  EXPECT_GT(injector.site_stats(FaultSite::kWorkerPoolStall).fires, 0);

  // Same morsel boundaries, inline drain: bit-identical, even for
  // real-valued sums.
  EXPECT_EQ(reference.rows_seen(), stalled.rows_seen());
  std::string why;
  EXPECT_TRUE(ResultsMatch(reference.ExactResult(), stalled.ExactResult(),
                           /*rel_eps=*/0.0, &why))
      << why;
}

TEST(ChaosExecTest, MorselSlowdownEqualsExplicitOneBatchMorsels) {
  auto catalog = ExecCatalog();
  const query::QuerySpec spec = ExecSpec(*catalog);
  auto bound = exec::BoundQuery::Bind(spec, *catalog, {});
  ASSERT_TRUE(bound.ok());
  std::vector<int64_t> rows(4000);
  for (int64_t i = 0; i < 4000; ++i) rows[static_cast<size_t>(i)] = i;

  // Reference: explicit one-vector-batch morsels, no injection.
  exec::BinnedAggregator reference(&*bound);
  exec::MorselProcessBatch(&reference, rows.data(), 4000, 1.0,
                           /*parallelism=*/4, exec::kVectorBatchSize);

  // Injected: default morsel size, but the slowdown site degrades every
  // call to one-batch morsels.
  FaultInjector injector(5);
  injector.Arm(FaultSite::kMorselSlowdown, {1.0, -1});
  ScopedFaultInjector scope(&injector);
  exec::BinnedAggregator slowed(&*bound);
  exec::MorselProcessBatch(&slowed, rows.data(), 4000, 1.0,
                           /*parallelism=*/4);
  EXPECT_GT(injector.site_stats(FaultSite::kMorselSlowdown).fires, 0);

  EXPECT_EQ(reference.rows_seen(), slowed.rows_seen());
  std::string why;
  EXPECT_TRUE(ResultsMatch(reference.ExactResult(), slowed.ExactResult(),
                           /*rel_eps=*/0.0, &why))
      << why;
}

// --- CSV fault sites --------------------------------------------------------

TEST(ChaosCsvTest, LoaderRetriesUntilOpenBudgetRunsDry) {
  auto catalog = testutil::MakeTinyCatalog();
  const storage::Table* fact = catalog->fact_table();
  const std::string path = "chaos_csv_retry_test.csv";

  FaultInjector injector(3);
  injector.Arm(FaultSite::kCsvOpen, {1.0, 2});
  ScopedFaultInjector scope(&injector);

  int attempts = 0;
  Status last = Status::OK();
  for (; attempts < 8; ) {
    ++attempts;
    last = storage::WriteCsv(*fact, path);
    if (last.ok()) break;
    ASSERT_EQ(last.code(), StatusCode::kIoError) << last.ToString();
  }
  EXPECT_TRUE(last.ok()) << last.ToString();
  EXPECT_EQ(attempts, 3);  // two injected failures, then success

  auto read = storage::ReadCsv(path, fact->name(), fact->schema());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_rows(), fact->num_rows());
  std::remove(path.c_str());
}

TEST(ChaosCsvTest, AllocFaultSurfacesAsResourceExhausted) {
  auto catalog = testutil::MakeTinyCatalog();
  const storage::Table* fact = catalog->fact_table();
  const std::string path = "chaos_csv_alloc_test.csv";
  ASSERT_TRUE(storage::WriteCsv(*fact, path).ok());

  FaultInjector injector(3);
  injector.Arm(FaultSite::kCsvAlloc, {1.0, 1});
  ScopedFaultInjector scope(&injector);
  auto read = storage::ReadCsv(path, fact->name(), fact->schema());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kResourceExhausted);

  // Budget spent: the retry succeeds.
  auto retry = storage::ReadCsv(path, fact->name(), fact->schema());
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->num_rows(), fact->num_rows());
  std::remove(path.c_str());
}

// --- Session-scheduler fault handling ---------------------------------------

query::VizSpec TinyViz(const std::string& name) {
  query::VizSpec v;
  v.name = name;
  v.source = "tiny";
  query::BinDimension d;
  d.column = "group";
  d.mode = query::BinningMode::kNominal;
  v.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kCount;
  v.aggregates.push_back(a);
  return v;
}

class RecordingSink : public session::ResultSink {
 public:
  void OnUpdate(const ProgressiveUpdate& u) override { updates.push_back(u); }
  std::vector<ProgressiveUpdate> finals() const {
    std::vector<ProgressiveUpdate> out;
    for (const ProgressiveUpdate& u : updates) {
      if (u.final_update) out.push_back(u);
    }
    return out;
  }
  std::vector<ProgressiveUpdate> updates;
};

TEST(ChaosSessionTest, RunFaultRetriesWithBackoffThenCompletes) {
  auto engine = engines::CreateEngine("blocking");
  ASSERT_TRUE(engine.ok());
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());

  FaultInjector injector(9);
  injector.Arm(FaultSite::kEngineRun, {1.0, 2});  // first two grants wedge
  ScopedFaultInjector scope(&injector);

  SessionManagerOptions options;  // TR 3s, retries 3, backoff 50ms
  // Sliced scheduling: grants land early in the TR window, leaving the
  // backoff ladder room before the deadline (quantum 0 would run the
  // whole entitlement at the deadline horizon — nothing left to retry).
  options.quantum = 50'000;
  SessionManager manager(options, engine->get(), catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());
  ASSERT_TRUE(
      (*sess)->SubmitInteraction(Interaction::CreateViz(TinyViz("v"))).ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());

  const session::SchedulerStats stats = manager.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.transient_faults, 2);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.max_deadline_overshoot, 0);

  const auto finals = sink.finals();
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_TRUE(finals[0].completed);
  EXPECT_TRUE(finals[0].result.available);
  // Both retries waited out their virtual-time backoff first.
  EXPECT_GE(finals[0].virtual_time, options.retry_backoff * 3);
}

TEST(ChaosSessionTest, RunFaultExhaustsRetriesIntoFailedTerminal) {
  auto engine = engines::CreateEngine("blocking");
  ASSERT_TRUE(engine.ok());
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());

  FaultInjector injector(9);
  injector.Arm(FaultSite::kEngineRun, {1.0, -1});  // every grant wedges
  ScopedFaultInjector scope(&injector);

  SessionManagerOptions options;
  options.max_engine_retries = 3;
  options.quantum = 50'000;
  SessionManager manager(options, engine->get(), catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());
  ASSERT_TRUE(
      (*sess)->SubmitInteraction(Interaction::CreateViz(TinyViz("v"))).ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());

  const session::SchedulerStats stats = manager.stats();
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.transient_faults, 4);  // initial fault + 3 retries
  EXPECT_EQ(stats.retries, 3);
  EXPECT_EQ(stats.max_deadline_overshoot, 0);
  EXPECT_FALSE(manager.HasLive());

  const auto finals = sink.finals();
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_TRUE(finals[0].failed);
  EXPECT_FALSE(finals[0].completed);
  EXPECT_FALSE(finals[0].cancelled);
  EXPECT_FALSE(finals[0].unsupported);
}

TEST(ChaosSessionTest, FaultsNeverBreakTheDeadlineGuarantee) {
  // Retries must spend the query's own TR window: with a TR shorter than
  // the retry backoff ladder, the query deadline-cancels exactly on time
  // instead of overshooting into its backoff.
  auto engine = engines::CreateEngine("blocking");
  ASSERT_TRUE(engine.ok());
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());

  FaultInjector injector(9);
  injector.Arm(FaultSite::kEngineRun, {1.0, -1});
  ScopedFaultInjector scope(&injector);

  SessionManagerOptions options;
  options.time_requirement = 120'000;  // < 50ms + 100ms + 200ms backoffs
  options.quantum = 50'000;
  SessionManager manager(options, engine->get(), catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());
  ASSERT_TRUE(
      (*sess)->SubmitInteraction(Interaction::CreateViz(TinyViz("v"))).ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());

  const session::SchedulerStats stats = manager.stats();
  EXPECT_EQ(stats.deadline_cancelled + stats.failed, 1);
  EXPECT_EQ(stats.max_deadline_overshoot, 0);
  const auto finals = sink.finals();
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_LE(finals[0].virtual_time, options.time_requirement);
}

// --- Invariant checker ------------------------------------------------------

TEST(InvariantCheckerTest, ResultsMatchRespectsRelEps) {
  query::QueryResult a;
  a.available = true;
  a.rows_processed = 10;
  query::BinResult bin;
  query::AggValue v;
  v.estimate = 100.0;
  v.margin = 1.0;
  bin.values.push_back(v);
  a.bins[3] = bin;
  query::QueryResult b = a;

  std::string why;
  EXPECT_TRUE(ResultsMatch(a, b, 0.0, &why)) << why;

  b.bins[3].values[0].estimate = 100.0 * (1.0 + 1e-12);
  EXPECT_FALSE(ResultsMatch(a, b, 0.0, &why));
  EXPECT_TRUE(ResultsMatch(a, b, 1e-9, &why)) << why;
  b.bins[3].values[0].estimate = 105.0;
  EXPECT_FALSE(ResultsMatch(a, b, 1e-9, &why));
}

// --- Scenario harness -------------------------------------------------------

void ExpectReportClean(const ChaosReport& report) {
  EXPECT_TRUE(report.run_error.ok())
      << report.scenario << "/" << report.engine << "/seed " << report.seed
      << ": " << report.run_error.ToString();
  for (const InvariantViolation& v : report.violations) {
    ADD_FAILURE() << report.scenario << "/" << report.engine << "/seed "
                  << report.seed << " [" << v.invariant << "] " << v.detail;
  }
}

TEST(ChaosScenarioTest, SeedReplayIsBitIdentical) {
  const ScenarioSpec* spec = FindScenario("thrash");
  ASSERT_NE(spec, nullptr);
  const ChaosReport a = RunScenario(*spec, "progressive", 42);
  const ChaosReport b = RunScenario(*spec, "progressive", 42);
  ExpectReportClean(a);
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_EQ(a.total_fires, b.total_fires);
  EXPECT_EQ(a.fault_summary, b.fault_summary);
  EXPECT_EQ(a.stats.queries_submitted, b.stats.queries_submitted);
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.deadline_cancelled, b.stats.deadline_cancelled);
  EXPECT_EQ(a.stats.client_cancelled, b.stats.client_cancelled);
  EXPECT_EQ(a.stats.failed, b.stats.failed);
  EXPECT_EQ(a.stats.transient_faults, b.stats.transient_faults);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.virtual_now, b.stats.virtual_now);

  const ChaosReport c = RunScenario(*spec, "progressive", 43);
  EXPECT_NE(a.event_log, c.event_log);
}

TEST(ChaosScenarioTest, IngestStormSeedReplayIsBitIdentical) {
  const ScenarioSpec* spec = FindScenario("ingest_storm");
  ASSERT_NE(spec, nullptr);
  const ChaosReport a = RunScenario(*spec, "progressive", 42);
  const ChaosReport b = RunScenario(*spec, "progressive", 42);
  ExpectReportClean(a);  // includes max_deadline_overshoot == 0
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_EQ(a.total_fires, b.total_fires);
  EXPECT_EQ(a.fault_summary, b.fault_summary);
  EXPECT_EQ(a.stats.virtual_now, b.stats.virtual_now);

  // The storm must actually have ingested — otherwise the scenario proves
  // nothing about queries racing publishes.
  bool ingested = false;
  for (const std::string& line : a.event_log) {
    ingested = ingested || line.find("ingest applied=") != std::string::npos;
  }
  EXPECT_TRUE(ingested);

  const ChaosReport c = RunScenario(*spec, "progressive", 43);
  EXPECT_NE(a.event_log, c.event_log);
}

TEST(ChaosScenarioTest, CatalogHasTheDocumentedScenarios) {
  for (const char* name :
       {"baseline", "cancel_storm", "session_kill", "submit_flood",
        "deadline_epsilon", "link_churn", "engine_faults", "reuse_churn",
        "io_faults", "thrash", "slow_client", "disconnect_mid_query",
        "ingest_storm"}) {
    EXPECT_NE(FindScenario(name), nullptr) << name;
  }
  EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

TEST(ChaosScenarioTest, InjectedSweepHoldsEveryInvariant) {
  // The in-tree sweep covers two engines at a few seeds; the CI chaos
  // job widens to every engine and >= 20 seeds via chaos_runner.
  int64_t fires = 0;
  for (const ScenarioSpec& spec : ScenarioCatalog()) {
    for (const char* engine : {"blocking", "progressive"}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        const ChaosReport report =
            RunScenarioWithReference(spec, engine, seed);
        ExpectReportClean(report);
        fires += report.total_fires;
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
  // The sweep must actually have injected something, or it proves
  // nothing about fault handling.
  EXPECT_GT(fires, 0);
}

TEST(ChaosScenarioTest, AllEnginesSurviveTheThrashScenario) {
  const ScenarioSpec* spec = FindScenario("thrash");
  ASSERT_NE(spec, nullptr);
  for (const std::string& engine : engines::BuiltinEngineNames()) {
    ExpectReportClean(RunScenarioWithReference(*spec, engine, 7));
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(ChaosScenarioTest, SlowClientDropsPartialsNeverTerminals) {
  const ScenarioSpec* spec = FindScenario("slow_client");
  ASSERT_NE(spec, nullptr);
  int64_t dropped = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    const ChaosReport report = RunScenario(*spec, "progressive", seed);
    ExpectReportClean(report);
    // Whatever the write-side weather, every admitted query delivered
    // exactly one terminal update (the checker would flag otherwise; the
    // count makes the drain explicit).
    EXPECT_EQ(static_cast<int64_t>(report.finals.size()),
              report.stats.queries_submitted);
    for (const std::string& line : report.event_log) {
      const auto pos = line.find("dropped partials=");
      if (pos != std::string::npos) {
        dropped += std::stoll(line.substr(pos + 17));
      }
    }
  }
  // The armed kNetWrite site must actually have shed partials somewhere,
  // or the scenario proves nothing about backpressure.
  EXPECT_GT(dropped, 0);

  // Drops are injector draws, so the partial stream is seed-deterministic
  // like everything else in the harness.
  const ChaosReport a = RunScenario(*spec, "progressive", 11);
  const ChaosReport b = RunScenario(*spec, "progressive", 11);
  EXPECT_EQ(a.event_log, b.event_log);
}

TEST(ChaosScenarioTest, DisconnectMidQueryDrainsSessionsCleanly) {
  const ScenarioSpec* spec = FindScenario("disconnect_mid_query");
  ASSERT_NE(spec, nullptr);
  bool disconnected = false;
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    const ChaosReport report = RunScenario(*spec, "progressive", seed);
    ExpectReportClean(report);
    // Torn connections close their sessions mid-query; the drain still
    // hands every submitted query its single terminal update.
    EXPECT_EQ(static_cast<int64_t>(report.finals.size()),
              report.stats.queries_submitted);
    for (const std::string& line : report.event_log) {
      disconnected = disconnected || line.find("disconnect") != std::string::npos;
    }
  }
  // Across four seeds the kNetRead site must have torn at least one
  // connection.
  EXPECT_TRUE(disconnected);
}

TEST(ChaosScenarioTest, IoFaultsScenarioRetriesSetup) {
  const ScenarioSpec* spec = FindScenario("io_faults");
  ASSERT_NE(spec, nullptr);
  bool retried = false;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const ChaosReport report = RunScenario(*spec, "blocking", seed);
    ExpectReportClean(report);
    retried = retried || report.prepare_attempts > 1 || report.total_fires > 0;
  }
  // Across five seeds the armed setup sites must have fired somewhere.
  EXPECT_TRUE(retried);
}

}  // namespace
}  // namespace idebench::chaos
