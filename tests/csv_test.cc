#include "storage/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace idebench::storage {
namespace {

/// Temp file path helper; files are removed in the destructor.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

  void Write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

 private:
  std::string path_;
};

TEST(CsvLineTest, PlainFields) {
  EXPECT_EQ(ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(ParseCsvLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvLineTest, QuotedFields) {
  EXPECT_EQ(ParseCsvLine(R"("a,b",c)"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine(R"("he said ""hi""",x)"),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST(CsvLineTest, StripsCarriageReturn) {
  EXPECT_EQ(ParseCsvLine("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(CsvIoTest, WriteThenReadRoundTrips) {
  Table original = testutil::MakeTinyTable();
  TempFile file("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(original, file.path()).ok());

  auto read_back = ReadCsv(file.path(), "tiny", original.schema());
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->num_rows(), original.num_rows());
  for (int64_t r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(read_back->RowToString(r), original.RowToString(r));
  }
}

TEST(CsvIoTest, QuotingSurvivesRoundTrip) {
  Schema schema({{"s", DataType::kString, AttributeKind::kNominal}});
  Table t("quoted", schema);
  t.mutable_column(0).AppendString("has,comma");
  t.mutable_column(0).AppendString("has \"quote\"");
  TempFile file("quoting.csv");
  ASSERT_TRUE(WriteCsv(t, file.path()).ok());
  auto read_back = ReadCsv(file.path(), "quoted", schema);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->column(0).ValueAsString(0), "has,comma");
  EXPECT_EQ(read_back->column(0).ValueAsString(1), "has \"quote\"");
}

TEST(CsvIoTest, MissingFileFails) {
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  EXPECT_EQ(ReadCsv("/nonexistent/nope.csv", "t", schema).status().code(),
            StatusCode::kIoError);
}

TEST(CsvIoTest, HeaderMismatchFails) {
  TempFile file("badheader.csv");
  file.Write("wrong\n1\n");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  EXPECT_FALSE(ReadCsv(file.path(), "t", schema).ok());
}

TEST(CsvIoTest, FieldCountMismatchFails) {
  TempFile file("badrow.csv");
  file.Write("a,b\n1\n");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative},
                 {"b", DataType::kInt64, AttributeKind::kQuantitative}});
  EXPECT_FALSE(ReadCsv(file.path(), "t", schema).ok());
}

TEST(CsvIoTest, UnparsableValueReportsLineAndColumn) {
  TempFile file("badvalue.csv");
  file.Write("a\nnot_a_number\n");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(CsvIoTest, EmptyFileFails) {
  TempFile file("empty.csv");
  file.Write("");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  EXPECT_FALSE(ReadCsv(file.path(), "t", schema).ok());
}

TEST(CsvIoTest, SkipsBlankLines) {
  TempFile file("blanks.csv");
  file.Write("a\n1\n\n2\n");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2);
}

}  // namespace
}  // namespace idebench::storage
