#include "storage/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace idebench::storage {
namespace {

/// Temp file path helper; files are removed in the destructor.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

  void Write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

 private:
  std::string path_;
};

TEST(CsvLineTest, PlainFields) {
  EXPECT_EQ(ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(ParseCsvLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvLineTest, QuotedFields) {
  EXPECT_EQ(ParseCsvLine(R"("a,b",c)"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine(R"("he said ""hi""",x)"),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST(CsvLineTest, StripsCarriageReturn) {
  EXPECT_EQ(ParseCsvLine("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(CsvIoTest, WriteThenReadRoundTrips) {
  Table original = testutil::MakeTinyTable();
  TempFile file("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(original, file.path()).ok());

  auto read_back = ReadCsv(file.path(), "tiny", original.schema());
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->num_rows(), original.num_rows());
  for (int64_t r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(read_back->RowToString(r), original.RowToString(r));
  }
}

TEST(CsvIoTest, QuotingSurvivesRoundTrip) {
  Schema schema({{"s", DataType::kString, AttributeKind::kNominal}});
  Table t("quoted", schema);
  t.mutable_column(0).AppendString("has,comma");
  t.mutable_column(0).AppendString("has \"quote\"");
  TempFile file("quoting.csv");
  ASSERT_TRUE(WriteCsv(t, file.path()).ok());
  auto read_back = ReadCsv(file.path(), "quoted", schema);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->column(0).ValueAsString(0), "has,comma");
  EXPECT_EQ(read_back->column(0).ValueAsString(1), "has \"quote\"");
}

TEST(CsvIoTest, MissingFileFails) {
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  EXPECT_EQ(ReadCsv("/nonexistent/nope.csv", "t", schema).status().code(),
            StatusCode::kIoError);
}

TEST(CsvIoTest, HeaderMismatchFails) {
  TempFile file("badheader.csv");
  file.Write("wrong\n1\n");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  EXPECT_FALSE(ReadCsv(file.path(), "t", schema).ok());
}

TEST(CsvIoTest, FieldCountMismatchFails) {
  TempFile file("badrow.csv");
  file.Write("a,b\n1\n");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative},
                 {"b", DataType::kInt64, AttributeKind::kQuantitative}});
  EXPECT_FALSE(ReadCsv(file.path(), "t", schema).ok());
}

TEST(CsvIoTest, UnparsableValueReportsLineAndColumn) {
  TempFile file("badvalue.csv");
  file.Write("a\nnot_a_number\n");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(CsvIoTest, EmptyFileFails) {
  TempFile file("empty.csv");
  file.Write("");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  EXPECT_FALSE(ReadCsv(file.path(), "t", schema).ok());
}

TEST(CsvIoTest, SkipsBlankLines) {
  TempFile file("blanks.csv");
  file.Write("a\n1\n\n2\n");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2);
}

// --- Malformed / tricky input matrix (record-aware reader) ------------------

TEST(CsvIoTest, EmbeddedNewlineInsideQuotedField) {
  TempFile file("embednl.csv");
  file.Write("s,a\n\"line one\nline two\",7\nplain,8\n");
  Schema schema({{"s", DataType::kString, AttributeKind::kNominal},
                 {"a", DataType::kInt64, AttributeKind::kQuantitative}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_EQ(result->column(0).ValueAsString(0), "line one\nline two");
  EXPECT_EQ(result->column(1).ValueAsInt(0), 7);
  EXPECT_EQ(result->column(0).ValueAsString(1), "plain");
}

TEST(CsvIoTest, EmbeddedNewlineRoundTripsThroughWriter) {
  Schema schema({{"s", DataType::kString, AttributeKind::kNominal}});
  Table t("nl", schema);
  t.mutable_column(0).AppendString("a\nb");
  t.mutable_column(0).AppendString("c\r\nd");
  TempFile file("nl_roundtrip.csv");
  ASSERT_TRUE(WriteCsv(t, file.path()).ok());
  auto read_back = ReadCsv(file.path(), "nl", schema);
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  ASSERT_EQ(read_back->num_rows(), 2);
  EXPECT_EQ(read_back->column(0).ValueAsString(0), "a\nb");
  EXPECT_EQ(read_back->column(0).ValueAsString(1), "c\r\nd");
}

TEST(CsvIoTest, CrlfLineEndingsEverywhere) {
  TempFile file("crlf.csv");
  file.Write("s,a\r\nx,1\r\n\"q,y\",2\r\n");
  Schema schema({{"s", DataType::kString, AttributeKind::kNominal},
                 {"a", DataType::kInt64, AttributeKind::kQuantitative}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_EQ(result->column(0).ValueAsString(1), "q,y");
  EXPECT_EQ(result->column(1).ValueAsInt(1), 2);
}

TEST(CsvIoTest, CarriageReturnInsideQuotesIsData) {
  TempFile file("crdata.csv");
  file.Write("s\n\"a\rb\"\n");
  Schema schema({{"s", DataType::kString, AttributeKind::kNominal}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->column(0).ValueAsString(0), "a\rb");
}

TEST(CsvIoTest, EscapedQuotesAndEmptyQuotedFields) {
  TempFile file("escq.csv");
  file.Write("s,t\n\"he said \"\"hi\"\"\",\"\"\n");
  Schema schema({{"s", DataType::kString, AttributeKind::kNominal},
                 {"t", DataType::kString, AttributeKind::kNominal}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->column(0).ValueAsString(0), "he said \"hi\"");
  EXPECT_EQ(result->column(1).ValueAsString(0), "");
}

TEST(CsvIoTest, QuotedEmptySingleFieldRowIsARowNotABlank) {
  // `""` is a real (empty) quoted field — only truly empty lines skip.
  TempFile file("quotedempty.csv");
  file.Write("s\n\"\"\nx\n");
  Schema schema({{"s", DataType::kString, AttributeKind::kNominal}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_EQ(result->column(0).ValueAsString(0), "");
  EXPECT_EQ(result->column(0).ValueAsString(1), "x");
}

TEST(CsvIoTest, UnterminatedQuoteReportsStartLine) {
  TempFile file("unterm.csv");
  file.Write("s,a\nok,1\n\"never closed,2\n3,4\n");
  Schema schema({{"s", DataType::kString, AttributeKind::kNominal},
                 {"a", DataType::kInt64, AttributeKind::kQuantitative}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unterminated"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(CsvIoTest, ErrorLineNumbersAccountForEmbeddedNewlines) {
  // The bad value sits on physical line 5; a naive per-line reader would
  // report line 4 (record number) instead.
  TempFile file("linenumbers.csv");
  file.Write("s,a\n\"one\ntwo\nthree\",1\nx,notanumber\n");
  Schema schema({{"s", DataType::kString, AttributeKind::kNominal},
                 {"a", DataType::kInt64, AttributeKind::kQuantitative}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 5"), std::string::npos);
}

TEST(CsvIoTest, MissingTrailingNewlineStillReadsLastRecord) {
  TempFile file("notrailing.csv");
  file.Write("a\n1\n2");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_EQ(result->column(0).ValueAsInt(1), 2);
}

TEST(CsvIoTest, TrailingEmptyFieldIsPreserved) {
  TempFile file("trailempty.csv");
  file.Write("a,s\n1,\n");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative},
                 {"s", DataType::kString, AttributeKind::kNominal}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->column(1).ValueAsString(0), "");
}

TEST(CsvIoTest, OverflowingIntegerIsRejectedNotWrapped) {
  TempFile file("overflow.csv");
  file.Write("a\n99999999999999999999999999\n");
  Schema schema({{"a", DataType::kInt64, AttributeKind::kQuantitative}});
  auto result = ReadCsv(file.path(), "t", schema);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(CsvIoTest, TrailingGarbageAfterNumberIsRejected) {
  TempFile file("garbage.csv");
  file.Write("a\n1.5x\n");
  Schema schema({{"a", DataType::kDouble, AttributeKind::kQuantitative}});
  EXPECT_FALSE(ReadCsv(file.path(), "t", schema).ok());
}

}  // namespace
}  // namespace idebench::storage
