/// \file integration_test.cc
/// End-to-end tests across modules: dataset building, full benchmark
/// runs, determinism, golden-file replay, and cross-engine invariants on
/// realistic (small) configurations.

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/idebench.h"
#include "query/sql.h"
#include "workflow/generator.h"

namespace idebench::core {
namespace {

DatasetConfig TinyDataset(bool normalized = false) {
  DatasetConfig config;
  config.nominal_rows = 50'000'000;  // 50 M nominal
  config.actual_rows = 20'000;
  config.seed_rows = 10'000;
  config.normalized = normalized;
  config.seed = 99;
  return config;
}

BenchmarkConfig TinyBenchmark(const std::string& engine) {
  BenchmarkConfig config;
  config.engine = engine;
  config.dataset = TinyDataset();
  config.time_requirements_s = {0.5, 3.0};
  config.workflows_per_type = 2;
  config.seed = 5;
  return config;
}

TEST(DatasetTest, BuildDenormalized) {
  auto catalog = BuildFlightsCatalog(TinyDataset(false));
  ASSERT_TRUE(catalog.ok());
  EXPECT_FALSE((*catalog)->is_normalized());
  EXPECT_EQ((*catalog)->fact_table()->num_rows(), 20'000);
  EXPECT_EQ((*catalog)->nominal_rows(), 50'000'000);
}

TEST(DatasetTest, BuildNormalizedStarSchema) {
  auto catalog = BuildFlightsCatalog(TinyDataset(true));
  ASSERT_TRUE(catalog.ok());
  EXPECT_TRUE((*catalog)->is_normalized());
  EXPECT_EQ((*catalog)->tables().size(), 3u);
  EXPECT_EQ((*catalog)->foreign_keys().size(), 2u);
  // The fact table sheds the dimension columns.
  EXPECT_EQ((*catalog)->fact_table()->ColumnByName("carrier"), nullptr);
  EXPECT_NE((*catalog)->GetTable("carriers"), nullptr);
}

TEST(DatasetTest, DefaultActualRowsDerivation) {
  DatasetConfig config = MediumDataset();
  EXPECT_EQ(config.EffectiveActualRows(), 500'000);
  config = LargeDataset();
  EXPECT_EQ(config.EffectiveActualRows(), 600'000);  // capped
  config.actual_rows = 1'000;
  EXPECT_EQ(config.EffectiveActualRows(), 1'000);
}

TEST(DatasetTest, SizeLabels) {
  EXPECT_EQ(DataSizeLabel(100'000'000), "100m");
  EXPECT_EQ(DataSizeLabel(500'000'000), "500m");
  EXPECT_EQ(DataSizeLabel(1'000'000'000), "1b");
}

TEST(IntegrationTest, FullRunProgressiveEngine) {
  auto outcome = RunBenchmark(TinyBenchmark("progressive"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->records.size(), 20u);
  EXPECT_EQ(outcome->summary.size(), 2u);  // one per TR
  EXPECT_GT(outcome->data_preparation_time, 0);
  // The progressive engine almost never violates (restart overhead can
  // cost the very first query at TR=0.5).
  for (const auto& row : outcome->summary) {
    EXPECT_LT(row.tr_violation_rate, 0.1) << row.group;
  }
}

TEST(IntegrationTest, FullRunBlockingEngineViolatesTightTr) {
  auto outcome = RunBenchmark(TinyBenchmark("blocking"));
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->summary.size(), 2u);
  // 50 M nominal at ~5 ns/row = 0.25 s base; complexity pushes many
  // queries past 0.5 s but almost none past 3 s.
  EXPECT_GT(outcome->summary[0].tr_violation_rate,
            outcome->summary[1].tr_violation_rate);
  // Whatever the blocking engine returns is exact.
  for (const auto& r : outcome->records) {
    if (!r.metrics.tr_violated) {
      EXPECT_NEAR(r.metrics.mean_rel_error, 0.0, 1e-9);
      EXPECT_NEAR(r.metrics.missing_bins, 0.0, 1e-9);
    }
  }
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  auto a = RunBenchmark(TinyBenchmark("stratified"));
  auto b = RunBenchmark(TinyBenchmark("stratified"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->records.size(), b->records.size());
  for (size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_EQ(a->records[i].sql, b->records[i].sql);
    EXPECT_DOUBLE_EQ(a->records[i].metrics.mean_rel_error,
                     b->records[i].metrics.mean_rel_error);
    EXPECT_EQ(a->records[i].metrics.tr_violated,
              b->records[i].metrics.tr_violated);
  }
}

TEST(IntegrationTest, NormalizedRunWithJoins) {
  BenchmarkConfig config = TinyBenchmark("blocking");
  config.dataset.normalized = true;
  config.time_requirements_s = {3.0};
  auto outcome = RunBenchmark(config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->records.size(), 10u);
  // At least one query must reference a dimension column and render a
  // JOIN in its SQL.
  bool saw_join = false;
  for (const auto& r : outcome->records) {
    if (r.sql.find(" JOIN ") != std::string::npos) saw_join = true;
  }
  EXPECT_TRUE(saw_join);
}

TEST(IntegrationTest, OnlineEngineFallbackShareIsSubstantial) {
  BenchmarkConfig config = TinyBenchmark("online");
  config.dataset.nominal_rows = 500'000'000;  // make fallback scans slow
  config.time_requirements_s = {1.0};
  auto outcome = RunBenchmark(config);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->summary.size(), 1u);
  // AVG/multi-aggregate queries fall back to blocking scans that cannot
  // meet 1 s at 500 M: a large share of violations, as in the paper.
  EXPECT_GT(outcome->summary[0].tr_violation_rate, 0.3);
  EXPECT_LT(outcome->summary[0].tr_violation_rate, 0.9);
}

TEST(IntegrationTest, StratifiedQualityConstantAcrossTr) {
  BenchmarkConfig config = TinyBenchmark("stratified");
  auto outcome = RunBenchmark(config);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->summary.size(), 2u);
  // Identical sample -> identical quality at both TRs (violation rates
  // may differ).
  EXPECT_NEAR(outcome->summary[0].mean_missing_bins,
              outcome->summary[1].mean_missing_bins, 1e-9);
  EXPECT_NEAR(outcome->summary[0].median_mre, outcome->summary[1].median_mre,
              1e-9);
}

TEST(IntegrationTest, UnknownEngineFails) {
  BenchmarkConfig config = TinyBenchmark("warp_drive");
  EXPECT_FALSE(RunBenchmark(config).ok());
}

// --- Golden-file end-to-end replay -----------------------------------------

constexpr const char* kGoldenWorkflowPath =
    IDEBENCH_SOURCE_DIR "/tests/golden/workflow_small.json";
constexpr const char* kGoldenExpectedPath =
    IDEBENCH_SOURCE_DIR "/tests/golden/workflow_small_expected.json";

/// Serializes the metrics fields of the detailed report as pretty JSON;
/// doubles print at %.17g (common/json.cc), so the text is a faithful
/// bit-level witness of every metric.
std::string MetricsReportJson(const std::vector<driver::QueryRecord>& records) {
  JsonValue arr = JsonValue::Array();
  for (const driver::QueryRecord& r : records) {
    JsonValue j = JsonValue::Object();
    j.Set("id", static_cast<double>(r.id));
    j.Set("interaction_id", static_cast<double>(r.interaction_id));
    j.Set("viz", r.viz_name);
    j.Set("sql", r.sql);
    j.Set("progress", r.progress);
    j.Set("tr_violated", r.metrics.tr_violated);
    j.Set("bins_delivered", static_cast<double>(r.metrics.bins_delivered));
    j.Set("bins_in_gt", static_cast<double>(r.metrics.bins_in_gt));
    j.Set("missing_bins", r.metrics.missing_bins);
    j.Set("mean_rel_error", r.metrics.mean_rel_error);
    j.Set("rel_error_stdev", r.metrics.rel_error_stdev);
    j.Set("smape", r.metrics.smape);
    j.Set("cosine_distance", r.metrics.cosine_distance);
    j.Set("mean_margin_rel", r.metrics.mean_margin_rel);
    j.Set("margin_stdev", r.metrics.margin_stdev);
    j.Set("bins_out_of_margin",
          static_cast<double>(r.metrics.bins_out_of_margin));
    j.Set("bias", r.metrics.bias);
    arr.Append(std::move(j));
  }
  return arr.DumpPretty() + "\n";
}

/// Replays the committed workflow on a fixed configuration and compares
/// the produced metrics report, field for field and bit for bit, against
/// the committed expectation.  Regenerate both files after an intended
/// behavior change with:
///   IDEBENCH_REGEN_GOLDEN=1 ./idebench_tests --gtest_filter='*GoldenWorkflow*'
TEST(IntegrationTest, GoldenWorkflowReplayMatchesCommittedReport) {
  const bool regen = std::getenv("IDEBENCH_REGEN_GOLDEN") != nullptr;

  DatasetConfig dataset = TinyDataset();
  dataset.actual_rows = 8'000;
  auto catalog = BuildFlightsCatalog(dataset);
  ASSERT_TRUE(catalog.ok());

  workflow::Workflow wf;
  if (regen) {
    workflow::GeneratorConfig generator_config;
    workflow::WorkflowGenerator generator((*catalog)->fact_table(),
                                          generator_config, /*seed=*/42);
    auto generated = generator.Generate(workflow::WorkflowType::kMixed,
                                        "golden_small");
    ASSERT_TRUE(generated.ok());
    wf = std::move(generated).MoveValueUnsafe();
    ASSERT_TRUE(wf.SaveToFile(kGoldenWorkflowPath).ok());
  } else {
    auto loaded = workflow::Workflow::LoadFromFile(kGoldenWorkflowPath);
    ASSERT_TRUE(loaded.ok()) << "missing golden workflow file";
    wf = std::move(loaded).MoveValueUnsafe();
  }

  auto engine = engines::CreateEngine("progressive", /*seed=*/0,
                                      /*threads=*/1, /*reuse_cache=*/false);
  ASSERT_TRUE(engine.ok());
  driver::Settings settings;
  settings.time_requirement = SecondsToMicros(1.0);
  settings.think_time = SecondsToMicros(1.0);
  settings.data_size_label = "50m";
  driver::BenchmarkDriver bench_driver(settings, engine->get(), *catalog);
  ASSERT_TRUE(bench_driver.PrepareEngine().ok());
  std::vector<driver::QueryRecord> records;
  ASSERT_TRUE(bench_driver.RunWorkflow(wf, &records).ok());
  ASSERT_GT(records.size(), 5u);

  const std::string report = MetricsReportJson(records);
  if (regen) {
    std::ofstream out(kGoldenExpectedPath);
    ASSERT_TRUE(out.good());
    out << report;
    return;
  }
  std::ifstream in(kGoldenExpectedPath);
  ASSERT_TRUE(in.good()) << "missing golden expectation file";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(report, expected.str())
      << "metrics drifted from the committed golden report; if the change "
         "is intended, regenerate with IDEBENCH_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace idebench::core
