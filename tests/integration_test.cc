/// \file integration_test.cc
/// End-to-end tests across modules: dataset building, full benchmark
/// runs, determinism, and cross-engine invariants on realistic (small)
/// configurations.

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/idebench.h"
#include "query/sql.h"

namespace idebench::core {
namespace {

DatasetConfig TinyDataset(bool normalized = false) {
  DatasetConfig config;
  config.nominal_rows = 50'000'000;  // 50 M nominal
  config.actual_rows = 20'000;
  config.seed_rows = 10'000;
  config.normalized = normalized;
  config.seed = 99;
  return config;
}

BenchmarkConfig TinyBenchmark(const std::string& engine) {
  BenchmarkConfig config;
  config.engine = engine;
  config.dataset = TinyDataset();
  config.time_requirements_s = {0.5, 3.0};
  config.workflows_per_type = 2;
  config.seed = 5;
  return config;
}

TEST(DatasetTest, BuildDenormalized) {
  auto catalog = BuildFlightsCatalog(TinyDataset(false));
  ASSERT_TRUE(catalog.ok());
  EXPECT_FALSE((*catalog)->is_normalized());
  EXPECT_EQ((*catalog)->fact_table()->num_rows(), 20'000);
  EXPECT_EQ((*catalog)->nominal_rows(), 50'000'000);
}

TEST(DatasetTest, BuildNormalizedStarSchema) {
  auto catalog = BuildFlightsCatalog(TinyDataset(true));
  ASSERT_TRUE(catalog.ok());
  EXPECT_TRUE((*catalog)->is_normalized());
  EXPECT_EQ((*catalog)->tables().size(), 3u);
  EXPECT_EQ((*catalog)->foreign_keys().size(), 2u);
  // The fact table sheds the dimension columns.
  EXPECT_EQ((*catalog)->fact_table()->ColumnByName("carrier"), nullptr);
  EXPECT_NE((*catalog)->GetTable("carriers"), nullptr);
}

TEST(DatasetTest, DefaultActualRowsDerivation) {
  DatasetConfig config = MediumDataset();
  EXPECT_EQ(config.EffectiveActualRows(), 500'000);
  config = LargeDataset();
  EXPECT_EQ(config.EffectiveActualRows(), 600'000);  // capped
  config.actual_rows = 1'000;
  EXPECT_EQ(config.EffectiveActualRows(), 1'000);
}

TEST(DatasetTest, SizeLabels) {
  EXPECT_EQ(DataSizeLabel(100'000'000), "100m");
  EXPECT_EQ(DataSizeLabel(500'000'000), "500m");
  EXPECT_EQ(DataSizeLabel(1'000'000'000), "1b");
}

TEST(IntegrationTest, FullRunProgressiveEngine) {
  auto outcome = RunBenchmark(TinyBenchmark("progressive"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->records.size(), 20u);
  EXPECT_EQ(outcome->summary.size(), 2u);  // one per TR
  EXPECT_GT(outcome->data_preparation_time, 0);
  // The progressive engine almost never violates (restart overhead can
  // cost the very first query at TR=0.5).
  for (const auto& row : outcome->summary) {
    EXPECT_LT(row.tr_violation_rate, 0.1) << row.group;
  }
}

TEST(IntegrationTest, FullRunBlockingEngineViolatesTightTr) {
  auto outcome = RunBenchmark(TinyBenchmark("blocking"));
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->summary.size(), 2u);
  // 50 M nominal at ~5 ns/row = 0.25 s base; complexity pushes many
  // queries past 0.5 s but almost none past 3 s.
  EXPECT_GT(outcome->summary[0].tr_violation_rate,
            outcome->summary[1].tr_violation_rate);
  // Whatever the blocking engine returns is exact.
  for (const auto& r : outcome->records) {
    if (!r.metrics.tr_violated) {
      EXPECT_NEAR(r.metrics.mean_rel_error, 0.0, 1e-9);
      EXPECT_NEAR(r.metrics.missing_bins, 0.0, 1e-9);
    }
  }
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  auto a = RunBenchmark(TinyBenchmark("stratified"));
  auto b = RunBenchmark(TinyBenchmark("stratified"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->records.size(), b->records.size());
  for (size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_EQ(a->records[i].sql, b->records[i].sql);
    EXPECT_DOUBLE_EQ(a->records[i].metrics.mean_rel_error,
                     b->records[i].metrics.mean_rel_error);
    EXPECT_EQ(a->records[i].metrics.tr_violated,
              b->records[i].metrics.tr_violated);
  }
}

TEST(IntegrationTest, NormalizedRunWithJoins) {
  BenchmarkConfig config = TinyBenchmark("blocking");
  config.dataset.normalized = true;
  config.time_requirements_s = {3.0};
  auto outcome = RunBenchmark(config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->records.size(), 10u);
  // At least one query must reference a dimension column and render a
  // JOIN in its SQL.
  bool saw_join = false;
  for (const auto& r : outcome->records) {
    if (r.sql.find(" JOIN ") != std::string::npos) saw_join = true;
  }
  EXPECT_TRUE(saw_join);
}

TEST(IntegrationTest, OnlineEngineFallbackShareIsSubstantial) {
  BenchmarkConfig config = TinyBenchmark("online");
  config.dataset.nominal_rows = 500'000'000;  // make fallback scans slow
  config.time_requirements_s = {1.0};
  auto outcome = RunBenchmark(config);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->summary.size(), 1u);
  // AVG/multi-aggregate queries fall back to blocking scans that cannot
  // meet 1 s at 500 M: a large share of violations, as in the paper.
  EXPECT_GT(outcome->summary[0].tr_violation_rate, 0.3);
  EXPECT_LT(outcome->summary[0].tr_violation_rate, 0.9);
}

TEST(IntegrationTest, StratifiedQualityConstantAcrossTr) {
  BenchmarkConfig config = TinyBenchmark("stratified");
  auto outcome = RunBenchmark(config);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->summary.size(), 2u);
  // Identical sample -> identical quality at both TRs (violation rates
  // may differ).
  EXPECT_NEAR(outcome->summary[0].mean_missing_bins,
              outcome->summary[1].mean_missing_bins, 1e-9);
  EXPECT_NEAR(outcome->summary[0].median_mre, outcome->summary[1].median_mre,
              1e-9);
}

TEST(IntegrationTest, UnknownEngineFails) {
  BenchmarkConfig config = TinyBenchmark("warp_drive");
  EXPECT_FALSE(RunBenchmark(config).ok());
}

}  // namespace
}  // namespace idebench::core
