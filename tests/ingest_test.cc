/// \file ingest_test.cc
/// Streaming-ingest subsystem tests: epoch visibility on tables and
/// column stats, the segmented shuffled-walk prefix property, the
/// Ingestor's all-or-nothing append contract, the session ingest
/// channel (events land at exact virtual instants, deadlines never
/// overshoot), ingest admission control, and the headline acceptance
/// property — a query pinned to watermark W is bit-identical, at every
/// thread count, to the same query against a table frozen at W.

#include "ingest/ingest.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/fault_injector.h"
#include "common/random.h"
#include "datagen/flights_seed.h"
#include "engines/progressive_engine.h"
#include "engines/registry.h"
#include "net/protocol.h"
#include "net/ratekeeper.h"
#include "session/session.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "tests/test_util.h"
#include "workflow/interaction.h"

namespace idebench::ingest {
namespace {

using chaos::FaultInjector;
using chaos::FaultSite;
using chaos::ScopedFaultInjector;

// ---------------------------------------------------------------------
// Fixtures

/// Flights-shaped ingest fixture: the full dataset (base + tail) is
/// generated up front so tests can replay the tail through the ingestor
/// and know exactly which rows each epoch publishes.
struct IngestFixture {
  std::shared_ptr<storage::Catalog> catalog;
  std::shared_ptr<storage::Table> source;  // all rows, incl. unstaged tail
  std::unique_ptr<Ingestor> ingestor;
};

IngestFixture MakeIngestFlights(int64_t base, int64_t total,
                                uint64_t seed = 17,
                                int64_t nominal = 1'000'000) {
  datagen::FlightsSeedConfig config;
  config.rows = total;
  config.seed = seed;
  auto full = datagen::GenerateFlightsSeed(config);
  IDB_CHECK(full.ok());
  IngestFixture f;
  f.source =
      std::make_shared<storage::Table>(std::move(full).MoveValueUnsafe());
  auto fact = std::make_shared<storage::Table>(f.source->name(),
                                               f.source->schema());
  for (int64_t r = 0; r < base; ++r) {
    IDB_CHECK(fact->AppendRowFrom(*f.source, r).ok());
  }
  f.catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(f.catalog->AddTable(fact).ok());
  f.catalog->set_nominal_rows(nominal);
  auto created = Ingestor::Create(f.catalog, total);
  IDB_CHECK(created.ok());
  f.ingestor = std::move(created).MoveValueUnsafe();
  return f;
}

query::QuerySpec CountByCarrier(const storage::Catalog& catalog) {
  query::QuerySpec spec;
  spec.viz_name = "carrier_hist";
  query::BinDimension d;
  d.column = "carrier";
  d.mode = query::BinningMode::kNominal;
  spec.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kCount;
  spec.aggregates.push_back(a);
  IDB_CHECK(spec.ResolveBins(catalog).ok());
  return spec;
}

std::string Canon(const query::QueryResult& r) {
  return net::QueryResultToJson(r).Dump();
}

/// Measures one engine's total virtual run cost for the fixture query on
/// a throwaway twin, so the pinning tests can pick a slice budget that
/// guarantees many slices (and therefore genuinely mid-flight publishes)
/// whatever the engine's cost model says.
Micros TotalRunCost(const std::string& name, uint64_t seed, int threads) {
  IngestFixture f = MakeIngestFlights(1000, 1600);
  auto e = engines::CreateEngine(name, seed, threads, /*reuse_cache=*/true);
  IDB_CHECK(e.ok());
  IDB_CHECK((*e)->Prepare(f.catalog).ok());
  auto h = (*e)->Submit(CountByCarrier(*f.catalog));
  IDB_CHECK(h.ok());
  Micros total = 0;
  for (int i = 0; i < 1024 && !(*e)->IsDone(*h); ++i) {
    total += (*e)->RunFor(*h, 1'000'000'000LL);
  }
  IDB_CHECK((*e)->IsDone(*h));
  return total;
}

// ---------------------------------------------------------------------
// Storage: epoch visibility

TEST(EpochVisibilityTest, StagedRowsInvisibleUntilPublish) {
  auto table = std::make_shared<storage::Table>(testutil::MakeTinyTable());
  EXPECT_FALSE(table->ingest_enabled());
  EXPECT_EQ(table->visible_rows(), 8);
  EXPECT_EQ(table->staged_rows(), 0);

  table->BeginIngest();
  EXPECT_TRUE(table->ingest_enabled());
  ASSERT_EQ(table->epoch_boundaries().size(), 1u);
  EXPECT_EQ(table->epoch_boundaries()[0], 8);
  table->BeginIngest();  // idempotent: epoch 0 is not re-sealed
  ASSERT_EQ(table->epoch_boundaries().size(), 1u);

  table->mutable_column(0).AppendDouble(90.0);
  table->mutable_column(1).AppendString("c");
  table->mutable_column(2).AppendInt(2);
  EXPECT_EQ(table->num_rows(), 9);
  EXPECT_EQ(table->visible_rows(), 8);  // staged, not visible
  EXPECT_EQ(table->staged_rows(), 1);

  EXPECT_EQ(table->PublishEpoch(), 9);
  EXPECT_EQ(table->visible_rows(), 9);
  EXPECT_EQ(table->staged_rows(), 0);
  ASSERT_EQ(table->epoch_boundaries().size(), 2u);

  // A publish with nothing staged does not mint an empty epoch.
  EXPECT_EQ(table->PublishEpoch(), 9);
  EXPECT_EQ(table->epoch_boundaries().size(), 2u);
}

TEST(EpochVisibilityTest, ColumnStatsFrozenAtTheWatermark) {
  auto table = std::make_shared<storage::Table>(testutil::MakeTinyTable());
  table->BeginIngest();
  const storage::Column& value = table->column(0);
  const storage::Column& group = table->column(1);
  EXPECT_DOUBLE_EQ(value.VisibleMax(), 80.0);
  EXPECT_EQ(group.VisibleDictSize(), 2);

  // Staged rows move the live stats but not the visible ones.
  table->mutable_column(0).AppendDouble(500.0);
  table->mutable_column(1).AppendString("zulu");
  table->mutable_column(2).AppendInt(3);
  EXPECT_DOUBLE_EQ(value.Max(), 500.0);
  EXPECT_DOUBLE_EQ(value.VisibleMax(), 80.0);
  EXPECT_EQ(group.VisibleDictSize(), 2);

  table->PublishEpoch();
  EXPECT_DOUBLE_EQ(value.VisibleMax(), 500.0);
  EXPECT_EQ(group.VisibleDictSize(), 3);
}

TEST(EpochVisibilityTest, BinResolutionUsesVisibleStatsOnly) {
  auto fixture = MakeIngestFlights(500, 700);
  const query::QuerySpec before = CountByCarrier(*fixture.catalog);

  // Stage (but do not publish) the tail: resolution must not move.
  ASSERT_TRUE(
      fixture.ingestor->Append(BatchFromTable(*fixture.source, 500, 700))
          .ok());
  query::QuerySpec staged = CountByCarrier(*fixture.catalog);
  EXPECT_EQ(before.bins[0].bin_count, staged.bins[0].bin_count);

  ASSERT_TRUE(fixture.ingestor->Publish().ok());
  query::QuerySpec published = CountByCarrier(*fixture.catalog);
  // The dictionary can only have grown (equal when no new carriers).
  EXPECT_GE(published.bins[0].bin_count, before.bins[0].bin_count);
}

// ---------------------------------------------------------------------
// Sampler: segmented walks

TEST(SegmentedWalkTest, SingleSegmentWalkMatchesLegacyGather) {
  Rng rng(9);
  aqp::ShuffledIndex index(257, &rng);
  std::vector<int64_t> walk(64), gather(64);
  for (int64_t key : {0, 1, 77, 256}) {
    index.GatherWalk(key, 100, 64, walk.data());
    index.Gather(key + 100, 64, gather.data());
    EXPECT_EQ(walk, gather) << "key=" << key;
  }
}

TEST(SegmentedWalkTest, ExtendToPreservesThePrefix) {
  Rng rng_a(9);
  aqp::ShuffledIndex grown(200, &rng_a);
  const std::vector<int64_t> before = grown.permutation();
  Rng epoch_rng(123);
  grown.ExtendTo(300, &epoch_rng);
  ASSERT_EQ(grown.size(), 300);
  ASSERT_EQ(grown.segment_bounds(), (std::vector<int64_t>{200, 300}));

  // Positions below the old watermark are untouched...
  for (int64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(grown.permutation()[static_cast<size_t>(i)],
              before[static_cast<size_t>(i)]);
  }
  // ...so an in-flight walk over [0, 200) reads the same rows as it
  // would have against the unextended index.
  Rng rng_b(9);
  aqp::ShuffledIndex frozen(200, &rng_b);
  std::vector<int64_t> from_grown(200), from_frozen(200);
  grown.GatherWalk(55, 0, 200, from_grown.data());
  frozen.GatherWalk(55, 0, 200, from_frozen.data());
  EXPECT_EQ(from_grown, from_frozen);

  // The new segment is a permutation of exactly the new rows.
  std::vector<int64_t> tail(grown.permutation().begin() + 200,
                            grown.permutation().end());
  std::sort(tail.begin(), tail.end());
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(tail[static_cast<size_t>(i)], 200 + i);
  }
}

// ---------------------------------------------------------------------
// Ingestor

TEST(IngestorTest, CreateRejectsNormalizedCatalogsAndTightCapacity) {
  EXPECT_FALSE(Ingestor::Create(nullptr, 100).ok());

  auto empty = std::make_shared<storage::Catalog>();
  EXPECT_FALSE(Ingestor::Create(empty, 100).ok());

  // Two tables = normalized; delta maintenance only covers denormalized.
  auto normalized = std::make_shared<storage::Catalog>();
  ASSERT_TRUE(normalized
                  ->AddTable(std::make_shared<storage::Table>(
                      testutil::MakeTinyTable()))
                  .ok());
  auto dim = std::make_shared<storage::Table>(testutil::MakeTinyTable());
  // (AddTable keyed by name: rename the second copy.)
  auto second = std::make_shared<storage::Table>("dim", dim->schema());
  ASSERT_TRUE(normalized->AddTable(second).ok());
  EXPECT_FALSE(Ingestor::Create(normalized, 100).ok());

  // Capacity below the existing row count is a configuration error.
  EXPECT_FALSE(Ingestor::Create(testutil::MakeTinyCatalog(), 4).ok());
}

TEST(IngestorTest, AppendIsAllOrNothingAndPublishMovesTheWatermark) {
  auto catalog = testutil::MakeTinyCatalog();
  auto created = Ingestor::Create(catalog, 16);
  ASSERT_TRUE(created.ok());
  auto& ingestor = *created;

  RowBatch good;
  good.rows = {{"90", "a", "0"}, {"100", "b", "1"}};
  ASSERT_TRUE(ingestor->Append(good).ok());
  EXPECT_EQ(ingestor->staged_rows(), 2);
  EXPECT_EQ(ingestor->visible_rows(), 8);

  // A bad row anywhere in the batch rejects the whole batch: nothing
  // from it may stage (a half-applied batch would tear a future epoch).
  RowBatch bad;
  bad.rows = {{"110", "c", "0"}, {"not-a-number", "c", "1"}};
  EXPECT_FALSE(ingestor->Append(bad).ok());
  EXPECT_EQ(ingestor->staged_rows(), 2);

  RowBatch short_row;
  short_row.rows = {{"110", "c"}};
  EXPECT_FALSE(ingestor->Append(short_row).ok());
  EXPECT_EQ(ingestor->staged_rows(), 2);

  auto watermark = ingestor->Publish();
  ASSERT_TRUE(watermark.ok());
  EXPECT_EQ(*watermark, 10);
  EXPECT_EQ(ingestor->visible_rows(), 10);
  EXPECT_EQ(ingestor->staged_rows(), 0);

  const IngestStats& stats = ingestor->stats();
  EXPECT_EQ(stats.rows_staged, 2);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.epochs_published, 1);
  // A rejected batch counts all of its rows, staged or not: 2 from the
  // parse-invalid batch + 1 from the short row.
  EXPECT_EQ(stats.rejected_rows, 3);
}

TEST(IngestorTest, CapacityIsAHardCeiling) {
  auto catalog = testutil::MakeTinyCatalog();
  auto created = Ingestor::Create(catalog, 9);
  ASSERT_TRUE(created.ok());
  auto& ingestor = *created;

  RowBatch two;
  two.rows = {{"90", "a", "0"}, {"100", "b", "1"}};
  const Status st = ingestor->Append(two);  // 8 + 2 > 9
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ingestor->staged_rows(), 0);
  EXPECT_EQ(ingestor->stats().rejected_rows, 2);

  RowBatch one;
  one.rows = {{"90", "a", "0"}};
  EXPECT_TRUE(ingestor->Append(one).ok());
  EXPECT_EQ(ingestor->staged_rows(), 1);
}

TEST(IngestorTest, BatchFromCsvLinesParsesAndRejects) {
  auto parsed = BatchFromCsvLines({"90, a, 0", "100,b,1"}, 3);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2);
  EXPECT_EQ(parsed->rows[0][0], "90");
  EXPECT_EQ(parsed->rows[0][1], "a");

  EXPECT_FALSE(BatchFromCsvLines({"90,a"}, 3).ok());  // field count
}

TEST(IngestorTest, ChaosFaultsSurfaceAsIoErrorsBeforeStaging) {
  auto catalog = testutil::MakeTinyCatalog();
  auto created = Ingestor::Create(catalog, 32);
  ASSERT_TRUE(created.ok());
  auto& ingestor = *created;

  FaultInjector injector(77);
  injector.Arm(FaultSite::kIngestAppend, {1.0, 1});
  injector.Arm(FaultSite::kIngestPublish, {1.0, 1});
  ScopedFaultInjector scope(&injector);

  RowBatch batch;
  batch.rows = {{"90", "a", "0"}};
  const Status append = ingestor->Append(batch);
  EXPECT_EQ(append.code(), StatusCode::kIoError);
  EXPECT_EQ(ingestor->staged_rows(), 0);  // fired before staging
  EXPECT_EQ(ingestor->stats().append_faults, 1);

  // Budget spent: the retry succeeds, then the publish fault fires once.
  ASSERT_TRUE(ingestor->Append(batch).ok());
  auto publish = ingestor->Publish();
  EXPECT_FALSE(publish.ok());
  EXPECT_EQ(ingestor->visible_rows(), 8);  // watermark never moved
  EXPECT_EQ(ingestor->stats().publish_faults, 1);

  auto retried = ingestor->Publish();
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 9);  // staged rows survived the failed publish
}

// ---------------------------------------------------------------------
// Session ingest channel

workflow::Interaction TinyCountInteraction(const std::string& name) {
  query::VizSpec v;
  v.name = name;
  v.source = "tiny";
  query::BinDimension d;
  d.column = "group";
  d.mode = query::BinningMode::kNominal;
  v.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kCount;
  v.aggregates.push_back(a);
  return workflow::Interaction::CreateViz(v);
}

class RecordingSink : public session::ResultSink {
 public:
  void OnUpdate(const session::ProgressiveUpdate& update) override {
    updates.push_back(update);
  }
  std::vector<session::ProgressiveUpdate> updates;
};

TEST(SessionIngestTest, EventsApplyAtTheirInstantAndQueriesStayPinned) {
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  auto created = Ingestor::Create(catalog, 32);
  ASSERT_TRUE(created.ok());
  auto& ingestor = *created;

  engines::ProgressiveEngineConfig config;
  config.query_overhead_us = 0;
  config.restart_overhead_us = 0;
  config.sample_us_per_row = 100'000.0;  // 0.1 s per row
  engines::ProgressiveEngine engine(config);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  session::SessionManagerOptions options;
  options.time_requirement = 2'000'000;
  options.quantum = 200'000;
  session::SessionManager manager(options, &engine, catalog);
  manager.AttachIngest(ingestor.get());

  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());

  // No-ingestor managers refuse the channel.
  {
    session::SessionManager bare(options, &engine, catalog);
    RowBatch b;
    b.rows = {{"90", "a", "0"}};
    EXPECT_FALSE(bare.EnqueueAppend(std::move(b), 0, true).ok());
  }

  // Query submitted at watermark 8; an append-and-publish lands at
  // t=300'000, well inside its flight.
  auto submitted =
      (*sess)->SubmitInteraction(TinyCountInteraction("v0"));
  ASSERT_TRUE(submitted.ok());
  RowBatch batch;
  batch.rows = {{"90", "a", "0"}, {"100", "b", "1"}};
  ASSERT_TRUE(
      manager.EnqueueAppend(std::move(batch), 300'000, /*publish=*/true)
          .ok());
  EXPECT_EQ(manager.pending_ingest_events(), 1);
  ASSERT_TRUE(manager.RunUntilIdle().ok());

  // The publish happened mid-flight...
  EXPECT_EQ(manager.pending_ingest_events(), 0);
  EXPECT_EQ(ingestor->visible_rows(), 10);
  const session::IngestChannelStats& stats = manager.ingest_stats();
  EXPECT_EQ(stats.events_enqueued, 1);
  EXPECT_EQ(stats.batches_applied, 1);
  EXPECT_EQ(stats.rows_applied, 2);
  EXPECT_EQ(stats.publishes, 1);
  EXPECT_EQ(stats.append_failures, 0);

  // ...but the in-flight query stayed pinned at its submit watermark.
  ASSERT_FALSE(sink.updates.empty());
  const session::ProgressiveUpdate& final_update = sink.updates.back();
  ASSERT_TRUE(final_update.final_update);
  EXPECT_TRUE(final_update.completed);
  EXPECT_EQ(final_update.result.rows_processed, 8);

  // A query submitted after the publish sees the new watermark.
  sink.updates.clear();
  auto second = (*sess)->SubmitInteraction(TinyCountInteraction("v1"));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());
  ASSERT_FALSE(sink.updates.empty());
  EXPECT_EQ(sink.updates.back().result.rows_processed, 10);

  // Ingest cost the deadline scheduler nothing.
  EXPECT_EQ(manager.stats().max_deadline_overshoot, 0);
}

TEST(SessionIngestTest, FailedAppendsAreWeatherNotErrors) {
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  auto created = Ingestor::Create(catalog, 9);  // room for only one row
  ASSERT_TRUE(created.ok());

  engines::ProgressiveEngineConfig config;
  config.query_overhead_us = 0;
  config.restart_overhead_us = 0;
  config.sample_us_per_row = 1'000.0;
  engines::ProgressiveEngine engine(config);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  session::SessionManagerOptions options;
  options.time_requirement = 2'000'000;
  options.quantum = 200'000;
  session::SessionManager manager(options, &engine, catalog);
  manager.AttachIngest(created->get());

  RowBatch too_big;
  too_big.rows = {{"90", "a", "0"}, {"95", "b", "1"}};  // 8 + 2 > 9
  ASSERT_TRUE(
      manager.EnqueueAppend(std::move(too_big), 100'000, true).ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());  // failure did not propagate
  EXPECT_EQ(manager.ingest_stats().append_failures, 1);
  EXPECT_EQ(manager.ingest_stats().batches_applied, 0);
  EXPECT_EQ((*created)->visible_rows(), 8);
}

// ---------------------------------------------------------------------
// Ratekeeper: ingest admission

TEST(IngestAdmissionTest, IngestShedsBeforeQueryTrafficDegrades) {
  net::RatekeeperOptions o;
  o.soft_live_limit = 4;
  o.hard_live_limit = 8;
  o.degrade_levels = 4;
  o.tenant_rate = 0.0;
  net::Ratekeeper keeper(o);

  // Healthy: ingest flows.
  EXPECT_TRUE(keeper.AdmitIngest().admitted());
  EXPECT_EQ(keeper.stats().ingest_admitted, 1);

  // The first degrade level (queries still admitted, only budget-shaved)
  // already sheds ingest: it is the lowest-priority traffic class.
  keeper.OnAdmitted(5);  // just past the soft limit
  const net::AdmitDecision query = keeper.Admit("t", 0);
  EXPECT_TRUE(query.admitted());
  EXPECT_GT(query.degrade_level, 0);
  const net::AdmitDecision ingest = keeper.AdmitIngest();
  EXPECT_EQ(ingest.action, net::AdmitAction::kReject);
  EXPECT_STREQ(ingest.reason, "ingest_shed");
  EXPECT_GT(ingest.retry_after, 0);
  EXPECT_EQ(keeper.stats().ingest_shed, 1);

  // Draining the queries reopens ingest.
  keeper.OnFinalized(5);
  EXPECT_TRUE(keeper.AdmitIngest().admitted());
}

// ---------------------------------------------------------------------
// Acceptance: pinned queries vs a frozen table, live vs pre-staged

TEST(IngestPinningTest, InFlightQueryIsBitIdenticalToFrozenTableRun) {
  // One engine races mid-flight publishes, the twin runs against a table
  // frozen at the submit watermark.  Every poll along the way — and the
  // final — must be bit-identical, at one thread and at four.
  for (const std::string& name : engines::BuiltinEngineNames()) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(name + " threads=" + std::to_string(threads));
      IngestFixture live = MakeIngestFlights(1000, 1600);
      IngestFixture frozen = MakeIngestFlights(1000, 1600);

      auto ea = engines::CreateEngine(name, 5, threads, /*reuse_cache=*/true);
      auto eb = engines::CreateEngine(name, 5, threads, /*reuse_cache=*/true);
      ASSERT_TRUE(ea.ok() && eb.ok());
      ASSERT_TRUE((*ea)->Prepare(live.catalog).ok());
      ASSERT_TRUE((*eb)->Prepare(frozen.catalog).ok());

      const query::QuerySpec spec_live = CountByCarrier(*live.catalog);
      const query::QuerySpec spec_frozen = CountByCarrier(*frozen.catalog);
      auto ha = (*ea)->Submit(spec_live);
      auto hb = (*eb)->Submit(spec_frozen);
      ASSERT_TRUE(ha.ok() && hb.ok());

      const Micros budget =
          std::max<Micros>(TotalRunCost(name, 5, threads) / 24, 50);
      int64_t cursor = 1000;
      int publishes_mid_flight = 0;
      for (int slice = 0; slice < 64; ++slice) {
        (*ea)->RunFor(*ha, budget);
        (*eb)->RunFor(*hb, budget);
        auto ra = (*ea)->PollResult(*ha);
        auto rb = (*eb)->PollResult(*hb);
        ASSERT_EQ(ra.ok(), rb.ok());
        if (ra.ok()) {
          ASSERT_EQ(Canon(*ra), Canon(*rb)) << "slice=" << slice;
        }
        const bool done = (*ea)->IsDone(*ha);
        ASSERT_EQ(done, (*eb)->IsDone(*hb));
        // Publish an epoch into the live side between slices.
        if (cursor < 1600) {
          ASSERT_TRUE(live.ingestor
                          ->Append(BatchFromTable(*live.source, cursor,
                                                  cursor + 200))
                          .ok());
          ASSERT_TRUE(live.ingestor->Publish().ok());
          cursor += 200;
          if (!done) ++publishes_mid_flight;
        }
        if (done) break;
      }
      // The race must actually have happened for the test to mean
      // anything: at least one epoch published while the query flew.
      ASSERT_GT(publishes_mid_flight, 0);

      for (int i = 0; i < 64 && !(*ea)->IsDone(*ha); ++i) {
        (*ea)->RunFor(*ha, 10'000'000'000LL);
        (*eb)->RunFor(*hb, 10'000'000'000LL);
      }
      ASSERT_TRUE((*ea)->IsDone(*ha));
      ASSERT_TRUE((*eb)->IsDone(*hb));
      auto fa = (*ea)->PollResult(*ha);
      auto fb = (*eb)->PollResult(*hb);
      ASSERT_TRUE(fa.ok() && fb.ok());
      EXPECT_EQ(Canon(*fa), Canon(*fb));
    }
  }
}

TEST(IngestPinningTest, AppendTimingIsInvisibleOnlyPublishesMatter) {
  // Two runs stage the same tail on different schedules (dribs between
  // query slices vs one bulk append) but publish at the same instant:
  // every query before and after must be bit-identical.
  for (const std::string& name : engines::BuiltinEngineNames()) {
    SCOPED_TRACE(name);
    IngestFixture dribs = MakeIngestFlights(1000, 1400);
    IngestFixture bulk = MakeIngestFlights(1000, 1400);

    auto ea = engines::CreateEngine(name, 11, 2, /*reuse_cache=*/true);
    auto eb = engines::CreateEngine(name, 11, 2, /*reuse_cache=*/true);
    ASSERT_TRUE(ea.ok() && eb.ok());
    ASSERT_TRUE((*ea)->Prepare(dribs.catalog).ok());
    ASSERT_TRUE((*eb)->Prepare(bulk.catalog).ok());

    // First query: flies while one side dribbles appends (unpublished).
    auto ha = (*ea)->Submit(CountByCarrier(*dribs.catalog));
    auto hb = (*eb)->Submit(CountByCarrier(*bulk.catalog));
    ASSERT_TRUE(ha.ok() && hb.ok());
    const Micros budget =
        std::max<Micros>(TotalRunCost(name, 11, 2) / 12, 50);
    int64_t cursor = 1000;
    for (int slice = 0; slice < 24; ++slice) {
      (*ea)->RunFor(*ha, budget);
      (*eb)->RunFor(*hb, budget);
      auto ra = (*ea)->PollResult(*ha);
      auto rb = (*eb)->PollResult(*hb);
      ASSERT_EQ(ra.ok(), rb.ok());
      if (ra.ok()) ASSERT_EQ(Canon(*ra), Canon(*rb)) << "slice=" << slice;
      if (cursor < 1400) {
        ASSERT_TRUE(
            dribs.ingestor
                ->Append(BatchFromTable(*dribs.source, cursor, cursor + 50))
                .ok());
        cursor += 50;
      }
    }

    // Same publish instant: dribs publishes what it staged; bulk appends
    // everything at once and publishes.  Watermarks now agree.
    ASSERT_TRUE(
        bulk.ingestor->Append(BatchFromTable(*bulk.source, 1000, cursor))
            .ok());
    auto wa = dribs.ingestor->Publish();
    auto wb = bulk.ingestor->Publish();
    ASSERT_TRUE(wa.ok() && wb.ok());
    ASSERT_EQ(*wa, *wb);

    // A fresh query on each side must agree bit-for-bit.
    auto ha2 = (*ea)->Submit(CountByCarrier(*dribs.catalog));
    auto hb2 = (*eb)->Submit(CountByCarrier(*bulk.catalog));
    ASSERT_TRUE(ha2.ok() && hb2.ok());
    for (int i = 0; i < 64 && !(*ea)->IsDone(*ha2); ++i) {
      (*ea)->RunFor(*ha2, 10'000'000'000LL);
      (*eb)->RunFor(*hb2, 10'000'000'000LL);
    }
    ASSERT_TRUE((*ea)->IsDone(*ha2));
    ASSERT_TRUE((*eb)->IsDone(*hb2));
    auto fa = (*ea)->PollResult(*ha2);
    auto fb = (*eb)->PollResult(*hb2);
    ASSERT_TRUE(fa.ok() && fb.ok());
    EXPECT_EQ(Canon(*fa), Canon(*fb));
    EXPECT_EQ(fa->rows_processed, fb->rows_processed);
  }
}

}  // namespace
}  // namespace idebench::ingest
