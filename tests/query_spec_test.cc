#include <gtest/gtest.h>

#include "query/aggregate.h"
#include "query/spec.h"
#include "query/sql.h"
#include "tests/test_util.h"

namespace idebench::query {
namespace {

TEST(AggregateTest, NameRoundTrip) {
  for (AggregateType t :
       {AggregateType::kCount, AggregateType::kSum, AggregateType::kAvg,
        AggregateType::kMin, AggregateType::kMax}) {
    auto parsed = AggregateTypeFromName(AggregateTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(AggregateTypeFromName("median").ok());
  // Parsing is case-insensitive.
  auto upper = AggregateTypeFromName("COUNT");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(*upper, AggregateType::kCount);
}

TEST(AggregateTest, SqlRendering) {
  AggregateSpec count;
  count.type = AggregateType::kCount;
  EXPECT_EQ(count.ToSql(), "COUNT(*)");
  AggregateSpec avg;
  avg.type = AggregateType::kAvg;
  avg.column = "dep_delay";
  EXPECT_EQ(avg.ToSql(), "AVG(dep_delay)");
}

TEST(AggregateTest, JsonRoundTripAndValidation) {
  AggregateSpec sum;
  sum.type = AggregateType::kSum;
  sum.column = "distance";
  auto parsed = AggregateSpec::FromJson(sum.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, sum);

  JsonValue missing_column = JsonValue::Object();
  missing_column.Set("type", "avg");
  EXPECT_FALSE(AggregateSpec::FromJson(missing_column).ok());
}

TEST(VizSpecTest, ValidateRules) {
  VizSpec v;
  EXPECT_FALSE(v.Validate().ok());  // no name
  v.name = "viz_0";
  EXPECT_FALSE(v.Validate().ok());  // no source
  v.source = "flights";
  EXPECT_FALSE(v.Validate().ok());  // no bins
  BinDimension d;
  d.column = "x";
  v.bins.push_back(d);
  EXPECT_FALSE(v.Validate().ok());  // no aggregates
  AggregateSpec a;
  a.type = AggregateType::kCount;
  v.aggregates.push_back(a);
  EXPECT_TRUE(v.Validate().ok());
  v.bins.push_back(d);
  v.bins.push_back(d);
  EXPECT_FALSE(v.Validate().ok());  // 3 dims
}

TEST(VizSpecTest, JsonRoundTrip) {
  VizSpec v;
  v.name = "viz_1";
  v.source = "flights";
  BinDimension d;
  d.column = "dep_delay";
  d.mode = BinningMode::kFixedCount;
  d.requested_bins = 25;
  v.bins.push_back(d);
  AggregateSpec a;
  a.type = AggregateType::kAvg;
  a.column = "arr_delay";
  v.aggregates.push_back(a);
  expr::Predicate p;
  p.column = "carrier";
  p.op = expr::CompareOp::kIn;
  p.set_values = {2.0};
  p.string_values = {"AC"};
  v.filter.And(p);

  auto parsed = VizSpec::FromJson(v.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, v.name);
  EXPECT_EQ(parsed->bins.size(), 1u);
  EXPECT_EQ(parsed->bins[0], v.bins[0]);
  EXPECT_EQ(parsed->aggregates[0], v.aggregates[0]);
  EXPECT_EQ(parsed->filter, v.filter);
}

TEST(QuerySpecTest, ResolveBinsAgainstCatalog) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeAvgValueSpec(*catalog, 4);
  EXPECT_TRUE(spec.bins[0].resolved);
  EXPECT_EQ(spec.MaxBinCount(), 4);
  EXPECT_FALSE(spec.two_dimensional());
}

TEST(QuerySpecTest, MaxBinCountIsProductFor2D) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d1;
  d1.column = "value";
  d1.mode = BinningMode::kFixedCount;
  d1.requested_bins = 4;
  BinDimension d2;
  d2.column = "group";
  d2.mode = BinningMode::kNominal;
  spec.bins = {d1, d2};
  AggregateSpec a;
  a.type = AggregateType::kCount;
  spec.aggregates = {a};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  EXPECT_TRUE(spec.two_dimensional());
  EXPECT_EQ(spec.MaxBinCount(), 8);  // 4 x 2
}

TEST(SqlGenTest, SingleTableGroupBy) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  const std::string sql = GenerateSql(spec, *catalog);
  EXPECT_EQ(sql,
            "SELECT group AS bin_group, COUNT(*) FROM tiny GROUP BY "
            "bin_group");
}

TEST(SqlGenTest, FilterRendersWhereClause) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  expr::Predicate p;
  p.column = "value";
  p.op = expr::CompareOp::kRange;
  p.lo = 20;
  p.hi = 60;
  spec.filter.And(p);
  const std::string sql = GenerateSql(spec, *catalog);
  EXPECT_NE(sql.find("WHERE (value >= 20 AND value < 60)"), std::string::npos);
}

TEST(SqlGenTest, QuantitativeBinningUsesFloorExpression) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeAvgValueSpec(*catalog, 4);
  const std::string sql = GenerateSql(spec, *catalog);
  EXPECT_NE(sql.find("FLOOR((value"), std::string::npos);
  EXPECT_NE(sql.find("AVG(value)"), std::string::npos);
}

}  // namespace
}  // namespace idebench::query
