/// \file workflow_fuzz_test.cc
/// Differential workflow fuzz: sweep the workflow generator across seeds
/// and replay every generated workflow on each engine with the
/// cross-interaction reuse cache on vs. off, at 1 and 4 execution
/// threads, asserting bit-identical `QueryResult`s throughout.  This is
/// the transparency proof for exec/reuse_cache.h — reuse may only
/// displace physical work, never change an answer — and the regression
/// harness future execution-pipeline changes run under (see
/// workflow_harness.h).
///
/// The fixture catalog stays below exec::kMorselRows so every feed chunk
/// aggregates sequentially: with larger inputs, real-valued sums across
/// differently-chunked morsel merges may regroup in the last ulp (the
/// documented exec/parallel.h caveat), which would make exact ==
/// comparison too strict without weakening the test where it matters.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "datagen/flights_seed.h"
#include "engines/registry.h"
#include "tests/workflow_harness.h"
#include "workflow/generator.h"

namespace idebench {
namespace {

constexpr int kSeeds = 20;
constexpr int kThreadCounts[] = {1, 4};

/// Shared small flights catalog (4000 rows, denormalized — the layout
/// all four engines support).
std::shared_ptr<storage::Catalog> FuzzCatalog() {
  static const std::shared_ptr<storage::Catalog> catalog = [] {
    datagen::FlightsSeedConfig config;
    config.rows = 4000;
    config.seed = 11;
    auto table = datagen::GenerateFlightsSeed(config);
    IDB_CHECK(table.ok());
    auto c = std::make_shared<storage::Catalog>();
    IDB_CHECK(c->AddTable(std::make_shared<storage::Table>(
                              std::move(table).MoveValueUnsafe()))
                  .ok());
    return c;
  }();
  return catalog;
}

/// One generated workflow per seed (mixed type: covers create/filter/
/// brush/link/discard segments of all four browsing patterns).
const workflow::Workflow& FuzzWorkflow(int seed) {
  static std::vector<workflow::Workflow>* workflows = [] {
    auto* out = new std::vector<workflow::Workflow>();
    for (int s = 0; s < kSeeds; ++s) {
      workflow::GeneratorConfig config;
      workflow::WorkflowGenerator generator(FuzzCatalog()->fact_table(),
                                            config,
                                            static_cast<uint64_t>(s) + 1);
      auto wf = generator.Generate(workflow::WorkflowType::kMixed,
                                   "fuzz_" + std::to_string(s));
      IDB_CHECK(wf.ok());
      out->push_back(std::move(wf).MoveValueUnsafe());
    }
    return out;
  }();
  return (*workflows)[static_cast<size_t>(seed)];
}

/// Replays workflow `seed` on a fresh engine; returns the outcomes and
/// (optionally) the engine's reuse telemetry.
std::vector<testharness::QueryOutcome> Replay(
    const std::string& engine_name, int seed, int threads, bool reuse,
    metrics::ReuseCacheStats* stats = nullptr) {
  auto engine = engines::CreateEngine(engine_name, /*seed=*/0, threads, reuse);
  IDB_CHECK(engine.ok());
  auto prepared = (*engine)->Prepare(FuzzCatalog());
  IDB_CHECK(prepared.ok());
  auto outcomes = testharness::RunWorkflowOnEngine(
      engine->get(), *FuzzCatalog(), FuzzWorkflow(seed));
  IDB_CHECK(outcomes.ok());
  if (stats != nullptr) *stats += (*engine)->reuse_cache_stats();
  return std::move(outcomes).MoveValueUnsafe();
}

/// The differential sweep for one engine: reuse on vs. off must be
/// bit-identical for every seed and thread count, and across all seeds
/// the cache must actually have served work (otherwise the test proves
/// nothing).
void RunFuzz(const std::string& engine_name) {
  metrics::ReuseCacheStats total;
  for (int seed = 0; seed < kSeeds; ++seed) {
    for (int threads : kThreadCounts) {
      const std::string label = engine_name + ", seed " +
                                std::to_string(seed) + ", threads " +
                                std::to_string(threads);
      auto off = Replay(engine_name, seed, threads, /*reuse=*/false);
      auto on = Replay(engine_name, seed, threads, /*reuse=*/true, &total);
      testharness::ExpectOutcomesBitIdentical(off, on, label);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GT(total.equal_hits + total.refinement_hits, 0)
      << engine_name << ": the sweep never hit the cache";
  EXPECT_GT(total.rows_served, 0)
      << engine_name << ": hits never displaced physical work";
}

TEST(WorkflowFuzzTest, BlockingReuseOnOffBitIdentical) { RunFuzz("blocking"); }

TEST(WorkflowFuzzTest, OnlineReuseOnOffBitIdentical) { RunFuzz("online"); }

TEST(WorkflowFuzzTest, ProgressiveReuseOnOffBitIdentical) {
  RunFuzz("progressive");
}

TEST(WorkflowFuzzTest, StratifiedReuseOnOffBitIdentical) {
  RunFuzz("stratified");
}

/// Reuse must also compose with thread-count invariance: the same
/// workflow with the cache on yields bit-identical results at 1 and 4
/// threads (each feed chunk of the fixture spans a single morsel, so the
/// parallel path's determinism contract gives exact equality).
TEST(WorkflowFuzzTest, ReuseOnThreadInvariant) {
  for (const char* engine : {"blocking", "online", "progressive",
                             "stratified"}) {
    for (int seed = 0; seed < 5; ++seed) {
      auto t1 = Replay(engine, seed, /*threads=*/1, /*reuse=*/true);
      auto t4 = Replay(engine, seed, /*threads=*/4, /*reuse=*/true);
      testharness::ExpectOutcomesBitIdentical(
          t1, t4,
          std::string(engine) + " seed " + std::to_string(seed) +
              ", threads 1 vs 4");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace idebench
