/// \file workflow_fuzz_test.cc
/// Differential workflow fuzz: sweep the workflow generator across seeds
/// and replay every generated workflow on each engine with the
/// cross-interaction reuse cache on vs. off, at 1 and 4 execution
/// threads, asserting bit-identical `QueryResult`s throughout.  This is
/// the transparency proof for exec/reuse_cache.h — reuse may only
/// displace physical work, never change an answer — and the regression
/// harness future execution-pipeline changes run under (see
/// workflow_harness.h).
///
/// The fixture catalog stays below exec::kMorselRows so every feed chunk
/// aggregates sequentially: with larger inputs, real-valued sums across
/// differently-chunked morsel merges may regroup in the last ulp (the
/// documented exec/parallel.h caveat), which would make exact ==
/// comparison too strict without weakening the test where it matters.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "datagen/flights_seed.h"
#include "engines/registry.h"
#include "ingest/ingest.h"
#include "storage/segment.h"
#include "tests/workflow_harness.h"
#include "workflow/generator.h"

namespace idebench {
namespace {

constexpr int kSeeds = 20;
constexpr int kThreadCounts[] = {1, 4};

/// Shared small flights catalog (4000 rows, denormalized — the layout
/// all four engines support).
std::shared_ptr<storage::Catalog> FuzzCatalog() {
  static const std::shared_ptr<storage::Catalog> catalog = [] {
    datagen::FlightsSeedConfig config;
    config.rows = 4000;
    config.seed = 11;
    auto table = datagen::GenerateFlightsSeed(config);
    IDB_CHECK(table.ok());
    auto c = std::make_shared<storage::Catalog>();
    IDB_CHECK(c->AddTable(std::make_shared<storage::Table>(
                              std::move(table).MoveValueUnsafe()))
                  .ok());
    return c;
  }();
  return catalog;
}

/// One generated workflow per seed (mixed type: covers create/filter/
/// brush/link/discard segments of all four browsing patterns).
const workflow::Workflow& FuzzWorkflow(int seed) {
  static std::vector<workflow::Workflow>* workflows = [] {
    auto* out = new std::vector<workflow::Workflow>();
    for (int s = 0; s < kSeeds; ++s) {
      workflow::GeneratorConfig config;
      workflow::WorkflowGenerator generator(FuzzCatalog()->fact_table(),
                                            config,
                                            static_cast<uint64_t>(s) + 1);
      auto wf = generator.Generate(workflow::WorkflowType::kMixed,
                                   "fuzz_" + std::to_string(s));
      IDB_CHECK(wf.ok());
      out->push_back(std::move(wf).MoveValueUnsafe());
    }
    return out;
  }();
  return (*workflows)[static_cast<size_t>(seed)];
}

/// FuzzCatalog packed into segment files and decoded back
/// (storage/segment.h) — byte-for-byte interchangeable with the original
/// by the decode contract, which the segment sweep below proves through
/// all four engines.
std::shared_ptr<storage::Catalog> SegmentCatalog() {
  static const std::shared_ptr<storage::Catalog> catalog = [] {
    const std::string dir =
        std::string(::testing::TempDir()) + "/fuzz_segment_cache";
    IDB_CHECK(storage::WriteCatalogSegments(*FuzzCatalog(), dir).ok());
    auto loaded = storage::LoadCatalogSegments(dir);
    IDB_CHECK(loaded.ok());
    return std::make_shared<storage::Catalog>(
        std::move(loaded).MoveValueUnsafe());
  }();
  return catalog;
}

/// Replays workflow `seed` on a fresh engine over `catalog`; returns the
/// outcomes and (optionally) the engine's reuse telemetry.
std::vector<testharness::QueryOutcome> ReplayOn(
    const std::shared_ptr<storage::Catalog>& catalog,
    const std::string& engine_name, int seed, int threads, bool reuse,
    metrics::ReuseCacheStats* stats = nullptr) {
  auto engine = engines::CreateEngine(engine_name, /*seed=*/0, threads, reuse);
  IDB_CHECK(engine.ok());
  auto prepared = (*engine)->Prepare(catalog);
  IDB_CHECK(prepared.ok());
  auto outcomes = testharness::RunWorkflowOnEngine(engine->get(), *catalog,
                                                   FuzzWorkflow(seed));
  IDB_CHECK(outcomes.ok());
  if (stats != nullptr) *stats += (*engine)->reuse_cache_stats();
  return std::move(outcomes).MoveValueUnsafe();
}

std::vector<testharness::QueryOutcome> Replay(
    const std::string& engine_name, int seed, int threads, bool reuse,
    metrics::ReuseCacheStats* stats = nullptr) {
  return ReplayOn(FuzzCatalog(), engine_name, seed, threads, reuse, stats);
}

/// The differential sweep for one engine: reuse on vs. off must be
/// bit-identical for every seed and thread count, and across all seeds
/// the cache must actually have served work (otherwise the test proves
/// nothing).
void RunFuzz(const std::string& engine_name) {
  metrics::ReuseCacheStats total;
  for (int seed = 0; seed < kSeeds; ++seed) {
    for (int threads : kThreadCounts) {
      const std::string label = engine_name + ", seed " +
                                std::to_string(seed) + ", threads " +
                                std::to_string(threads);
      auto off = Replay(engine_name, seed, threads, /*reuse=*/false);
      auto on = Replay(engine_name, seed, threads, /*reuse=*/true, &total);
      testharness::ExpectOutcomesBitIdentical(off, on, label);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GT(total.equal_hits + total.refinement_hits, 0)
      << engine_name << ": the sweep never hit the cache";
  EXPECT_GT(total.rows_served, 0)
      << engine_name << ": hits never displaced physical work";
}

/// The segment sweep: every engine, seed and thread count must produce
/// bit-identical outcomes whether the catalog came straight from the
/// generator or through a segment-file round trip — the load-path half
/// of the tiered-storage bit-identity contract (plus a reuse-off
/// sub-sweep so the cache can't mask a divergence).
void RunSegmentFuzz(const std::string& engine_name) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    for (int threads : kThreadCounts) {
      const std::string label = engine_name + " on segments, seed " +
                                std::to_string(seed) + ", threads " +
                                std::to_string(threads);
      auto flat = Replay(engine_name, seed, threads, /*reuse=*/true);
      auto seg = ReplayOn(SegmentCatalog(), engine_name, seed, threads,
                          /*reuse=*/true);
      testharness::ExpectOutcomesBitIdentical(flat, seg, label);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  for (int seed = 0; seed < 5; ++seed) {
    const std::string label =
        engine_name + " on segments, reuse off, seed " + std::to_string(seed);
    auto flat = Replay(engine_name, seed, /*threads=*/1, /*reuse=*/false);
    auto seg = ReplayOn(SegmentCatalog(), engine_name, seed, /*threads=*/1,
                        /*reuse=*/false);
    testharness::ExpectOutcomesBitIdentical(flat, seg, label);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(WorkflowFuzzTest, BlockingSegmentCatalogBitIdentical) {
  RunSegmentFuzz("blocking");
}

TEST(WorkflowFuzzTest, OnlineSegmentCatalogBitIdentical) {
  RunSegmentFuzz("online");
}

TEST(WorkflowFuzzTest, ProgressiveSegmentCatalogBitIdentical) {
  RunSegmentFuzz("progressive");
}

TEST(WorkflowFuzzTest, StratifiedSegmentCatalogBitIdentical) {
  RunSegmentFuzz("stratified");
}

TEST(WorkflowFuzzTest, BlockingReuseOnOffBitIdentical) { RunFuzz("blocking"); }

TEST(WorkflowFuzzTest, OnlineReuseOnOffBitIdentical) { RunFuzz("online"); }

TEST(WorkflowFuzzTest, ProgressiveReuseOnOffBitIdentical) {
  RunFuzz("progressive");
}

TEST(WorkflowFuzzTest, StratifiedReuseOnOffBitIdentical) {
  RunFuzz("stratified");
}

// --- Session serving API vs the legacy single-client pull path ------------

/// Budgets cycled across seeds so the sweep exercises full completions,
/// partial walks and overhead-starved queries alike (one budget per seed:
/// the session manager's time requirement is fixed per run).
constexpr Micros kSessionBudgets[] = {3'000'000, 50'000, 400'000};

/// Replays workflow `seed` through the seed driver's batched pull loop
/// (submit-all, run-each-to-budget, poll-all, cancel-all per interaction).
std::vector<testharness::QueryOutcome> ReplayBatched(
    const std::string& engine_name, int seed, int threads, bool reuse) {
  auto engine = engines::CreateEngine(engine_name, /*seed=*/0, threads, reuse);
  IDB_CHECK(engine.ok());
  IDB_CHECK((*engine)->Prepare(FuzzCatalog()).ok());
  testharness::BatchedHarnessOptions options;
  options.budget = kSessionBudgets[seed % 3];
  auto outcomes = testharness::RunWorkflowOnEngineBatched(
      engine->get(), *FuzzCatalog(), FuzzWorkflow(seed), options);
  IDB_CHECK(outcomes.ok());
  return std::move(outcomes).MoveValueUnsafe();
}

/// Replays workflow `seed` through the push-based session API.
std::vector<testharness::QueryOutcome> ReplaySession(
    const std::string& engine_name, int seed, int threads, bool reuse,
    Micros quantum = 0) {
  auto engine = engines::CreateEngine(engine_name, /*seed=*/0, threads, reuse);
  IDB_CHECK(engine.ok());
  IDB_CHECK((*engine)->Prepare(FuzzCatalog()).ok());
  testharness::SessionHarnessOptions options;
  options.budget = kSessionBudgets[seed % 3];
  options.quantum = quantum;
  auto outcomes = testharness::RunWorkflowThroughSession(
      engine->get(), FuzzCatalog(), FuzzWorkflow(seed), options);
  IDB_CHECK(outcomes.ok());
  return std::move(outcomes).MoveValueUnsafe();
}

/// The seed-parity sweep for one engine: the session scheduler in
/// single-session mode must deliver bit-identical QueryResults to the
/// legacy pull loop for every seed, thread count and reuse setting —
/// the transparency proof of the serving-API redesign.
void RunSessionFuzz(const std::string& engine_name) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    for (int threads : kThreadCounts) {
      for (bool reuse : {false, true}) {
        const std::string label =
            engine_name + " via session, seed " + std::to_string(seed) +
            ", threads " + std::to_string(threads) +
            (reuse ? ", reuse on" : ", reuse off");
        auto legacy = ReplayBatched(engine_name, seed, threads, reuse);
        auto pushed = ReplaySession(engine_name, seed, threads, reuse);
        testharness::ExpectOutcomesBitIdentical(legacy, pushed, label);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(SessionFuzzTest, BlockingMatchesLegacyClient) {
  RunSessionFuzz("blocking");
}

TEST(SessionFuzzTest, OnlineMatchesLegacyClient) { RunSessionFuzz("online"); }

TEST(SessionFuzzTest, ProgressiveMatchesLegacyClient) {
  RunSessionFuzz("progressive");
}

TEST(SessionFuzzTest, StratifiedMatchesLegacyClient) {
  RunSessionFuzz("stratified");
}

/// The time-sliced scheduler path (quantum > 0): slicing may legitimately
/// regroup the engines' sub-row credit arithmetic relative to one-shot
/// grants, so no bit-parity with the batched reference is claimed —
/// instead every run must be deterministic (two identical sliced runs
/// agree bit for bit), structurally complete (exactly one final update
/// per query the batched reference submits, same order/viz/support), and
/// partial polling must never corrupt an answer.
TEST(SessionFuzzTest, QuantumSlicedSchedulingDeterministicAndComplete) {
  constexpr Micros kQuantum = 64'000;  // deliberately no divisor of budgets
  for (const char* engine :
       {"blocking", "online", "progressive", "stratified"}) {
    for (int seed : {0, 1, 2, 3, 4, 5}) {
      const std::string label = std::string(engine) + ", sliced, seed " +
                                std::to_string(seed);
      auto batched = ReplayBatched(engine, seed, /*threads=*/1,
                                   /*reuse=*/false);
      auto sliced = ReplaySession(engine, seed, /*threads=*/1,
                                  /*reuse=*/false, kQuantum);
      auto again = ReplaySession(engine, seed, /*threads=*/1,
                                 /*reuse=*/false, kQuantum);
      testharness::ExpectOutcomesBitIdentical(sliced, again,
                                              label + " (determinism)");
      ASSERT_EQ(sliced.size(), batched.size()) << label;
      for (size_t i = 0; i < sliced.size(); ++i) {
        EXPECT_EQ(sliced[i].interaction_id, batched[i].interaction_id)
            << label << " query " << i;
        EXPECT_EQ(sliced[i].viz, batched[i].viz) << label << " query " << i;
        EXPECT_EQ(sliced[i].unsupported, batched[i].unsupported)
            << label << " query " << i;
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

/// A multi-session interleaved run is a pure function of (workflows,
/// options): the pushed update stream is bit-identical run-to-run and at
/// every physical thread count.
struct UpdateTrace {
  int64_t session_id;
  int64_t query_id;
  std::string viz;
  bool final_update;
  bool cancelled;
  bool unsupported;
  Micros virtual_time;
  bool available;
  int64_t rows_processed;
  double total_estimate;
};

std::vector<UpdateTrace> ReplayMultiSession(const std::string& engine_name,
                                            int threads, int sessions) {
  class TraceSink : public session::ResultSink {
   public:
    explicit TraceSink(std::vector<UpdateTrace>* out) : out_(out) {}
    void OnUpdate(const session::ProgressiveUpdate& u) override {
      out_->push_back({u.session_id, u.query_id, u.viz_name, u.final_update,
                       u.cancelled, u.unsupported, u.virtual_time,
                       u.result.available, u.result.rows_processed,
                       u.result.TotalEstimate()});
    }
    std::vector<UpdateTrace>* out_;
  };

  auto engine =
      engines::CreateEngine(engine_name, /*seed=*/0, threads, /*reuse=*/true);
  IDB_CHECK(engine.ok());
  IDB_CHECK((*engine)->Prepare(FuzzCatalog()).ok());

  session::SessionManagerOptions mopts;
  mopts.time_requirement = 400'000;
  mopts.quantum = 50'000;
  mopts.contention_penalty = 0.25;
  session::SessionManager manager(mopts, engine->get(), FuzzCatalog());

  std::vector<UpdateTrace> trace;
  TraceSink sink(&trace);
  std::vector<session::SessionReplay> runs;
  for (int s = 0; s < sessions; ++s) {
    auto created = manager.CreateSession(&sink);
    IDB_CHECK(created.ok());
    runs.push_back({*created, &FuzzWorkflow(s)});
  }
  IDB_CHECK(session::ReplaySessionsToCompletion(&manager, runs,
                                                /*think_time=*/100'000)
                .ok());
  const session::SchedulerStats stats = manager.stats();
  // Fairness guarantee: nothing ever ran past its time requirement.
  IDB_CHECK(stats.max_deadline_overshoot == 0);
  return trace;
}

TEST(SessionFuzzTest, MultiSessionDeterministicAcrossRunsAndThreads) {
  for (const char* engine : {"blocking", "progressive"}) {
    const std::vector<UpdateTrace> reference =
        ReplayMultiSession(engine, /*threads=*/1, /*sessions=*/3);
    EXPECT_GT(reference.size(), 0u) << engine;
    for (int threads : {1, 4}) {
      const std::vector<UpdateTrace> repeat =
          ReplayMultiSession(engine, threads, /*sessions=*/3);
      ASSERT_EQ(reference.size(), repeat.size())
          << engine << " threads " << threads;
      for (size_t i = 0; i < reference.size(); ++i) {
        const UpdateTrace& a = reference[i];
        const UpdateTrace& b = repeat[i];
        const std::string label = std::string(engine) + " threads " +
                                  std::to_string(threads) + " update " +
                                  std::to_string(i);
        EXPECT_EQ(a.session_id, b.session_id) << label;
        EXPECT_EQ(a.query_id, b.query_id) << label;
        EXPECT_EQ(a.viz, b.viz) << label;
        EXPECT_EQ(a.final_update, b.final_update) << label;
        EXPECT_EQ(a.cancelled, b.cancelled) << label;
        EXPECT_EQ(a.unsupported, b.unsupported) << label;
        EXPECT_EQ(a.virtual_time, b.virtual_time) << label;
        EXPECT_EQ(a.available, b.available) << label;
        EXPECT_EQ(a.rows_processed, b.rows_processed) << label;
        EXPECT_EQ(a.total_estimate, b.total_estimate) << label;
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// --- Ingest-interleaved sweep ----------------------------------------------
//
// Streaming ingest races the workflow: epochs are appended and published
// at interaction boundaries while queries (pinned to their submit-time
// watermark) are still exploring.  Every cell of the sweep must be
// bit-identical to the reference replay because
//  * append timing is invisible — only publish instants matter, so the
//    live variant (rows dribbled across two boundaries) matches the
//    pre-loaded variant (each epoch loaded in one shot at its publish
//    boundary);
//  * visibility is epoch-atomic and walks are a pure function of the
//    epoch history, so thread count doesn't matter; and
//  * reuse-cache delta maintenance only displaces physical work — a
//    snapshot stored at an older watermark plus a delta scan (or a
//    candidate replay when a publish re-shaped the bin tables) must give
//    the same answer as rescanning from zero.

constexpr int64_t kIngestBase = 4000;
constexpr int64_t kIngestEpochRows = 100;
constexpr int kIngestEpochs = 4;

/// The full generation: base rows plus every epoch's tail rows.
std::shared_ptr<storage::Table> IngestSourceTable() {
  static const std::shared_ptr<storage::Table> source = [] {
    datagen::FlightsSeedConfig config;
    config.rows = kIngestBase + kIngestEpochs * kIngestEpochRows;
    config.seed = 11;
    auto table = datagen::GenerateFlightsSeed(config);
    IDB_CHECK(table.ok());
    return std::make_shared<storage::Table>(
        std::move(table).MoveValueUnsafe());
  }();
  return source;
}

/// A fresh pre-ingest fact table (each replay mutates its own copy).
std::shared_ptr<storage::Table> IngestBaseFact() {
  auto source = IngestSourceTable();
  auto fact =
      std::make_shared<storage::Table>(source->name(), source->schema());
  for (int64_t r = 0; r < kIngestBase; ++r) {
    IDB_CHECK(fact->AppendRowFrom(*source, r).ok());
  }
  return fact;
}

/// Workflows for the ingest sweep, generated once from a pristine copy of
/// the base table (generation reads column stats, which ingest moves).
const workflow::Workflow& IngestWorkflow(int seed) {
  static std::vector<workflow::Workflow>* workflows = [] {
    auto* out = new std::vector<workflow::Workflow>();
    auto base = IngestBaseFact();
    for (int s = 0; s < kSeeds; ++s) {
      workflow::GeneratorConfig config;
      workflow::WorkflowGenerator generator(
          base.get(), config, static_cast<uint64_t>(s) + 101);
      auto wf = generator.Generate(workflow::WorkflowType::kMixed,
                                   "ingest_fuzz_" + std::to_string(s));
      IDB_CHECK(wf.ok());
      out->push_back(std::move(wf).MoveValueUnsafe());
    }
    return out;
  }();
  return (*workflows)[static_cast<size_t>(seed)];
}

/// RunWorkflowOnEngine with an ingest hook: `boundary(b)` runs after
/// interaction `b` completes (queries polled, think time charged), which
/// is where a serving deployment folds in arrived data between bursts.
Result<std::vector<testharness::QueryOutcome>> RunWorkflowWithIngest(
    engines::Engine* engine, const storage::Catalog& catalog,
    const workflow::Workflow& wf,
    const std::function<Status(int64_t)>& boundary) {
  std::vector<testharness::QueryOutcome> outcomes;
  engine->WorkflowStart();
  int64_t query_index = 0;
  int64_t boundary_index = 0;
  const testharness::HarnessOptions options;
  IDB_RETURN_NOT_OK(driver::ForEachInteraction(
      catalog, wf,
      [&](const workflow::Interaction& interaction, int64_t interaction_id,
          std::vector<query::QuerySpec>& specs) -> Status {
        if (interaction.type == workflow::InteractionType::kLink) {
          engine->LinkVizs(interaction.link_from, interaction.link_to);
        } else if (interaction.type == workflow::InteractionType::kDiscard) {
          engine->DiscardViz(interaction.viz_name);
        }
        for (query::QuerySpec& spec : specs) {
          testharness::QueryOutcome outcome;
          outcome.interaction_id = interaction_id;
          outcome.viz = spec.viz_name;
          auto submit = engine->Submit(spec);
          const Micros budget = options.budgets[static_cast<size_t>(
              query_index % static_cast<int64_t>(options.budgets.size()))];
          ++query_index;
          if (!submit.ok()) {
            if (submit.status().code() != StatusCode::kNotImplemented) {
              return submit.status();
            }
            outcome.unsupported = true;
            outcomes.push_back(std::move(outcome));
            continue;
          }
          const engines::QueryHandle handle = *submit;
          Micros consumed = 0;
          while (consumed < budget && !engine->IsDone(handle)) {
            const Micros step = engine->RunFor(handle, budget - consumed);
            if (step <= 0) break;
            consumed += step;
          }
          IDB_ASSIGN_OR_RETURN(outcome.result, engine->PollResult(handle));
          engine->Cancel(handle);
          outcomes.push_back(std::move(outcome));
        }
        engine->OnThink(options.think_time);
        return boundary(boundary_index++);
      }));
  engine->WorkflowEnd();
  return outcomes;
}

/// One replay cell.  Epoch `e` publishes at boundary `2e + 1`.  The live
/// variant stages half the epoch one boundary early (racing the previous
/// interaction's unpublished-row invisibility); the pre-loaded variant
/// stages the whole epoch at its publish boundary.
std::vector<testharness::QueryOutcome> ReplayIngest(
    const std::string& engine_name, int seed, int threads, bool reuse,
    bool preloaded) {
  auto source = IngestSourceTable();
  auto catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(catalog->AddTable(IngestBaseFact()).ok());
  auto created = ingest::Ingestor::Create(catalog, source->num_rows());
  IDB_CHECK(created.ok());
  auto ingestor = std::move(*created);

  auto engine = engines::CreateEngine(engine_name, /*seed=*/0, threads, reuse);
  IDB_CHECK(engine.ok());
  IDB_CHECK((*engine)->Prepare(catalog).ok());

  auto boundary = [&](int64_t b) -> Status {
    for (int e = 0; e < kIngestEpochs; ++e) {
      const int64_t lo = kIngestBase + e * kIngestEpochRows;
      const int64_t mid = lo + kIngestEpochRows / 2;
      const int64_t hi = lo + kIngestEpochRows;
      const int64_t publish_at = 2 * e + 1;
      if (!preloaded && b == publish_at - 1) {
        IDB_RETURN_NOT_OK(
            ingestor->Append(ingest::BatchFromTable(*source, lo, mid)));
      }
      if (b == publish_at) {
        IDB_RETURN_NOT_OK(ingestor->Append(
            ingest::BatchFromTable(*source, preloaded ? lo : mid, hi)));
        IDB_ASSIGN_OR_RETURN(const int64_t watermark, ingestor->Publish());
        (void)watermark;
      }
    }
    return Status::OK();
  };
  auto outcomes = RunWorkflowWithIngest(engine->get(), *catalog,
                                        IngestWorkflow(seed), boundary);
  IDB_CHECK(outcomes.ok());
  // The sweep proves nothing unless data actually arrived mid-workflow.
  EXPECT_GT(ingestor->stats().epochs_published, 0)
      << engine_name << " seed " << seed;
  return std::move(outcomes).MoveValueUnsafe();
}

void RunIngestFuzz(const std::string& engine_name) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto reference = ReplayIngest(engine_name, seed, /*threads=*/1,
                                        /*reuse=*/false, /*preloaded=*/false);
    for (int threads : kThreadCounts) {
      for (bool reuse : {false, true}) {
        for (bool preloaded : {false, true}) {
          if (threads == 1 && !reuse && !preloaded) continue;  // the reference
          const std::string label =
              engine_name + " ingest sweep, seed " + std::to_string(seed) +
              ", threads " + std::to_string(threads) +
              (reuse ? ", reuse on" : ", reuse off") +
              (preloaded ? ", pre-loaded" : ", live");
          auto other = ReplayIngest(engine_name, seed, threads, reuse,
                                    preloaded);
          testharness::ExpectOutcomesBitIdentical(reference, other, label);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(IngestFuzzTest, BlockingIngestInterleavedBitIdentical) {
  RunIngestFuzz("blocking");
}

TEST(IngestFuzzTest, OnlineIngestInterleavedBitIdentical) {
  RunIngestFuzz("online");
}

TEST(IngestFuzzTest, ProgressiveIngestInterleavedBitIdentical) {
  RunIngestFuzz("progressive");
}

TEST(IngestFuzzTest, StratifiedIngestInterleavedBitIdentical) {
  RunIngestFuzz("stratified");
}

/// Reuse must also compose with thread-count invariance: the same
/// workflow with the cache on yields bit-identical results at 1 and 4
/// threads (each feed chunk of the fixture spans a single morsel, so the
/// parallel path's determinism contract gives exact equality).
TEST(WorkflowFuzzTest, ReuseOnThreadInvariant) {
  for (const char* engine : {"blocking", "online", "progressive",
                             "stratified"}) {
    for (int seed = 0; seed < 5; ++seed) {
      auto t1 = Replay(engine, seed, /*threads=*/1, /*reuse=*/true);
      auto t4 = Replay(engine, seed, /*threads=*/4, /*reuse=*/true);
      testharness::ExpectOutcomesBitIdentical(
          t1, t4,
          std::string(engine) + " seed " + std::to_string(seed) +
              ", threads 1 vs 4");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace idebench
