#ifndef IDEBENCH_TESTS_WORKFLOW_HARNESS_H_
#define IDEBENCH_TESTS_WORKFLOW_HARNESS_H_

/// \file workflow_harness.h
/// Differential workflow harness: replays a generated workflow against an
/// engine the way the benchmark driver does (dashboard graph, query
/// building/resolution, budgeted RunFor, poll, cancel, think time) but
/// captures the raw `QueryResult` of every query instead of quality
/// metrics — so two runs of the same workflow under different execution
/// configurations (reuse cache on/off, thread counts, future pipeline
/// variants) can be compared bit for bit.  Shared by
/// `workflow_fuzz_test.cc` and available to future differential suites.

#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "driver/benchmark_driver.h"
#include "engines/engine.h"
#include "query/result.h"
#include "session/session.h"
#include "storage/catalog.h"
#include "workflow/viz_graph.h"
#include "workflow/workflow.h"

namespace idebench::testharness {

/// The raw answer of one query triggered by one interaction.
struct QueryOutcome {
  int64_t interaction_id = 0;
  std::string viz;
  bool unsupported = false;  // engine returned NotImplemented at Submit
  query::QueryResult result;
};

/// Replay knobs.  Budgets cycle per query so a workflow exercises full
/// completions, partial walks, and overhead-starved queries alike.
struct HarnessOptions {
  std::vector<Micros> budgets = {3'000'000, 50'000, 400'000};
  Micros think_time = 1'000'000;
};

/// Replays `wf` against a prepared `engine`; returns one outcome per
/// (interaction, affected viz) in driver order.  Query enumeration is
/// shared with the benchmark driver (`driver::ForEachInteraction`), so
/// the harness replays exactly the queries a real run would submit.
inline Result<std::vector<QueryOutcome>> RunWorkflowOnEngine(
    engines::Engine* engine, const storage::Catalog& catalog,
    const workflow::Workflow& wf, const HarnessOptions& options = {}) {
  std::vector<QueryOutcome> outcomes;
  engine->WorkflowStart();
  int64_t query_index = 0;
  IDB_RETURN_NOT_OK(driver::ForEachInteraction(
      catalog, wf,
      [&](const workflow::Interaction& interaction, int64_t interaction_id,
          std::vector<query::QuerySpec>& specs) -> Status {
        if (interaction.type == workflow::InteractionType::kLink) {
          engine->LinkVizs(interaction.link_from, interaction.link_to);
        } else if (interaction.type == workflow::InteractionType::kDiscard) {
          engine->DiscardViz(interaction.viz_name);
        }

        for (query::QuerySpec& spec : specs) {
          QueryOutcome outcome;
          outcome.interaction_id = interaction_id;
          outcome.viz = spec.viz_name;
          auto submit = engine->Submit(spec);
          const Micros budget =
              options.budgets.empty()
                  ? 1'000'000
                  : options.budgets[static_cast<size_t>(
                        query_index %
                        static_cast<int64_t>(options.budgets.size()))];
          ++query_index;
          if (!submit.ok()) {
            if (submit.status().code() != StatusCode::kNotImplemented) {
              return submit.status();
            }
            outcome.unsupported = true;
            outcomes.push_back(std::move(outcome));
            continue;
          }
          const engines::QueryHandle handle = *submit;
          Micros consumed = 0;
          while (consumed < budget && !engine->IsDone(handle)) {
            const Micros step = engine->RunFor(handle, budget - consumed);
            if (step <= 0) break;
            consumed += step;
          }
          IDB_ASSIGN_OR_RETURN(outcome.result, engine->PollResult(handle));
          engine->Cancel(handle);
          outcomes.push_back(std::move(outcome));
        }
        engine->OnThink(options.think_time);
        return Status::OK();
      }));
  engine->WorkflowEnd();
  return outcomes;
}

/// Replays `wf` the way the *seed* benchmark driver pulled the engine:
/// per interaction, submit every affected query, grant each its full
/// `budget` sequentially, poll all, cancel all, think.  The legacy
/// single-client reference the session serving path is held to.
struct BatchedHarnessOptions {
  Micros budget = 3'000'000;
  Micros think_time = 1'000'000;
};

inline Result<std::vector<QueryOutcome>> RunWorkflowOnEngineBatched(
    engines::Engine* engine, const storage::Catalog& catalog,
    const workflow::Workflow& wf, const BatchedHarnessOptions& options = {}) {
  std::vector<QueryOutcome> outcomes;
  engine->WorkflowStart();
  IDB_RETURN_NOT_OK(driver::ForEachInteraction(
      catalog, wf,
      [&](const workflow::Interaction& interaction, int64_t interaction_id,
          std::vector<query::QuerySpec>& specs) -> Status {
        if (interaction.type == workflow::InteractionType::kLink) {
          engine->LinkVizs(interaction.link_from, interaction.link_to);
        } else if (interaction.type == workflow::InteractionType::kDiscard) {
          engine->DiscardViz(interaction.viz_name);
        }

        struct InFlight {
          QueryOutcome outcome;
          engines::QueryHandle handle = -1;
        };
        std::vector<InFlight> inflight;
        for (query::QuerySpec& spec : specs) {
          InFlight q;
          q.outcome.interaction_id = interaction_id;
          q.outcome.viz = spec.viz_name;
          auto submit = engine->Submit(spec);
          if (!submit.ok()) {
            if (submit.status().code() != StatusCode::kNotImplemented) {
              return submit.status();
            }
            q.outcome.unsupported = true;
            inflight.push_back(std::move(q));
            continue;
          }
          q.handle = *submit;
          inflight.push_back(std::move(q));
        }
        for (InFlight& q : inflight) {
          if (q.outcome.unsupported) continue;
          Micros consumed = 0;
          while (consumed < options.budget && !engine->IsDone(q.handle)) {
            const Micros step =
                engine->RunFor(q.handle, options.budget - consumed);
            if (step <= 0) break;
            consumed += step;
          }
        }
        for (InFlight& q : inflight) {
          if (!q.outcome.unsupported) {
            IDB_ASSIGN_OR_RETURN(q.outcome.result,
                                 engine->PollResult(q.handle));
            engine->Cancel(q.handle);
          }
          outcomes.push_back(std::move(q.outcome));
        }
        engine->OnThink(options.think_time);
        return Status::OK();
      }));
  engine->WorkflowEnd();
  return outcomes;
}

/// Replays `wf` through the session serving API (session/session.h): one
/// `ExplorationSession`, one `SubmitInteraction` + `RunUntilIdle` per
/// interaction, outcomes taken from the pushed final updates in
/// submission order.  With `quantum == 0` (default) the scheduler's
/// engine call sequence must match `RunWorkflowOnEngineBatched` exactly;
/// any `quantum` must still deliver exactly one final update per query.
struct SessionHarnessOptions {
  Micros budget = 3'000'000;  // the manager's time requirement
  Micros think_time = 1'000'000;
  Micros quantum = 0;
  bool push_partials = true;  // prove mid-run polling never perturbs
};

inline Result<std::vector<QueryOutcome>> RunWorkflowThroughSession(
    engines::Engine* engine, std::shared_ptr<const storage::Catalog> catalog,
    const workflow::Workflow& wf, const SessionHarnessOptions& options = {}) {
  class Collector : public session::ResultSink {
   public:
    void OnUpdate(const session::ProgressiveUpdate& update) override {
      if (update.final_update) finals_[update.query_id] = update;
    }
    std::unordered_map<int64_t, session::ProgressiveUpdate> finals_;
  };

  session::SessionManagerOptions mopts;
  mopts.time_requirement = options.budget;
  mopts.quantum = options.quantum;
  mopts.push_partials = options.push_partials;
  Collector sink;  // must outlive the manager
  session::SessionManager manager(mopts, engine, std::move(catalog));
  IDB_ASSIGN_OR_RETURN(session::ExplorationSession * sess,
                       manager.CreateSession(&sink));

  std::vector<QueryOutcome> outcomes;
  for (size_t i = 0; i < wf.interactions.size(); ++i) {
    IDB_ASSIGN_OR_RETURN(std::vector<session::SubmittedQuery> submitted,
                         sess->SubmitInteraction(wf.interactions[i]));
    IDB_RETURN_NOT_OK(manager.RunUntilIdle());
    for (const session::SubmittedQuery& sq : submitted) {
      auto it = sink.finals_.find(sq.query_id);
      if (it == sink.finals_.end()) {
        return Status::Unknown("no final update for submitted query");
      }
      QueryOutcome outcome;
      outcome.interaction_id = static_cast<int64_t>(i);
      outcome.viz = sq.spec.viz_name;
      outcome.unsupported = it->second.unsupported;
      outcome.result = it->second.result;
      outcomes.push_back(std::move(outcome));
    }
    sess->Think(options.think_time);
  }
  IDB_RETURN_NOT_OK(manager.CloseSession(sess));
  return outcomes;
}

/// Asserts two query results agree bit for bit: flags, progress, row
/// counters, bin keys, and every estimate/margin compared with exact
/// (==) double equality.
inline void ExpectResultsBitIdentical(const query::QueryResult& a,
                                      const query::QueryResult& b,
                                      const std::string& label) {
  EXPECT_EQ(a.available, b.available) << label;
  EXPECT_EQ(a.exact, b.exact) << label;
  EXPECT_EQ(a.progress, b.progress) << label;
  EXPECT_EQ(a.rows_processed, b.rows_processed) << label;
  ASSERT_EQ(a.bins.size(), b.bins.size()) << label;
  for (const auto& [key, bin] : a.bins) {
    auto it = b.bins.find(key);
    ASSERT_NE(it, b.bins.end()) << label << ": bin " << key << " missing";
    ASSERT_EQ(bin.values.size(), it->second.values.size())
        << label << ": bin " << key;
    for (size_t v = 0; v < bin.values.size(); ++v) {
      EXPECT_EQ(bin.values[v].estimate, it->second.values[v].estimate)
          << label << ": estimate, bin " << key << " agg " << v;
      EXPECT_EQ(bin.values[v].margin, it->second.values[v].margin)
          << label << ": margin, bin " << key << " agg " << v;
    }
  }
}

/// Asserts two workflow replays delivered bit-identical answers.
inline void ExpectOutcomesBitIdentical(const std::vector<QueryOutcome>& a,
                                       const std::vector<QueryOutcome>& b,
                                       const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string q = label + ", query " + std::to_string(i) + " (viz " +
                          a[i].viz + ", interaction " +
                          std::to_string(a[i].interaction_id) + ")";
    EXPECT_EQ(a[i].interaction_id, b[i].interaction_id) << q;
    EXPECT_EQ(a[i].viz, b[i].viz) << q;
    ASSERT_EQ(a[i].unsupported, b[i].unsupported) << q;
    if (!a[i].unsupported) {
      ExpectResultsBitIdentical(a[i].result, b[i].result, q);
    }
  }
}

}  // namespace idebench::testharness

#endif  // IDEBENCH_TESTS_WORKFLOW_HARNESS_H_
