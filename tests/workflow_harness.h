#ifndef IDEBENCH_TESTS_WORKFLOW_HARNESS_H_
#define IDEBENCH_TESTS_WORKFLOW_HARNESS_H_

/// \file workflow_harness.h
/// Differential workflow harness: replays a generated workflow against an
/// engine the way the benchmark driver does (dashboard graph, query
/// building/resolution, budgeted RunFor, poll, cancel, think time) but
/// captures the raw `QueryResult` of every query instead of quality
/// metrics — so two runs of the same workflow under different execution
/// configurations (reuse cache on/off, thread counts, future pipeline
/// variants) can be compared bit for bit.  Shared by
/// `workflow_fuzz_test.cc` and available to future differential suites.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/benchmark_driver.h"
#include "engines/engine.h"
#include "query/result.h"
#include "storage/catalog.h"
#include "workflow/viz_graph.h"
#include "workflow/workflow.h"

namespace idebench::testharness {

/// The raw answer of one query triggered by one interaction.
struct QueryOutcome {
  int64_t interaction_id = 0;
  std::string viz;
  bool unsupported = false;  // engine returned NotImplemented at Submit
  query::QueryResult result;
};

/// Replay knobs.  Budgets cycle per query so a workflow exercises full
/// completions, partial walks, and overhead-starved queries alike.
struct HarnessOptions {
  std::vector<Micros> budgets = {3'000'000, 50'000, 400'000};
  Micros think_time = 1'000'000;
};

/// Replays `wf` against a prepared `engine`; returns one outcome per
/// (interaction, affected viz) in driver order.  Query enumeration is
/// shared with the benchmark driver (`driver::ForEachInteraction`), so
/// the harness replays exactly the queries a real run would submit.
inline Result<std::vector<QueryOutcome>> RunWorkflowOnEngine(
    engines::Engine* engine, const storage::Catalog& catalog,
    const workflow::Workflow& wf, const HarnessOptions& options = {}) {
  std::vector<QueryOutcome> outcomes;
  engine->WorkflowStart();
  int64_t query_index = 0;
  IDB_RETURN_NOT_OK(driver::ForEachInteraction(
      catalog, wf,
      [&](const workflow::Interaction& interaction, int64_t interaction_id,
          std::vector<query::QuerySpec>& specs) -> Status {
        if (interaction.type == workflow::InteractionType::kLink) {
          engine->LinkVizs(interaction.link_from, interaction.link_to);
        } else if (interaction.type == workflow::InteractionType::kDiscard) {
          engine->DiscardViz(interaction.viz_name);
        }

        for (query::QuerySpec& spec : specs) {
          QueryOutcome outcome;
          outcome.interaction_id = interaction_id;
          outcome.viz = spec.viz_name;
          auto submit = engine->Submit(spec);
          const Micros budget =
              options.budgets.empty()
                  ? 1'000'000
                  : options.budgets[static_cast<size_t>(
                        query_index %
                        static_cast<int64_t>(options.budgets.size()))];
          ++query_index;
          if (!submit.ok()) {
            if (submit.status().code() != StatusCode::kNotImplemented) {
              return submit.status();
            }
            outcome.unsupported = true;
            outcomes.push_back(std::move(outcome));
            continue;
          }
          const engines::QueryHandle handle = *submit;
          Micros consumed = 0;
          while (consumed < budget && !engine->IsDone(handle)) {
            const Micros step = engine->RunFor(handle, budget - consumed);
            if (step <= 0) break;
            consumed += step;
          }
          IDB_ASSIGN_OR_RETURN(outcome.result, engine->PollResult(handle));
          engine->Cancel(handle);
          outcomes.push_back(std::move(outcome));
        }
        engine->OnThink(options.think_time);
        return Status::OK();
      }));
  engine->WorkflowEnd();
  return outcomes;
}

/// Asserts two query results agree bit for bit: flags, progress, row
/// counters, bin keys, and every estimate/margin compared with exact
/// (==) double equality.
inline void ExpectResultsBitIdentical(const query::QueryResult& a,
                                      const query::QueryResult& b,
                                      const std::string& label) {
  EXPECT_EQ(a.available, b.available) << label;
  EXPECT_EQ(a.exact, b.exact) << label;
  EXPECT_EQ(a.progress, b.progress) << label;
  EXPECT_EQ(a.rows_processed, b.rows_processed) << label;
  ASSERT_EQ(a.bins.size(), b.bins.size()) << label;
  for (const auto& [key, bin] : a.bins) {
    auto it = b.bins.find(key);
    ASSERT_NE(it, b.bins.end()) << label << ": bin " << key << " missing";
    ASSERT_EQ(bin.values.size(), it->second.values.size())
        << label << ": bin " << key;
    for (size_t v = 0; v < bin.values.size(); ++v) {
      EXPECT_EQ(bin.values[v].estimate, it->second.values[v].estimate)
          << label << ": estimate, bin " << key << " agg " << v;
      EXPECT_EQ(bin.values[v].margin, it->second.values[v].margin)
          << label << ": margin, bin " << key << " agg " << v;
    }
  }
}

/// Asserts two workflow replays delivered bit-identical answers.
inline void ExpectOutcomesBitIdentical(const std::vector<QueryOutcome>& a,
                                       const std::vector<QueryOutcome>& b,
                                       const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string q = label + ", query " + std::to_string(i) + " (viz " +
                          a[i].viz + ", interaction " +
                          std::to_string(a[i].interaction_id) + ")";
    EXPECT_EQ(a[i].interaction_id, b[i].interaction_id) << q;
    EXPECT_EQ(a[i].viz, b[i].viz) << q;
    ASSERT_EQ(a[i].unsupported, b[i].unsupported) << q;
    if (!a[i].unsupported) {
      ExpectResultsBitIdentical(a[i].result, b[i].result, q);
    }
  }
}

}  // namespace idebench::testharness

#endif  // IDEBENCH_TESTS_WORKFLOW_HARNESS_H_
