/// \file consistency_test.cc
/// Cross-engine consistency sweep: for a grid of query shapes (binning
/// mode x dimensionality x aggregate x filter), every engine driven to
/// completion must agree with the ground-truth oracle — exactly for
/// exact engines, and within its own reported margins for sampling ones
/// (modulo the configured confidence level).

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/flights_seed.h"
#include "driver/ground_truth.h"
#include "engines/registry.h"
#include "tests/test_util.h"

namespace idebench {
namespace {

struct QueryShape {
  const char* label;
  const char* bin_column;
  query::BinningMode mode;
  int64_t bins;
  const char* second_bin;  // nullptr for 1-D
  query::AggregateType agg;
  const char* agg_column;  // nullptr for COUNT
  const char* filter_column;  // nullptr for unfiltered
};

const QueryShape kShapes[] = {
    {"count_by_carrier", "carrier", query::BinningMode::kNominal, 0, nullptr,
     query::AggregateType::kCount, nullptr, nullptr},
    {"avg_delay_fixed25", "dep_delay", query::BinningMode::kFixedCount, 25,
     nullptr, query::AggregateType::kAvg, "arr_delay", nullptr},
    {"sum_distance_filtered", "distance", query::BinningMode::kFixedCount, 10,
     nullptr, query::AggregateType::kSum, "distance", "day_of_week"},
    {"count_2d_heatmap", "dep_delay", query::BinningMode::kFixedCount, 10,
     "arr_delay", query::AggregateType::kCount, nullptr, nullptr},
    {"min_airtime_by_dow", "day_of_week", query::BinningMode::kNominal, 0,
     nullptr, query::AggregateType::kMin, "air_time", nullptr},
    {"max_width_binned", "dep_time", query::BinningMode::kFixedWidth, 0,
     nullptr, query::AggregateType::kMax, "distance", nullptr},
};

std::shared_ptr<storage::Catalog> FlightsCatalog() {
  static std::shared_ptr<storage::Catalog> catalog = [] {
    datagen::FlightsSeedConfig config;
    config.rows = 8'000;
    config.seed = 31;
    auto table = datagen::GenerateFlightsSeed(config);
    IDB_CHECK(table.ok());
    auto c = std::make_shared<storage::Catalog>();
    IDB_CHECK(c->AddTable(std::make_shared<storage::Table>(
                              std::move(table).MoveValueUnsafe()))
                  .ok());
    c->set_nominal_rows(1'000'000);
    return c;
  }();
  return catalog;
}

query::QuerySpec BuildSpec(const QueryShape& shape,
                           const storage::Catalog& catalog) {
  query::QuerySpec spec;
  spec.viz_name = shape.label;
  query::BinDimension d;
  d.column = shape.bin_column;
  d.mode = shape.mode;
  d.requested_bins = shape.bins > 0 ? shape.bins : 10;
  if (shape.mode == query::BinningMode::kFixedWidth) d.width = 2.0;
  spec.bins.push_back(d);
  if (shape.second_bin != nullptr) {
    query::BinDimension d2;
    d2.column = shape.second_bin;
    d2.mode = query::BinningMode::kFixedCount;
    d2.requested_bins = 10;
    spec.bins.push_back(d2);
  }
  query::AggregateSpec agg;
  agg.type = shape.agg;
  if (shape.agg_column != nullptr) agg.column = shape.agg_column;
  spec.aggregates.push_back(agg);
  if (shape.filter_column != nullptr) {
    expr::Predicate p;
    p.column = shape.filter_column;
    p.op = expr::CompareOp::kRange;
    p.lo = 1.0;
    p.hi = 5.0;
    spec.filter.And(p);
  }
  IDB_CHECK(spec.ResolveBins(catalog).ok());
  return spec;
}

class ShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ShapeSweep, CompletedEngineAgreesWithOracle) {
  const auto& [engine_name, shape_index] = GetParam();
  const QueryShape& shape = kShapes[static_cast<size_t>(shape_index)];
  auto catalog = FlightsCatalog();
  const query::QuerySpec spec = BuildSpec(shape, *catalog);

  driver::GroundTruthOracle oracle(catalog);
  auto truth = oracle.Get(spec);
  ASSERT_TRUE(truth.ok());

  auto engine = engines::CreateEngine(engine_name);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  auto handle = (*engine)->Submit(spec);
  ASSERT_TRUE(handle.ok());
  for (int i = 0; i < 256 && !(*engine)->IsDone(*handle); ++i) {
    (*engine)->RunFor(*handle, 60'000'000);
  }
  ASSERT_TRUE((*engine)->IsDone(*handle)) << shape.label;
  auto result = (*engine)->PollResult(*handle);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->available);

  const bool sampling_engine = engine_name == "stratified";
  if (!sampling_engine) {
    // Exact/complete engines must match the oracle bin for bin.
    ASSERT_EQ(result->bins.size(), (*truth)->bins.size()) << shape.label;
    for (const auto& [key, bin] : (*truth)->bins) {
      auto it = result->bins.find(key);
      ASSERT_NE(it, result->bins.end());
      const double f = it->second.values[0].estimate;
      const double a = bin.values[0].estimate;
      EXPECT_NEAR(f, a, 1e-6 * std::max({std::fabs(a), 1.0})) << shape.label;
    }
  } else {
    // The stratified engine answers from its 1 % sample: require that the
    // grand total (first aggregate) is within 50 % for counts/sums and
    // that delivered bins exist in the ground truth.
    for (const auto& [key, bin] : result->bins) {
      EXPECT_TRUE((*truth)->bins.count(key) != 0) << shape.label;
    }
    if (shape.agg == query::AggregateType::kCount) {
      const double f = result->TotalEstimate();
      const double a = (*truth)->TotalEstimate();
      EXPECT_NEAR(f, a, 0.5 * a + 1.0) << shape.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesXShapes, ShapeSweep,
    ::testing::Combine(::testing::Values("blocking", "online", "progressive",
                                         "stratified", "frontend"),
                       ::testing::Range(0, 6)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             kShapes[static_cast<size_t>(std::get<1>(info.param))].label;
    });

}  // namespace
}  // namespace idebench
