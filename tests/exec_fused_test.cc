/// \file exec_fused_test.cc
/// Differential tests for the fused single-pass kernels and zone-map
/// block pruning (PR 5): the fused pipeline (vertical branchless bin
/// keys, dictionary code→bin LUTs, gather dedup) must produce results
/// bit-identical to both the two-phase vectorized path and the scalar
/// reference across every (op, type, join, bin, agg) combination —
/// including NaN doubles, empty IN-sets, dictionary codes absent from
/// the bin config — and zone-map pruning must never change any result,
/// only skip provably-empty blocks.

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/aggregator.h"
#include "exec/bound_query.h"
#include "exec/join_index.h"
#include "exec/parallel.h"
#include "exec/vectorized.h"
#include "storage/catalog.h"
#include "tests/test_util.h"

namespace idebench::exec {
namespace {

using query::AggregateSpec;
using query::AggregateType;
using query::BinDimension;
using query::BinningMode;
using query::QuerySpec;

constexpr int64_t kRows = 3000;
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Star catalog exercising every kernel shape: int64/double/string fact
/// columns (with NaN doubles), a joined dimension with dangling keys.
std::shared_ptr<storage::Catalog> MakeCatalog() {
  storage::Schema fact_schema({
      {"value", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"amount", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"group", storage::DataType::kString, storage::AttributeKind::kNominal},
      {"code", storage::DataType::kInt64, storage::AttributeKind::kNominal},
      {"dim_id", storage::DataType::kInt64, storage::AttributeKind::kNominal},
  });
  auto fact = std::make_shared<storage::Table>("fact", fact_schema);
  const char* groups[] = {"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"};
  Rng rng(29);
  for (int64_t i = 0; i < kRows; ++i) {
    fact->mutable_column(0).AppendDouble(rng.Uniform(-40.0, 160.0));
    fact->mutable_column(1).AppendDouble(
        rng.Bernoulli(0.07) ? kNaN : rng.Uniform(-10.0, 900.0));
    fact->mutable_column(2).AppendString(groups[rng.UniformInt(0, 9)]);
    fact->mutable_column(3).AppendInt(rng.UniformInt(-3, 14));
    fact->mutable_column(4).AppendInt(
        rng.Bernoulli(0.12) ? 77 : rng.UniformInt(0, 7));
  }

  storage::Schema dim_schema({
      {"dim_id", storage::DataType::kInt64, storage::AttributeKind::kNominal},
      {"dlabel", storage::DataType::kString, storage::AttributeKind::kNominal},
      {"dval", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
  });
  auto dim = std::make_shared<storage::Table>("dims", dim_schema);
  const char* dlabels[] = {"n", "s", "e", "w"};
  for (int64_t i = 0; i < 8; ++i) {
    dim->mutable_column(0).AppendInt(i);
    dim->mutable_column(1).AppendString(dlabels[i % 4]);
    dim->mutable_column(2).AppendDouble(static_cast<double>(i) * 1.5 - 2.0);
  }

  auto catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(catalog->AddTable(fact).ok());
  IDB_CHECK(catalog->AddTable(dim).ok());
  IDB_CHECK(catalog->AddForeignKey({"dim_id", "dims", "dim_id"}).ok());
  return catalog;
}

AggregateSpec Agg(AggregateType type, const std::string& column = "") {
  AggregateSpec a;
  a.type = type;
  a.column = column;
  return a;
}

void ExpectBitIdentical(const query::QueryResult& a,
                        const query::QueryResult& b, const char* what) {
  EXPECT_EQ(a.rows_processed, b.rows_processed) << what;
  ASSERT_EQ(a.bins.size(), b.bins.size()) << what;
  for (const auto& [key, bin] : a.bins) {
    auto it = b.bins.find(key);
    ASSERT_NE(it, b.bins.end()) << what << ": bin " << key << " missing";
    ASSERT_EQ(bin.values.size(), it->second.values.size()) << what;
    for (size_t i = 0; i < bin.values.size(); ++i) {
      EXPECT_EQ(bin.values[i].estimate, it->second.values[i].estimate)
          << what << ": estimate, bin " << key << " agg " << i;
      EXPECT_EQ(bin.values[i].margin, it->second.values[i].margin)
          << what << ": margin, bin " << key << " agg " << i;
    }
  }
}

/// Feeds the same rows through scalar, two-phase, and fused aggregators
/// and requires bit-identical state and snapshots from all three.
void RunDifferential3(const QuerySpec& spec,
                      const std::shared_ptr<storage::Catalog>& catalog,
                      const std::vector<int64_t>& rows, double weight = 1.0) {
  std::vector<const JoinIndex*> joins;
  std::unique_ptr<JoinIndex> join;
  auto required = BoundQuery::RequiredJoins(spec, *catalog);
  ASSERT_TRUE(required.ok());
  if (!required->empty()) {
    auto built = JoinIndex::BuildLazy(*catalog, catalog->foreign_keys()[0]);
    ASSERT_TRUE(built.ok());
    join = std::make_unique<JoinIndex>(std::move(built).MoveValueUnsafe());
    joins.push_back(join.get());
  }
  auto bound = BoundQuery::Bind(spec, *catalog, joins);
  ASSERT_TRUE(bound.ok());

  BinnedAggregatorOptions scalar_options;
  scalar_options.enable_vectorized = false;
  BinnedAggregatorOptions two_phase_options;
  two_phase_options.enable_fused = false;
  BinnedAggregator scalar(&*bound, scalar_options);
  BinnedAggregator two_phase(&*bound, two_phase_options);
  BinnedAggregator fused(&*bound);
  ASSERT_TRUE(fused.uses_vectorized());
  ASSERT_TRUE(fused.uses_fused());
  ASSERT_FALSE(two_phase.uses_fused());

  for (int64_t row : rows) scalar.ProcessRowWeighted(row, weight);
  two_phase.ProcessBatch(rows.data(), static_cast<int64_t>(rows.size()),
                         weight);
  fused.ProcessBatch(rows.data(), static_cast<int64_t>(rows.size()), weight);

  for (const BinnedAggregator* agg : {&two_phase, &fused}) {
    EXPECT_EQ(scalar.rows_seen(), agg->rows_seen());
    EXPECT_EQ(scalar.rows_matched(), agg->rows_matched());
  }
  ExpectBitIdentical(scalar.ExactResult(), two_phase.ExactResult(),
                     "scalar vs two-phase exact");
  ExpectBitIdentical(scalar.ExactResult(), fused.ExactResult(),
                     "scalar vs fused exact");
  ExpectBitIdentical(
      scalar.EstimateFromUniformSample(2 * kRows, 1.96),
      fused.EstimateFromUniformSample(2 * kRows, 1.96),
      "scalar vs fused uniform");
  ExpectBitIdentical(scalar.EstimateFromWeightedSample(1.96),
                     fused.EstimateFromWeightedSample(1.96),
                     "scalar vs fused weighted");
}

std::vector<int64_t> ShuffledRows(uint64_t seed, int64_t n = kRows) {
  Rng rng(seed);
  std::vector<int64_t> rows(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) rows[static_cast<size_t>(i)] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    std::swap(rows[static_cast<size_t>(i)],
              rows[static_cast<size_t>(rng.UniformInt(0, i))]);
  }
  return rows;
}

QuerySpec BaseSpec(const std::shared_ptr<storage::Catalog>& catalog,
                   const std::string& bin_column, BinningMode mode,
                   int64_t bins = 12) {
  QuerySpec spec;
  spec.viz_name = "fused";
  BinDimension d;
  d.column = bin_column;
  d.mode = mode;
  d.requested_bins = bins;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "amount"),
                     Agg(AggregateType::kAvg, "value"),
                     Agg(AggregateType::kMin, "amount"),
                     Agg(AggregateType::kMax, "value")};
  IDB_CHECK(spec.ResolveBins(*catalog).ok());
  return spec;
}

// --- (op, type, join) sweep ------------------------------------------------

TEST(FusedDifferentialTest, AllOpsOnFactAndJoinedColumns) {
  auto catalog = MakeCatalog();
  struct Case {
    std::string column;
    double lo, hi, value;
  };
  // Fact int64, fact double (with NaN), fact string (dictionary codes),
  // joined int64, joined double, joined string.
  const std::vector<Case> cases = {
      {"code", 2.0, 9.0, 5.0},    {"amount", 100.0, 600.0, 250.0},
      {"group", 1.0, 7.0, 3.0},   {"dim_id", 1.0, 6.0, 4.0},
      {"dval", -1.0, 6.5, 2.5},   {"dlabel", 0.0, 3.0, 1.0},
  };
  const expr::CompareOp ops[] = {
      expr::CompareOp::kEq, expr::CompareOp::kNeq,  expr::CompareOp::kLt,
      expr::CompareOp::kLe, expr::CompareOp::kGt,   expr::CompareOp::kGe,
      expr::CompareOp::kRange, expr::CompareOp::kIn,
  };
  const std::vector<int64_t> rows = ShuffledRows(5);
  for (const Case& c : cases) {
    for (expr::CompareOp op : ops) {
      QuerySpec spec =
          BaseSpec(catalog, "value", BinningMode::kFixedCount, 16);
      expr::Predicate p;
      p.column = c.column;
      p.op = op;
      p.value = c.value;
      p.lo = c.lo;
      p.hi = c.hi;
      if (op == expr::CompareOp::kIn) {
        p.set_values = {c.lo, c.value, c.hi};
      }
      spec.filter.And(p);
      SCOPED_TRACE(c.column + "/" + expr::CompareOpName(op));
      RunDifferential3(spec, catalog, rows);
    }
  }
}

TEST(FusedDifferentialTest, EmptyInSetSelectsNothing) {
  auto catalog = MakeCatalog();
  QuerySpec spec = BaseSpec(catalog, "value", BinningMode::kFixedCount);
  expr::Predicate p;
  p.column = "code";
  p.op = expr::CompareOp::kIn;
  p.set_values = {};  // empty IN: matches no row on every path
  spec.filter.And(p);
  RunDifferential3(spec, catalog, ShuffledRows(6));
}

TEST(FusedDifferentialTest, NaNFilterColumnNeverMatches) {
  auto catalog = MakeCatalog();
  // kNeq over a NaN-bearing double column is the trap case: IEEE says
  // NaN != x is true, but the scalar path drops NaN rows.
  for (expr::CompareOp op :
       {expr::CompareOp::kNeq, expr::CompareOp::kLt, expr::CompareOp::kEq}) {
    QuerySpec spec = BaseSpec(catalog, "code", BinningMode::kNominal);
    expr::Predicate p;
    p.column = "amount";
    p.op = op;
    p.value = 300.0;
    spec.filter.And(p);
    SCOPED_TRACE(expr::CompareOpName(op));
    RunDifferential3(spec, catalog, ShuffledRows(7));
  }
}

// --- Bin shapes ------------------------------------------------------------

TEST(FusedDifferentialTest, DictionaryLutBins) {
  auto catalog = MakeCatalog();
  // Direct LUT (no aggregate shares the string column).
  RunDifferential3(BaseSpec(catalog, "group", BinningMode::kNominal), catalog,
                   ShuffledRows(8));
  // Joined string dimension -> LUT behind the join mapping.
  RunDifferential3(BaseSpec(catalog, "dlabel", BinningMode::kNominal),
                   catalog, ShuffledRows(9));
}

TEST(FusedDifferentialTest, DictionaryLutSharedWithAggregate) {
  auto catalog = MakeCatalog();
  QuerySpec spec = BaseSpec(catalog, "group", BinningMode::kNominal);
  // SUM over the binned string column itself (sums dictionary codes):
  // forces the value-lane LUT variant and the gather-dedup path.
  spec.aggregates.push_back(Agg(AggregateType::kSum, "group"));
  RunDifferential3(spec, catalog, ShuffledRows(10));
}

TEST(FusedDifferentialTest, DictionaryCodesAbsentFromBinConfig) {
  auto catalog = MakeCatalog();
  QuerySpec spec = BaseSpec(catalog, "group", BinningMode::kNominal);
  // Narrow the resolved bin range below the dictionary: codes 0..1 and
  // 6..9 must map to no bin on every path (the LUT's -1 entries).
  spec.bins[0].lo = 2.0;
  spec.bins[0].bin_count = 4;
  RunDifferential3(spec, catalog, ShuffledRows(11));
}

TEST(FusedDifferentialTest, PowerOfTwoWidthUsesExactReciprocal) {
  auto catalog = MakeCatalog();
  QuerySpec spec = BaseSpec(catalog, "value", BinningMode::kFixedCount);
  // Manually resolved fixed-width config with a power-of-two width: the
  // fused kernel takes the inv-multiply variant, which must round
  // identically to the division.
  spec.bins[0].mode = BinningMode::kFixedWidth;
  spec.bins[0].lo = -64.0;
  spec.bins[0].width = 8.0;
  spec.bins[0].bin_count = 32;
  RunDifferential3(spec, catalog, ShuffledRows(12));

  spec.bins[0].width = 7.5;  // non-power-of-two: division variant
  RunDifferential3(spec, catalog, ShuffledRows(13));
}

TEST(FusedDifferentialTest, TwoDimensionalCombinations) {
  auto catalog = MakeCatalog();
  const std::vector<int64_t> rows = ShuffledRows(14);
  // string x quantitative, int-nominal x joined-quantitative,
  // joined-string x string.
  const std::vector<std::pair<std::string, std::string>> dims = {
      {"group", "value"}, {"code", "dval"}, {"dlabel", "group"}};
  for (const auto& [c0, c1] : dims) {
    QuerySpec spec;
    spec.viz_name = "fused2d";
    BinDimension d0;
    d0.column = c0;
    d0.mode = BinningMode::kNominal;
    BinDimension d1;
    d1.column = c1;
    d1.mode = c1 == "group" ? BinningMode::kNominal
                            : BinningMode::kFixedCount;
    d1.requested_bins = 10;
    spec.bins = {d0, d1};
    spec.aggregates = {Agg(AggregateType::kCount),
                       Agg(AggregateType::kAvg, "amount")};
    ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
    expr::Predicate p;
    p.column = "value";
    p.op = expr::CompareOp::kRange;
    p.lo = -20.0;
    p.hi = 140.0;
    spec.filter.And(p);
    SCOPED_TRACE(c0 + " x " + c1);
    RunDifferential3(spec, catalog, rows);
  }
}

TEST(FusedDifferentialTest, AggregateSharesBinnedDimension) {
  auto catalog = MakeCatalog();
  // AVG/SUM over the binned quantitative column: the stashed value lane
  // must feed the aggregates (no re-gather) with bit-exact values, NaNs
  // included.
  QuerySpec spec = BaseSpec(catalog, "amount", BinningMode::kFixedCount);
  spec.aggregates.push_back(Agg(AggregateType::kAvg, "amount"));
  expr::Predicate p;
  p.column = "code";
  p.op = expr::CompareOp::kGe;
  p.value = 1.0;
  spec.filter.And(p);
  RunDifferential3(spec, catalog, ShuffledRows(15));
}

TEST(FusedDifferentialTest, WeightedFeedsAndCanonicalPair) {
  auto catalog = MakeCatalog();
  // COUNT + AVG (the specialized dense agg-set kernel) under unit and
  // non-unit weights.
  QuerySpec spec;
  spec.viz_name = "pair";
  BinDimension d;
  d.column = "value";
  d.mode = BinningMode::kFixedCount;
  d.requested_bins = 25;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kAvg, "amount")};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  expr::Predicate p;
  p.column = "value";
  p.op = expr::CompareOp::kRange;
  p.lo = 0.0;
  p.hi = 120.0;
  spec.filter.And(p);
  RunDifferential3(spec, catalog, ShuffledRows(16));
  RunDifferential3(spec, catalog, ShuffledRows(17), /*weight=*/3.25);
}

TEST(FusedDifferentialTest, RandomizedTwentySeedSweep) {
  auto catalog = MakeCatalog();
  const char* bin_cols[] = {"value", "amount", "group", "code", "dval",
                            "dlabel"};
  const char* filter_cols[] = {"value", "amount", "group", "code", "dval"};
  const char* agg_cols[] = {"value", "amount", "group", "dval"};
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(1000 + seed);
    QuerySpec spec;
    spec.viz_name = "rand";
    BinDimension d;
    d.column = bin_cols[rng.UniformInt(0, 5)];
    const bool nominal = d.column == std::string("group") ||
                         d.column == std::string("dlabel") ||
                         d.column == std::string("code");
    d.mode = nominal ? BinningMode::kNominal : BinningMode::kFixedCount;
    d.requested_bins = rng.UniformInt(4, 24);
    spec.bins = {d};
    if (rng.Bernoulli(0.4)) {
      BinDimension d2;
      d2.column = "group";
      d2.mode = BinningMode::kNominal;
      if (d.column != d2.column) spec.bins.push_back(d2);
    }
    spec.aggregates = {Agg(AggregateType::kCount)};
    const int naggs = static_cast<int>(rng.UniformInt(1, 3));
    for (int a = 0; a < naggs; ++a) {
      const AggregateType types[] = {AggregateType::kSum, AggregateType::kAvg,
                                     AggregateType::kMin,
                                     AggregateType::kMax};
      spec.aggregates.push_back(
          Agg(types[rng.UniformInt(0, 3)], agg_cols[rng.UniformInt(0, 3)]));
    }
    const int nfilters = static_cast<int>(rng.UniformInt(0, 2));
    for (int f = 0; f < nfilters; ++f) {
      expr::Predicate p;
      p.column = filter_cols[rng.UniformInt(0, 4)];
      const expr::CompareOp ops[] = {expr::CompareOp::kRange,
                                     expr::CompareOp::kIn,
                                     expr::CompareOp::kGe,
                                     expr::CompareOp::kNeq};
      p.op = ops[rng.UniformInt(0, 3)];
      p.lo = rng.Uniform(-20.0, 60.0);
      p.hi = p.lo + rng.Uniform(1.0, 120.0);
      p.value = rng.Uniform(-5.0, 12.0);
      if (p.op == expr::CompareOp::kIn) {
        const int k = static_cast<int>(rng.UniformInt(0, 4));
        for (int s = 0; s < k; ++s) {
          p.set_values.push_back(std::floor(rng.Uniform(-3.0, 12.0)));
        }
      }
      spec.filter.And(p);
    }
    ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunDifferential3(spec, catalog, ShuffledRows(seed),
                     rng.Bernoulli(0.3) ? rng.Uniform(0.5, 4.0) : 1.0);
  }
}

// --- Zone-map pruning ------------------------------------------------------

/// Time-ordered catalog spanning several zone blocks: `day` increases
/// monotonically (the append-ordered case zone maps exist for), `metric`
/// is random, `tag` cycles a small dictionary.
std::shared_ptr<storage::Catalog> MakeClusteredCatalog(int64_t rows) {
  storage::Schema schema({
      {"day", storage::DataType::kInt64,
       storage::AttributeKind::kQuantitative},
      {"metric", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"tag", storage::DataType::kString, storage::AttributeKind::kNominal},
  });
  auto table = std::make_shared<storage::Table>("events", schema);
  const char* tags[] = {"x", "y", "z"};
  Rng rng(31);
  const int64_t rows_per_day = rows / 64;
  for (int64_t i = 0; i < rows; ++i) {
    table->mutable_column(0).AppendInt(i / rows_per_day);
    table->mutable_column(1).AppendDouble(rng.Uniform(0.0, 100.0));
    table->mutable_column(2).AppendString(tags[i % 3]);
  }
  auto catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(catalog->AddTable(table).ok());
  return catalog;
}

QuerySpec DayWindowSpec(const std::shared_ptr<storage::Catalog>& catalog,
                        double lo, double hi) {
  QuerySpec spec;
  spec.viz_name = "days";
  BinDimension d;
  d.column = "metric";
  d.mode = BinningMode::kFixedCount;
  d.requested_bins = 10;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "metric")};
  IDB_CHECK(spec.ResolveBins(*catalog).ok());
  expr::Predicate p;
  p.column = "day";
  p.op = expr::CompareOp::kRange;
  p.lo = lo;
  p.hi = hi;
  spec.filter.And(p);
  return spec;
}

TEST(ZonePruneTest, PrunedScanIsBitIdenticalAndSkipsBlocks) {
  const int64_t rows = 4 * storage::kZoneMapBlockRows;  // 4 zone blocks
  auto catalog = MakeClusteredCatalog(rows);
  QuerySpec spec = DayWindowSpec(catalog, 5.0, 12.0);  // ~1 block of days
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregatorOptions no_prune;
  no_prune.enable_zone_pruning = false;
  BinnedAggregator pruned(&*bound);
  BinnedAggregator unpruned(&*bound, no_prune);
  pruned.ProcessRange(0, rows);
  unpruned.ProcessRange(0, rows);

  EXPECT_GT(pruned.zone_rows_skipped(), 0);
  EXPECT_GT(pruned.zone_blocks_skipped(), 0);
  EXPECT_EQ(unpruned.zone_rows_skipped(), 0);
  EXPECT_EQ(pruned.rows_seen(), unpruned.rows_seen());
  EXPECT_EQ(pruned.rows_matched(), unpruned.rows_matched());
  ExpectBitIdentical(pruned.ExactResult(), unpruned.ExactResult(),
                     "pruned vs unpruned");
}

TEST(ZonePruneTest, MorselDispatchSkipsAndStaysThreadInvariant) {
  const int64_t rows = 4 * storage::kZoneMapBlockRows;
  auto catalog = MakeClusteredCatalog(rows);
  QuerySpec spec = DayWindowSpec(catalog, 40.0, 44.0);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregatorOptions no_prune;
  no_prune.enable_zone_pruning = false;
  BinnedAggregator reference(&*bound, no_prune);
  reference.ProcessRange(0, rows);

  for (int threads : {1, 4}) {
    BinnedAggregator agg(&*bound);
    MorselProcessRange(&agg, 0, rows, threads);
    SCOPED_TRACE(threads);
    EXPECT_GT(agg.zone_rows_skipped(), 0);
    EXPECT_EQ(agg.rows_seen(), reference.rows_seen());
    EXPECT_EQ(agg.rows_matched(), reference.rows_matched());
    ExpectBitIdentical(agg.ExactResult(), reference.ExactResult(),
                       "morsel pruned vs reference");
  }
}

TEST(ZonePruneTest, BoundaryValuesNeverPruneMatchingBlocks) {
  const int64_t rows = 3 * storage::kZoneMapBlockRows;
  auto catalog = MakeClusteredCatalog(rows);
  const storage::Column* day =
      catalog->fact_table()->ColumnByName("day");
  const auto& zones = day->zone_map();
  ASSERT_EQ(zones.size(), 3u);
  // Probe exactly at every block's min and max (range lo == block max,
  // hi == block min + 1, equality at both edges): pruning is sound only
  // if none of these drops a matching row.
  for (const storage::ZoneEntry& z : zones) {
    for (double probe : {z.min, z.max}) {
      for (auto make : {+[](double v) {
             expr::Predicate p;
             p.column = "day";
             p.op = expr::CompareOp::kEq;
             p.value = v;
             return p;
           },
           +[](double v) {
             expr::Predicate p;
             p.column = "day";
             p.op = expr::CompareOp::kRange;
             p.lo = v;
             p.hi = v + 1.0;
             return p;
           }}) {
        QuerySpec spec = DayWindowSpec(catalog, 0.0, 1.0);
        spec.filter = expr::FilterExpr({make(probe)});
        auto bound = BoundQuery::Bind(spec, *catalog);
        ASSERT_TRUE(bound.ok());
        BinnedAggregatorOptions no_prune;
        no_prune.enable_zone_pruning = false;
        BinnedAggregator pruned(&*bound);
        BinnedAggregator unpruned(&*bound, no_prune);
        pruned.ProcessRange(0, rows);
        unpruned.ProcessRange(0, rows);
        EXPECT_EQ(pruned.rows_matched(), unpruned.rows_matched())
            << "probe " << probe;
        ExpectBitIdentical(pruned.ExactResult(), unpruned.ExactResult(),
                           "boundary probe");
      }
    }
  }
}

TEST(ZonePruneTest, RecordingAggregatorKeepsWalkPositions) {
  const int64_t rows = 3 * storage::kZoneMapBlockRows;
  auto catalog = MakeClusteredCatalog(rows);
  QuerySpec spec = DayWindowSpec(catalog, 30.0, 35.0);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregatorOptions record;
  record.record_matches = true;
  BinnedAggregatorOptions record_no_prune = record;
  record_no_prune.enable_zone_pruning = false;

  for (int threads : {1, 4}) {
    BinnedAggregator pruned(&*bound, record);
    BinnedAggregator unpruned(&*bound, record_no_prune);
    MorselProcessRange(&pruned, 0, rows, threads);
    MorselProcessRange(&unpruned, 0, rows, threads);
    ASSERT_EQ(pruned.matched_rows().size(), unpruned.matched_rows().size());
    for (size_t i = 0; i < pruned.matched_rows().size(); ++i) {
      EXPECT_EQ(pruned.matched_rows()[i].pos, unpruned.matched_rows()[i].pos);
      EXPECT_EQ(pruned.matched_rows()[i].row, unpruned.matched_rows()[i].row);
    }
  }
}

TEST(ZonePruneTest, ShuffledFeedsNeverPrune) {
  const int64_t rows = 2 * storage::kZoneMapBlockRows;
  auto catalog = MakeClusteredCatalog(rows);
  QuerySpec spec = DayWindowSpec(catalog, 5.0, 6.0);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  Rng rng(3);
  aqp::ShuffledIndex order(rows, &rng);
  BinnedAggregator agg(&*bound);
  agg.ProcessShuffled(order, 0, rows);
  EXPECT_EQ(agg.zone_rows_skipped(), 0);
  EXPECT_EQ(agg.rows_seen(), rows);
}

// --- Partial pooling -------------------------------------------------------

TEST(PartialPoolTest, MorselRunsReusePartials) {
  const int64_t rows = 4 * storage::kZoneMapBlockRows;
  auto catalog = MakeClusteredCatalog(rows);
  QuerySpec spec = DayWindowSpec(catalog, 0.0, 64.0);  // matches everywhere
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregator agg(&*bound);
  EXPECT_EQ(agg.partial_pool_size(), 0u);
  MorselProcessRange(&agg, 0, rows, /*parallelism=*/2);
  const size_t pooled = agg.partial_pool_size();
  EXPECT_GT(pooled, 0u);
  // A second dispatch reuses the pooled partials instead of growing.
  MorselProcessRange(&agg, 0, rows, /*parallelism=*/2);
  EXPECT_EQ(agg.partial_pool_size(), pooled);

  BinnedAggregator fresh(&*bound);
  MorselProcessRange(&fresh, 0, rows, /*parallelism=*/2);
  BinnedAggregator twice(&*bound);
  MorselProcessRange(&twice, 0, rows / 2, /*parallelism=*/2);
  MorselProcessRange(&twice, rows / 2, rows, /*parallelism=*/2);
  ExpectBitIdentical(fresh.ExactResult(), twice.ExactResult(),
                     "pooled continuation");

  agg.Reset();
  EXPECT_EQ(agg.partial_pool_size(), 0u);
}

}  // namespace
}  // namespace idebench::exec
