#include "query/binning.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace idebench::query {
namespace {

TEST(BinningTest, FixedCountCoversMinMax) {
  storage::Table t = testutil::MakeTinyTable();  // value in [10, 80]
  BinDimension d;
  d.column = "value";
  d.mode = BinningMode::kFixedCount;
  d.requested_bins = 7;
  ASSERT_TRUE(d.Resolve(t).ok());
  EXPECT_TRUE(d.resolved);
  EXPECT_EQ(d.bin_count, 7);
  EXPECT_DOUBLE_EQ(d.lo, 10.0);
  // Every value falls into a valid bin, including the maximum.
  const storage::Column* col = t.ColumnByName("value");
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    const int64_t idx = d.BinIndex(col->ValueAsDouble(r));
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, d.bin_count);
  }
  EXPECT_EQ(d.BinIndex(10.0), 0);
  EXPECT_EQ(d.BinIndex(80.0), 6);
  EXPECT_EQ(d.BinIndex(9.0), -1);
  EXPECT_EQ(d.BinIndex(81.0), -1);
}

TEST(BinningTest, FixedWidthAnchorsAtOrigin) {
  storage::Table t = testutil::MakeTinyTable();
  BinDimension d;
  d.column = "value";
  d.mode = BinningMode::kFixedWidth;
  d.width = 25.0;
  d.origin = 0.0;
  ASSERT_TRUE(d.Resolve(t).ok());
  // min = 10 -> lo = 0; max = 80 -> bins [0,25) [25,50) [50,75) [75,100).
  EXPECT_DOUBLE_EQ(d.lo, 0.0);
  EXPECT_EQ(d.bin_count, 4);
  EXPECT_EQ(d.BinIndex(10.0), 0);
  EXPECT_EQ(d.BinIndex(25.0), 1);
  EXPECT_EQ(d.BinIndex(80.0), 3);
}

TEST(BinningTest, NominalStringBinsAreDictionaryCodes) {
  storage::Table t = testutil::MakeTinyTable();
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  ASSERT_TRUE(d.Resolve(t).ok());
  EXPECT_EQ(d.bin_count, 2);
  EXPECT_EQ(d.BinIndex(0.0), 0);
  EXPECT_EQ(d.BinIndex(1.0), 1);
  EXPECT_EQ(d.BinIndex(2.0), -1);
  EXPECT_EQ(d.BinLabel(0, &t), "a");
  EXPECT_EQ(d.BinLabel(1, &t), "b");
}

TEST(BinningTest, NominalIntegerBinsSpanDomain) {
  storage::Table t = testutil::MakeTinyTable();  // flag in {0, 1}
  BinDimension d;
  d.column = "flag";
  d.mode = BinningMode::kNominal;
  ASSERT_TRUE(d.Resolve(t).ok());
  EXPECT_EQ(d.bin_count, 2);
  EXPECT_EQ(d.BinIndex(0.0), 0);
  EXPECT_EQ(d.BinIndex(1.0), 1);
  EXPECT_EQ(d.BinLabel(1, &t), "1");
}

TEST(BinningTest, QuantitativeLabelsAreRanges) {
  storage::Table t = testutil::MakeTinyTable();
  BinDimension d;
  d.column = "value";
  d.mode = BinningMode::kFixedWidth;
  d.width = 25.0;
  ASSERT_TRUE(d.Resolve(t).ok());
  EXPECT_EQ(d.BinLabel(0, &t), "[0.00, 25.00)");
}

TEST(BinningTest, ResolveErrors) {
  storage::Table t = testutil::MakeTinyTable();
  BinDimension missing;
  missing.column = "ghost";
  EXPECT_FALSE(missing.Resolve(t).ok());

  BinDimension zero_bins;
  zero_bins.column = "value";
  zero_bins.mode = BinningMode::kFixedCount;
  zero_bins.requested_bins = 0;
  EXPECT_FALSE(zero_bins.Resolve(t).ok());

  BinDimension bad_width;
  bad_width.column = "value";
  bad_width.mode = BinningMode::kFixedWidth;
  bad_width.width = 0.0;
  EXPECT_FALSE(bad_width.Resolve(t).ok());
}

TEST(BinningTest, ConstantColumnGetsOneBin) {
  storage::Schema schema(
      {{"c", storage::DataType::kDouble, storage::AttributeKind::kQuantitative}});
  storage::Table t("const", schema);
  for (int i = 0; i < 5; ++i) t.mutable_column(0).AppendDouble(3.0);
  BinDimension d;
  d.column = "c";
  d.mode = BinningMode::kFixedCount;
  d.requested_bins = 10;
  ASSERT_TRUE(d.Resolve(t).ok());
  EXPECT_EQ(d.BinIndex(3.0), 0);
}

TEST(BinningTest, JsonRoundTrip) {
  BinDimension d;
  d.column = "dep_delay";
  d.mode = BinningMode::kFixedWidth;
  d.width = 10.0;
  d.origin = -25.0;
  auto parsed = BinDimension::FromJson(d.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, d);

  BinDimension counted;
  counted.column = "distance";
  counted.mode = BinningMode::kFixedCount;
  counted.requested_bins = 50;
  auto parsed2 = BinDimension::FromJson(counted.ToJson());
  ASSERT_TRUE(parsed2.ok());
  EXPECT_EQ(*parsed2, counted);
}

TEST(BinningTest, SqlExpr) {
  BinDimension nominal;
  nominal.column = "carrier";
  nominal.mode = BinningMode::kNominal;
  EXPECT_EQ(nominal.ToSqlExpr(), "carrier");

  BinDimension fixed;
  fixed.column = "dep_delay";
  fixed.mode = BinningMode::kFixedWidth;
  fixed.lo = 0.0;
  fixed.width = 10.0;
  EXPECT_EQ(fixed.ToSqlExpr(), "FLOOR((dep_delay - 0) / 10)");
}

TEST(BinKeyTest, EncodeDecode2D) {
  const int64_t key = EncodeBinKey(3, 17);
  EXPECT_EQ(BinKeyDim0(key), 3);
  EXPECT_EQ(BinKeyDim1(key), 17);
}

TEST(BinKeyTest, OneDimensionalKeysUseDim1) {
  EXPECT_EQ(EncodeBinKeyChecked(5, 0, /*two_d=*/false), 5);
  EXPECT_EQ(EncodeBinKeyChecked(-1, 0, false), -1);
  EXPECT_EQ(EncodeBinKeyChecked(2, 3, /*two_d=*/true), EncodeBinKey(2, 3));
  EXPECT_EQ(EncodeBinKeyChecked(2, -1, true), -1);
}

/// Property sweep: every (i0, i1) pair below the stride round-trips.
class BinKeyRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(BinKeyRoundTrip, RoundTrips) {
  const int64_t i0 = GetParam();
  for (int64_t i1 : {int64_t{0}, int64_t{1}, int64_t{999},
                     kBinKeyStride - 1}) {
    const int64_t key = EncodeBinKey(i0, i1);
    EXPECT_EQ(BinKeyDim0(key), i0);
    EXPECT_EQ(BinKeyDim1(key), i1);
  }
}

INSTANTIATE_TEST_SUITE_P(Dim0Values, BinKeyRoundTrip,
                         ::testing::Values(0, 1, 7, 100, 4095));

}  // namespace
}  // namespace idebench::query
