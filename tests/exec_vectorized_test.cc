/// \file exec_vectorized_test.cc
/// Differential tests: the vectorized batch pipeline (exec/vectorized.h +
/// dense bin table) must produce results identical to the scalar
/// reference path — bins, estimates, margins, rows_seen/rows_matched —
/// across aggregate types, filter shapes, joined dimension columns,
/// weighted samples, and the dense↔hash bin-table boundary, plus
/// end-to-end through all four engines.

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aqp/confidence.h"
#include "aqp/sampler.h"
#include "common/random.h"
#include "engines/blocking_engine.h"
#include "engines/online_engine.h"
#include "engines/progressive_engine.h"
#include "engines/stratified_engine.h"
#include "exec/aggregator.h"
#include "exec/bound_query.h"
#include "exec/join_index.h"
#include "exec/vectorized.h"
#include "tests/test_util.h"

namespace idebench::exec {
namespace {

using query::AggregateSpec;
using query::AggregateType;
using query::BinDimension;
using query::BinningMode;
using query::QuerySpec;

constexpr int64_t kRows = 4000;

/// Star catalog with enough rows and value shapes to exercise every
/// kernel: NaN aggregate inputs, dangling foreign keys, string/int64/
/// double columns, negative values.
std::shared_ptr<storage::Catalog> MakeWideCatalog() {
  storage::Schema fact_schema({
      {"value", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"amount", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"group", storage::DataType::kString, storage::AttributeKind::kNominal},
      {"code", storage::DataType::kInt64, storage::AttributeKind::kNominal},
      {"dim_id", storage::DataType::kInt64, storage::AttributeKind::kNominal},
  });
  auto fact = std::make_shared<storage::Table>("fact", fact_schema);
  const char* groups[] = {"a", "b", "c", "d", "e", "f"};
  Rng rng(7);
  for (int64_t i = 0; i < kRows; ++i) {
    fact->mutable_column(0).AppendDouble(rng.Uniform(-50.0, 150.0));
    // ~5% NaN aggregate inputs.
    fact->mutable_column(1).AppendDouble(
        rng.Bernoulli(0.05) ? std::numeric_limits<double>::quiet_NaN()
                            : rng.Uniform(0.0, 1000.0));
    fact->mutable_column(2).AppendString(groups[rng.UniformInt(0, 5)]);
    fact->mutable_column(3).AppendInt(rng.UniformInt(0, 12));
    // ~10% dangling keys (no dimension row 99).
    fact->mutable_column(4).AppendInt(
        rng.Bernoulli(0.1) ? 99 : rng.UniformInt(0, 9));
  }

  storage::Schema dim_schema({
      {"dim_id", storage::DataType::kInt64, storage::AttributeKind::kNominal},
      {"dlabel", storage::DataType::kString, storage::AttributeKind::kNominal},
      {"dval", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
  });
  auto dim = std::make_shared<storage::Table>("dims", dim_schema);
  const char* dlabels[] = {"north", "south", "east", "west"};
  for (int64_t i = 0; i < 10; ++i) {
    dim->mutable_column(0).AppendInt(i);
    dim->mutable_column(1).AppendString(dlabels[i % 4]);
    dim->mutable_column(2).AppendDouble(static_cast<double>(i) * 2.5 - 3.0);
  }

  auto catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(catalog->AddTable(fact).ok());
  IDB_CHECK(catalog->AddTable(dim).ok());
  IDB_CHECK(catalog->AddForeignKey({"dim_id", "dims", "dim_id"}).ok());
  return catalog;
}

AggregateSpec Agg(AggregateType type, const std::string& column = "") {
  AggregateSpec a;
  a.type = type;
  a.column = column;
  return a;
}

/// All five aggregate types over `column` plus COUNT.
std::vector<AggregateSpec> AllAggs(const std::string& column) {
  return {Agg(AggregateType::kCount), Agg(AggregateType::kSum, column),
          Agg(AggregateType::kAvg, column), Agg(AggregateType::kMin, column),
          Agg(AggregateType::kMax, column)};
}

void ExpectNearRel(double a, double b, double tol, const char* what,
                   int64_t key, size_t agg) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_LE(std::fabs(a - b), tol * scale)
      << what << " differs in bin " << key << " agg " << agg << ": " << a
      << " vs " << b;
}

/// Asserts two results agree: identical bin keys, estimates and margins
/// within `tol` (relative), identical metadata.
void ExpectResultsMatch(const query::QueryResult& a,
                        const query::QueryResult& b, double tol = 0.0) {
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_DOUBLE_EQ(a.progress, b.progress);
  EXPECT_EQ(a.rows_processed, b.rows_processed);
  ASSERT_EQ(a.bins.size(), b.bins.size());
  for (const auto& [key, bin] : a.bins) {
    auto it = b.bins.find(key);
    ASSERT_NE(it, b.bins.end()) << "bin " << key << " missing";
    ASSERT_EQ(bin.values.size(), it->second.values.size());
    for (size_t i = 0; i < bin.values.size(); ++i) {
      if (tol == 0.0) {
        EXPECT_EQ(bin.values[i].estimate, it->second.values[i].estimate)
            << "estimate, bin " << key << " agg " << i;
        EXPECT_EQ(bin.values[i].margin, it->second.values[i].margin)
            << "margin, bin " << key << " agg " << i;
      } else {
        ExpectNearRel(bin.values[i].estimate, it->second.values[i].estimate,
                      tol, "estimate", key, i);
        ExpectNearRel(bin.values[i].margin, it->second.values[i].margin, tol,
                      "margin", key, i);
      }
    }
  }
}

/// Binds `spec`, feeds the same row/weight sequence through a forced-
/// scalar aggregator and through ProcessBatch on a vectorized one, and
/// checks every snapshot type agrees.  `rows` may repeat / be shuffled.
void RunDifferential(const QuerySpec& spec,
                     const std::shared_ptr<storage::Catalog>& catalog,
                     const std::vector<int64_t>& rows, double weight,
                     BinnedAggregatorOptions vec_options = {},
                     bool expect_dense = true) {
  std::vector<const JoinIndex*> joins;
  std::unique_ptr<JoinIndex> join;
  auto required = BoundQuery::RequiredJoins(spec, *catalog);
  ASSERT_TRUE(required.ok());
  if (!required->empty()) {
    auto built = JoinIndex::BuildLazy(*catalog, catalog->foreign_keys()[0]);
    ASSERT_TRUE(built.ok());
    join = std::make_unique<JoinIndex>(std::move(built).MoveValueUnsafe());
    joins.push_back(join.get());
  }
  auto bound = BoundQuery::Bind(spec, *catalog, joins);
  ASSERT_TRUE(bound.ok());

  BinnedAggregatorOptions scalar_options;
  scalar_options.enable_vectorized = false;
  BinnedAggregator scalar(&*bound, scalar_options);
  BinnedAggregator vectorized(&*bound, vec_options);
  EXPECT_TRUE(vectorized.uses_vectorized());
  EXPECT_EQ(vectorized.uses_dense_bins(),
            expect_dense && vec_options.enable_dense_bins);

  for (int64_t row : rows) scalar.ProcessRowWeighted(row, weight);
  vectorized.ProcessBatch(rows.data(), static_cast<int64_t>(rows.size()),
                          weight);

  EXPECT_EQ(scalar.rows_seen(), vectorized.rows_seen());
  EXPECT_EQ(scalar.rows_matched(), vectorized.rows_matched());
  // Bit-identical: both paths apply the same accumulator updates in the
  // same per-bin order.
  ExpectResultsMatch(scalar.ExactResult(), vectorized.ExactResult());
  ExpectResultsMatch(scalar.EstimateFromUniformSample(2 * kRows, 1.96),
                     vectorized.EstimateFromUniformSample(2 * kRows, 1.96));
  ExpectResultsMatch(scalar.EstimateFromWeightedSample(1.96),
                     vectorized.EstimateFromWeightedSample(1.96));
}

std::vector<int64_t> SequentialRows() {
  std::vector<int64_t> rows(kRows);
  for (int64_t i = 0; i < kRows; ++i) rows[static_cast<size_t>(i)] = i;
  return rows;
}

std::vector<int64_t> ShuffledRows(uint64_t seed) {
  Rng rng(seed);
  aqp::ShuffledIndex index(kRows, &rng);
  return index.permutation();
}

// --- Aggregator-level differentials ----------------------------------------

TEST(VectorizedDifferentialTest, NominalGroupAllAggregateTypes) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = AllAggs("value");
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  RunDifferential(spec, catalog, SequentialRows(), 1.0);
  RunDifferential(spec, catalog, ShuffledRows(11), 1.0);
}

TEST(VectorizedDifferentialTest, RangeInEqFiltersWithNaNInputs) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "value";
  d.mode = BinningMode::kFixedCount;
  d.requested_bins = 16;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "amount"),
                     Agg(AggregateType::kAvg, "amount")};

  expr::Predicate range;
  range.column = "value";
  range.op = expr::CompareOp::kRange;
  range.lo = -20.0;
  range.hi = 120.0;
  spec.filter.And(range);

  expr::Predicate in_set;
  in_set.column = "code";
  in_set.op = expr::CompareOp::kIn;
  in_set.set_values = {1.0, 3.0, 5.0, 7.0, 11.0};
  spec.filter.And(in_set);

  expr::Predicate eq;
  eq.column = "group";
  eq.op = expr::CompareOp::kNeq;
  eq.value = 2.0;  // dictionary code of "c"
  spec.filter.And(eq);

  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  RunDifferential(spec, catalog, SequentialRows(), 1.0);
  RunDifferential(spec, catalog, ShuffledRows(13), 1.0);
}

TEST(VectorizedDifferentialTest, OrderingOpsAndFixedWidthBins) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "value";
  d.mode = BinningMode::kFixedWidth;
  d.width = 13.0;
  d.origin = 0.0;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kMax, "amount")};
  for (auto op : {expr::CompareOp::kGe, expr::CompareOp::kLt}) {
    expr::Predicate p;
    p.column = "amount";  // has NaNs: they must never match
    p.op = op;
    p.value = op == expr::CompareOp::kGe ? 50.0 : 900.0;
    spec.filter.And(p);
  }
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  RunDifferential(spec, catalog, SequentialRows(), 1.0);
}

/// Dedicated IN-set kernel coverage (the range kernels have their own
/// SIMD-specialized cases above): set shapes, types, joined columns, and
/// NaN inputs, each differentially against the scalar reference.
TEST(VectorizedDifferentialTest, InSetKernelShapes) {
  auto catalog = MakeWideCatalog();
  QuerySpec base;
  base.viz_name = "v";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  base.bins = {d};
  base.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "value")};

  const auto run_with = [&](expr::Predicate in_set) {
    QuerySpec spec = base;
    spec.filter.And(std::move(in_set));
    ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
    RunDifferential(spec, catalog, SequentialRows(), 1.0);
    RunDifferential(spec, catalog, ShuffledRows(31), 1.0);
  };

  expr::Predicate in_i64;  // int64 fact column
  in_i64.column = "code";
  in_i64.op = expr::CompareOp::kIn;
  in_i64.set_values = {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0};
  run_with(in_i64);

  expr::Predicate in_single;  // single-element set == equality
  in_single.column = "code";
  in_single.op = expr::CompareOp::kIn;
  in_single.set_values = {5.0};
  run_with(in_single);

  expr::Predicate in_none;  // values absent from the data: empty result
  in_none.column = "code";
  in_none.op = expr::CompareOp::kIn;
  in_none.set_values = {-1.0, 99.0};
  run_with(in_none);

  expr::Predicate in_dict;  // dictionary codes of a string column
  in_dict.column = "group";
  in_dict.op = expr::CompareOp::kIn;
  in_dict.set_values = {0.0, 3.0, 5.0};
  run_with(in_dict);

  expr::Predicate in_f64;  // double column with ~5% NaN inputs
  in_f64.column = "amount";
  in_f64.op = expr::CompareOp::kIn;
  in_f64.set_values = {100.0, 250.5, 999.0};
  run_with(in_f64);

  expr::Predicate in_join;  // dimension column reached through the join
  in_join.column = "dval";
  in_join.op = expr::CompareOp::kIn;
  in_join.set_values = {-3.0, 2.0, 9.5};
  run_with(in_join);
}

/// Dedicated equality/inequality kernel coverage across column types,
/// joined columns, and values that cannot match.
TEST(VectorizedDifferentialTest, EqualityKernelShapes) {
  auto catalog = MakeWideCatalog();
  QuerySpec base;
  base.viz_name = "v";
  BinDimension d;
  d.column = "code";
  d.mode = BinningMode::kNominal;
  base.bins = {d};
  base.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kAvg, "amount")};

  const auto run_with = [&](const std::string& column, expr::CompareOp op,
                            double value) {
    QuerySpec spec = base;
    expr::Predicate p;
    p.column = column;
    p.op = op;
    p.value = value;
    spec.filter.And(p);
    ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
    RunDifferential(spec, catalog, SequentialRows(), 1.0);
    RunDifferential(spec, catalog, ShuffledRows(37), 1.0);
  };

  run_with("code", expr::CompareOp::kEq, 7.0);     // int64 fact column
  run_with("code", expr::CompareOp::kNeq, 7.0);
  run_with("group", expr::CompareOp::kEq, 1.0);    // string dictionary code
  run_with("group", expr::CompareOp::kNeq, 4.0);
  run_with("value", expr::CompareOp::kEq, 12.5);   // double: exact compare
  run_with("amount", expr::CompareOp::kNeq, 0.0);  // NaN never matches
  run_with("code", expr::CompareOp::kEq, -5.0);    // no row matches
  run_with("code", expr::CompareOp::kEq, 6.5);     // fractional vs int64
  run_with("dlabel", expr::CompareOp::kEq, 2.0);   // joined dictionary code
  run_with("dval", expr::CompareOp::kNeq, 2.0);    // joined double
}

TEST(VectorizedDifferentialTest, TwoDimensionalBinning) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d1;
  d1.column = "value";
  d1.mode = BinningMode::kFixedCount;
  d1.requested_bins = 12;
  BinDimension d2;
  d2.column = "code";
  d2.mode = BinningMode::kNominal;
  spec.bins = {d1, d2};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "amount")};
  expr::Predicate p;
  p.column = "amount";
  p.op = expr::CompareOp::kRange;
  p.lo = 100.0;
  p.hi = 800.0;
  spec.filter.And(p);
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  RunDifferential(spec, catalog, SequentialRows(), 1.0);
  RunDifferential(spec, catalog, ShuffledRows(17), 1.0);
}

TEST(VectorizedDifferentialTest, JoinedDimensionColumns) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "dlabel";  // reached through the join, with dangling keys
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kAvg, "dval"),
                     Agg(AggregateType::kSum, "value")};
  expr::Predicate fact_pred;
  fact_pred.column = "value";
  fact_pred.op = expr::CompareOp::kGe;
  fact_pred.value = 0.0;
  spec.filter.And(fact_pred);
  expr::Predicate dim_pred;
  dim_pred.column = "dval";  // joined filter column
  dim_pred.op = expr::CompareOp::kRange;
  dim_pred.lo = -10.0;
  dim_pred.hi = 18.0;
  spec.filter.And(dim_pred);
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  RunDifferential(spec, catalog, SequentialRows(), 1.0);
  RunDifferential(spec, catalog, ShuffledRows(19), 1.0);
}

TEST(VectorizedDifferentialTest, WeightedSamples) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = AllAggs("amount");
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  for (double weight : {1.0, 4.0, 117.5}) {
    RunDifferential(spec, catalog, ShuffledRows(23), weight);
  }
}

TEST(VectorizedDifferentialTest, DenseAndHashBinTablesAgree) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "value";
  d.mode = BinningMode::kFixedCount;
  d.requested_bins = 64;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "value")};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());

  // Default options: key space 64 -> dense table.
  RunDifferential(spec, catalog, SequentialRows(), 1.0);
  // Dense disabled: vectorized kernels + hash table.
  BinnedAggregatorOptions no_dense;
  no_dense.enable_dense_bins = false;
  RunDifferential(spec, catalog, SequentialRows(), 1.0, no_dense);
  // Key space just over the configured limit: transparent hash fallback.
  BinnedAggregatorOptions tiny_limit;
  tiny_limit.dense_key_limit = 63;
  RunDifferential(spec, catalog, SequentialRows(), 1.0, tiny_limit,
                  /*expect_dense=*/false);
  // Accumulator budget exceeded (64 keys * 2 aggs > 100): hash fallback.
  BinnedAggregatorOptions tiny_accums;
  tiny_accums.dense_accum_limit = 100;
  RunDifferential(spec, catalog, SequentialRows(), 1.0, tiny_accums,
                  /*expect_dense=*/false);
}

TEST(VectorizedDifferentialTest, MixedScalarAndBatchFeedsAgree) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "value")};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregatorOptions scalar_options;
  scalar_options.enable_vectorized = false;
  BinnedAggregator scalar(&*bound, scalar_options);
  BinnedAggregator mixed(&*bound);

  const std::vector<int64_t> rows = ShuffledRows(29);
  // First half row-at-a-time, second half batched: both stores must
  // accumulate into the same bins.
  for (int64_t i = 0; i < kRows / 2; ++i) {
    scalar.ProcessRow(rows[static_cast<size_t>(i)]);
    mixed.ProcessRow(rows[static_cast<size_t>(i)]);
  }
  for (int64_t row : std::vector<int64_t>(rows.begin() + kRows / 2,
                                          rows.end())) {
    scalar.ProcessRow(row);
  }
  mixed.ProcessBatch(rows.data() + kRows / 2, kRows - kRows / 2);
  EXPECT_EQ(scalar.rows_matched(), mixed.rows_matched());
  ExpectResultsMatch(scalar.ExactResult(), mixed.ExactResult());
}

TEST(VectorizedDifferentialTest, ResetClearsDenseTable) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount)};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound);
  ASSERT_TRUE(agg.uses_dense_bins());
  agg.ProcessRange(0, kRows);
  EXPECT_GT(agg.rows_matched(), 0);
  agg.Reset();
  EXPECT_EQ(agg.rows_seen(), 0);
  EXPECT_TRUE(agg.ExactResult().bins.empty());
  agg.ProcessRange(0, 10);
  EXPECT_EQ(agg.rows_seen(), 10);
}

// --- Engine-level differentials --------------------------------------------

/// Engine harness: runs `spec` to completion on `engine`.
query::QueryResult RunEngineToCompletion(engines::Engine* engine,
                                         const QuerySpec& spec) {
  auto handle = engine->Submit(spec);
  IDB_CHECK(handle.ok());
  for (int i = 0; i < 10'000 && !engine->IsDone(*handle); ++i) {
    engine->RunFor(*handle, 60'000'000'000LL);
  }
  IDB_CHECK(engine->IsDone(*handle));
  auto result = engine->PollResult(*handle);
  IDB_CHECK(result.ok());
  return *result;
}

QuerySpec CountSumByGroupSpec(const storage::Catalog& catalog) {
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount)};
  IDB_CHECK(spec.ResolveBins(catalog).ok());
  return spec;
}

TEST(VectorizedEngineDifferentialTest, BlockingEngineMatchesScalarScan) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec = CountSumByGroupSpec(*catalog);
  spec.aggregates.push_back(Agg(AggregateType::kSum, "value"));
  spec.aggregates.push_back(Agg(AggregateType::kAvg, "amount"));

  engines::BlockingEngine engine;
  ASSERT_TRUE(engine.Prepare(catalog).ok());
  query::QueryResult result = RunEngineToCompletion(&engine, spec);

  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregatorOptions scalar_options;
  scalar_options.enable_vectorized = false;
  BinnedAggregator scalar(&*bound, scalar_options);
  scalar.ProcessRange(0, kRows);
  query::QueryResult expected = scalar.ExactResult();
  expected.available = true;
  // Identical feed order -> bit-identical accumulators.
  ExpectResultsMatch(expected, result);
}

TEST(VectorizedEngineDifferentialTest, ProgressiveEngineCompleteWalkIsExact) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec = CountSumByGroupSpec(*catalog);
  spec.aggregates.push_back(Agg(AggregateType::kSum, "value"));

  engines::ProgressiveEngine engine;
  ASSERT_TRUE(engine.Prepare(catalog).ok());
  query::QueryResult result = RunEngineToCompletion(&engine, spec);
  EXPECT_TRUE(result.exact);

  // A complete walk touches every row exactly once, so the estimate
  // collapses to the exact answer; the walk order differs from the scan
  // order, so sums may differ in the last ulps (within 1e-9 relative).
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregatorOptions scalar_options;
  scalar_options.enable_vectorized = false;
  BinnedAggregator scalar(&*bound, scalar_options);
  scalar.ProcessRange(0, kRows);
  query::QueryResult expected =
      scalar.EstimateFromUniformSample(kRows, aqp::ZScoreForConfidence(0.95));
  ASSERT_EQ(expected.bins.size(), result.bins.size());
  for (const auto& [key, bin] : expected.bins) {
    auto it = result.bins.find(key);
    ASSERT_NE(it, result.bins.end());
    for (size_t i = 0; i < bin.values.size(); ++i) {
      ExpectNearRel(bin.values[i].estimate, it->second.values[i].estimate,
                    1e-9, "estimate", key, i);
      EXPECT_EQ(it->second.values[i].margin, 0.0);
    }
  }
}

TEST(VectorizedEngineDifferentialTest, OnlineEngineCompleteWalkIsExact) {
  auto catalog = MakeWideCatalog();
  QuerySpec spec = CountSumByGroupSpec(*catalog);  // COUNT: supported online

  engines::OnlineEngine engine;
  ASSERT_TRUE(engine.Prepare(catalog).ok());
  query::QueryResult result = RunEngineToCompletion(&engine, spec);
  EXPECT_TRUE(result.exact);

  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregatorOptions scalar_options;
  scalar_options.enable_vectorized = false;
  BinnedAggregator scalar(&*bound, scalar_options);
  scalar.ProcessRange(0, kRows);
  query::QueryResult expected = scalar.ExactResult();
  expected.available = true;
  // COUNT accumulators are integers: exact equality even across orders.
  ExpectResultsMatch(expected, result);
}

TEST(VectorizedEngineDifferentialTest, StratifiedEngineMatchesScalarSample) {
  // The stratified engine needs a de-normalized catalog.
  auto catalog = std::make_shared<storage::Catalog>();
  auto fact = std::make_shared<storage::Table>(testutil::MakeTinyTable());
  ASSERT_TRUE(catalog->AddTable(fact).ok());

  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  spec.aggregates = {Agg(AggregateType::kCount),
                     Agg(AggregateType::kSum, "value"),
                     Agg(AggregateType::kAvg, "value")};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());

  engines::StratifiedEngineConfig config;
  config.stratify_by = "group";
  config.sampling_rate = 0.5;
  config.min_rows_per_stratum = 2;
  engines::StratifiedEngine engine(config);
  ASSERT_TRUE(engine.Prepare(catalog).ok());
  query::QueryResult result = RunEngineToCompletion(&engine, spec);

  // Feed the engine's own sample through the scalar reference.
  const aqp::StratifiedSample& sample = engine.sample();
  ASSERT_GT(sample.size(), 0);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregatorOptions scalar_options;
  scalar_options.enable_vectorized = false;
  BinnedAggregator scalar(&*bound, scalar_options);
  for (int64_t i = 0; i < sample.size(); ++i) {
    scalar.ProcessRowWeighted(sample.rows[static_cast<size_t>(i)],
                              sample.weights[static_cast<size_t>(i)]);
  }
  query::QueryResult expected = scalar.EstimateFromWeightedSample(
      aqp::ZScoreForConfidence(config.confidence_level));
  ASSERT_EQ(expected.bins.size(), result.bins.size());
  for (const auto& [key, bin] : expected.bins) {
    auto it = result.bins.find(key);
    ASSERT_NE(it, result.bins.end());
    ASSERT_EQ(bin.values.size(), it->second.values.size());
    for (size_t i = 0; i < bin.values.size(); ++i) {
      EXPECT_EQ(bin.values[i].estimate, it->second.values[i].estimate)
          << "bin " << key << " agg " << i;
      EXPECT_EQ(bin.values[i].margin, it->second.values[i].margin)
          << "bin " << key << " agg " << i;
    }
  }
}

// --- Satellite regression: join index + min/max cache ----------------------

TEST(JoinIndexVectorizedTest, FlatMappingMatchesDimRow) {
  auto catalog = MakeWideCatalog();
  auto lazy = JoinIndex::BuildLazy(*catalog, catalog->foreign_keys()[0]);
  auto mat = JoinIndex::BuildMaterialized(*catalog, catalog->foreign_keys()[0]);
  ASSERT_TRUE(lazy.ok());
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(lazy->mapping_size(), kRows);
  EXPECT_EQ(mat->mapping_size(), kRows);
  EXPECT_GT(lazy->miss_count(), 0);  // dangling keys exist
  EXPECT_EQ(lazy->miss_count(), mat->miss_count());
  for (int64_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(lazy->DimRow(r), mat->DimRow(r));
    EXPECT_EQ(lazy->mapping_data()[r], lazy->DimRow(r));
  }
}

TEST(JoinIndexVectorizedTest, FractionalDoubleKeysRejected) {
  storage::Schema fact_schema(
      {{"fk", storage::DataType::kDouble,
        storage::AttributeKind::kQuantitative}});
  auto fact = std::make_shared<storage::Table>("fact", fact_schema);
  fact->mutable_column(0).AppendDouble(1.25);  // fractional key

  storage::Schema dim_schema(
      {{"pk", storage::DataType::kDouble,
        storage::AttributeKind::kQuantitative}});
  auto dim = std::make_shared<storage::Table>("dims", dim_schema);
  dim->mutable_column(0).AppendDouble(1.0);  // integral double: fine

  auto catalog = std::make_shared<storage::Catalog>();
  ASSERT_TRUE(catalog->AddTable(fact).ok());
  ASSERT_TRUE(catalog->AddTable(dim).ok());
  ASSERT_TRUE(catalog->AddForeignKey({"fk", "dims", "pk"}).ok());

  auto built = JoinIndex::BuildLazy(*catalog, catalog->foreign_keys()[0]);
  EXPECT_FALSE(built.ok()) << "fractional double key must be rejected";

  // Integral double keys build fine and join exactly.
  fact->mutable_column(0).AppendDouble(1.0);
  auto catalog2 = std::make_shared<storage::Catalog>();
  auto fact2 = std::make_shared<storage::Table>("fact", fact_schema);
  fact2->mutable_column(0).AppendDouble(1.0);
  fact2->mutable_column(0).AppendDouble(7.0);  // dangling
  ASSERT_TRUE(catalog2->AddTable(fact2).ok());
  ASSERT_TRUE(catalog2->AddTable(dim).ok());
  ASSERT_TRUE(catalog2->AddForeignKey({"fk", "dims", "pk"}).ok());
  auto ok = JoinIndex::BuildMaterialized(*catalog2,
                                         catalog2->foreign_keys()[0]);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->DimRow(0), 0);
  EXPECT_EQ(ok->DimRow(1), -1);
}

TEST(ColumnMinMaxCacheTest, MaintainedAcrossAppends) {
  storage::Column col({"x", storage::DataType::kInt64,
                       storage::AttributeKind::kQuantitative});
  EXPECT_DOUBLE_EQ(col.Min(), 0.0);  // empty
  col.AppendInt(5);
  EXPECT_DOUBLE_EQ(col.Min(), 5.0);
  EXPECT_DOUBLE_EQ(col.Max(), 5.0);
  col.AppendInt(-3);
  EXPECT_DOUBLE_EQ(col.Min(), -3.0);  // cache tracks the append
  EXPECT_DOUBLE_EQ(col.Max(), 5.0);
  col.AppendInt(11);
  EXPECT_DOUBLE_EQ(col.Max(), 11.0);
  // Repeated reads hit the cache (same values).
  EXPECT_DOUBLE_EQ(col.Min(), -3.0);
  EXPECT_DOUBLE_EQ(col.Max(), 11.0);
}

}  // namespace
}  // namespace idebench::exec
