#include "common/string_util.h"

#include <gtest/gtest.h>

namespace idebench {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToLower("123-ABC"), "123-abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("workflow.json", "work"));
  EXPECT_FALSE(StartsWith("a", "ab"));
  EXPECT_TRUE(EndsWith("workflow.json", ".json"));
  EXPECT_FALSE(EndsWith("x", "xy"));
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 1.239), "1.24");
  // Long output beyond any small static buffer.
  const std::string long_out = StringPrintf("%0512d", 1);
  EXPECT_EQ(long_out.size(), 512u);
}

TEST(StringUtilTest, FormatDoubleAndPercent) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.1234), "12.3%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(StringUtilTest, HumanCount) {
  EXPECT_EQ(HumanCount(100'000'000), "100M");
  EXPECT_EQ(HumanCount(500'000'000), "500M");
  EXPECT_EQ(HumanCount(1'000'000'000), "1B");
  EXPECT_EQ(HumanCount(1'500'000'000), "1.5B");
  EXPECT_EQ(HumanCount(2'500), "2.5K");
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(123), "123");
}

}  // namespace
}  // namespace idebench
