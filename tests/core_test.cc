/// \file core_test.cc
/// Additional end-to-end coverage of the core façade, the CLI-facing
/// configuration surface, report round-trips on live data, and failure
/// injection at the driver boundary.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/idebench.h"
#include "engines/stratified_engine.h"
#include "tests/test_util.h"

namespace idebench::core {
namespace {

DatasetConfig TinyConfig() {
  DatasetConfig config;
  config.nominal_rows = 50'000'000;
  config.actual_rows = 15'000;
  config.seed_rows = 8'000;
  config.seed = 3;
  return config;
}

TEST(CoreTest, MultipleWorkflowTypesProduceTypedRecords) {
  BenchmarkConfig config;
  config.engine = "progressive";
  config.dataset = TinyConfig();
  config.time_requirements_s = {1.0};
  config.workflows_per_type = 1;
  config.workflow_types = {workflow::WorkflowType::kIndependent,
                           workflow::WorkflowType::kOneToN};
  auto outcome = RunBenchmark(config);
  ASSERT_TRUE(outcome.ok());
  bool saw_independent = false;
  bool saw_one_to_n = false;
  for (const auto& r : outcome->records) {
    if (r.workflow_type == "independent") saw_independent = true;
    if (r.workflow_type == "one_to_n") saw_one_to_n = true;
  }
  EXPECT_TRUE(saw_independent);
  EXPECT_TRUE(saw_one_to_n);
}

TEST(CoreTest, SummaryGroupsOnePerTimeRequirement) {
  BenchmarkConfig config;
  config.engine = "blocking";
  config.dataset = TinyConfig();
  config.time_requirements_s = {0.5, 1.0, 3.0};
  config.workflows_per_type = 1;
  auto outcome = RunBenchmark(config);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->summary.size(), 3u);
  EXPECT_NE(outcome->summary[0].group.find("0.5"), std::string::npos);
  EXPECT_NE(outcome->summary[2].group.find("10.0"),
            outcome->summary[2].group.find("3.0"));
}

TEST(CoreTest, DetailedReportCsvRoundTripsThroughDisk) {
  BenchmarkConfig config;
  config.engine = "stratified";
  config.dataset = TinyConfig();
  config.time_requirements_s = {1.0};
  config.workflows_per_type = 1;
  auto outcome = RunBenchmark(config);
  ASSERT_TRUE(outcome.ok());

  const std::string path =
      std::string(::testing::TempDir()) + "/core_detailed.csv";
  ASSERT_TRUE(report::WriteDetailedReport(outcome->records, path).ok());
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header, report::DetailedReportHeader());
  size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, outcome->records.size());
  std::remove(path.c_str());
}

TEST(CoreTest, FrontendEngineRunsEndToEnd) {
  BenchmarkConfig config;
  config.engine = "frontend";
  config.dataset = TinyConfig();
  config.time_requirements_s = {0.5, 5.0};
  config.workflows_per_type = 1;
  auto outcome = RunBenchmark(config);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->summary.size(), 2u);
  // Rendering takes >= 1 s, so TR = 0.5 s always violates.
  EXPECT_DOUBLE_EQ(outcome->summary[0].tr_violation_rate, 1.0);
  EXPECT_LT(outcome->summary[1].tr_violation_rate, 1.0);
}

TEST(CoreTest, NormalizedRunOnStratifiedEngineFailsPrepare) {
  // The stratified engine rejects star schemas at Prepare (as System X
  // does); RunBenchmark surfaces that as an error rather than data loss.
  BenchmarkConfig config;
  config.engine = "stratified";
  config.dataset = TinyConfig();
  config.dataset.normalized = true;
  config.time_requirements_s = {1.0};
  config.workflows_per_type = 1;
  auto outcome = RunBenchmark(config);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotImplemented);
}

TEST(CoreTest, SeedChangesWorkload) {
  BenchmarkConfig a = {};
  a.engine = "blocking";
  a.dataset = TinyConfig();
  a.time_requirements_s = {3.0};
  a.workflows_per_type = 1;
  BenchmarkConfig b = a;
  b.seed = a.seed + 1;
  auto ra = RunBenchmark(a);
  auto rb = RunBenchmark(b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  // Different seeds generate different workflows.
  bool differs = ra->records.size() != rb->records.size();
  for (size_t i = 0; !differs && i < ra->records.size(); ++i) {
    differs = ra->records[i].sql != rb->records[i].sql;
  }
  EXPECT_TRUE(differs);
}

TEST(CoreTest, ProgressiveBeatsBlockingAtTightTr) {
  // The paper's headline: at interactive TRs, a progressive engine
  // delivers results where a blocking engine delivers nothing.
  BenchmarkConfig config;
  config.dataset = TinyConfig();
  config.dataset.nominal_rows = 500'000'000;
  config.time_requirements_s = {0.5};
  config.workflows_per_type = 2;

  config.engine = "blocking";
  auto blocking = RunBenchmark(config);
  config.engine = "progressive";
  auto progressive = RunBenchmark(config);
  ASSERT_TRUE(blocking.ok());
  ASSERT_TRUE(progressive.ok());
  EXPECT_GT(blocking->summary[0].tr_violation_rate, 0.95);
  EXPECT_LT(progressive->summary[0].tr_violation_rate, 0.1);
}

TEST(CoreTest, StratifiedSampleRateImprovesQuality) {
  // Design-choice ablation as a regression test: a 10x bigger offline
  // sample must not deliver worse missing-bin rates.
  auto catalog_result = BuildFlightsCatalog(TinyConfig());
  ASSERT_TRUE(catalog_result.ok());
  auto catalog = *catalog_result;
  auto oracle = std::make_shared<driver::GroundTruthOracle>(catalog);
  workflow::GeneratorConfig generator_config;
  workflow::WorkflowGenerator generator(catalog->fact_table(),
                                        generator_config, 17);
  auto wf = generator.Generate(workflow::WorkflowType::kMixed, "w");
  ASSERT_TRUE(wf.ok());

  auto run_with_rate = [&](double rate) {
    engines::StratifiedEngineConfig config;
    config.sampling_rate = rate;
    config.min_rows_per_stratum = 1;
    engines::StratifiedEngine engine(config);
    driver::Settings settings;
    settings.time_requirement = SecondsToMicros(60.0);  // quality only
    settings.think_time = SecondsToMicros(1.0);
    driver::BenchmarkDriver benchmark_driver(settings, &engine, catalog,
                                             oracle);
    IDB_CHECK(benchmark_driver.PrepareEngine().ok());
    std::vector<driver::QueryRecord> records;
    IDB_CHECK(benchmark_driver.RunWorkflow(*wf, &records).ok());
    double missing = 0.0;
    for (const auto& r : records) missing += r.metrics.missing_bins;
    return missing / static_cast<double>(records.size());
  };

  const double coarse = run_with_rate(0.01);
  const double fine = run_with_rate(0.10);
  EXPECT_LE(fine, coarse + 1e-9);
}

}  // namespace
}  // namespace idebench::core
