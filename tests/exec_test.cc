#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/aggregator.h"
#include "exec/bound_query.h"
#include "exec/join_index.h"
#include "tests/test_util.h"

namespace idebench::exec {
namespace {

using query::AggregateSpec;
using query::AggregateType;
using query::BinDimension;
using query::BinningMode;
using query::QuerySpec;

/// A two-table star catalog:
/// fact(value double, dim_id int64), dims(dim_id, label string).
std::shared_ptr<storage::Catalog> MakeStarCatalog() {
  storage::Schema fact_schema(
      {{"value", storage::DataType::kDouble,
        storage::AttributeKind::kQuantitative},
       {"dim_id", storage::DataType::kInt64, storage::AttributeKind::kNominal}});
  auto fact = std::make_shared<storage::Table>("fact", fact_schema);
  // dim_id cycles 0,1,2; one fact row (id 9) dangles.
  for (int i = 0; i < 9; ++i) {
    fact->mutable_column(0).AppendDouble(i * 10.0);
    fact->mutable_column(1).AppendInt(i % 3);
  }
  fact->mutable_column(0).AppendDouble(90.0);
  fact->mutable_column(1).AppendInt(99);  // no matching dimension row

  storage::Schema dim_schema(
      {{"dim_id", storage::DataType::kInt64, storage::AttributeKind::kNominal},
       {"label", storage::DataType::kString, storage::AttributeKind::kNominal}});
  auto dim = std::make_shared<storage::Table>("dims", dim_schema);
  const char* labels[] = {"red", "green", "blue"};
  for (int i = 0; i < 3; ++i) {
    dim->mutable_column(0).AppendInt(i);
    dim->mutable_column(1).AppendString(labels[i]);
  }

  auto catalog = std::make_shared<storage::Catalog>();
  IDB_CHECK(catalog->AddTable(fact).ok());
  IDB_CHECK(catalog->AddTable(dim).ok());
  IDB_CHECK(catalog->AddForeignKey({"dim_id", "dims", "dim_id"}).ok());
  return catalog;
}

TEST(JoinIndexTest, MaterializedMapsAllRows) {
  auto catalog = MakeStarCatalog();
  auto index = JoinIndex::BuildMaterialized(*catalog,
                                            catalog->foreign_keys()[0]);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->is_lazy());
  EXPECT_EQ(index->DimRow(0), 0);
  EXPECT_EQ(index->DimRow(1), 1);
  EXPECT_EQ(index->DimRow(2), 2);
  EXPECT_EQ(index->DimRow(3), 0);
  EXPECT_EQ(index->DimRow(9), -1);  // dangling key
  EXPECT_EQ(index->miss_count(), 1);
}

TEST(JoinIndexTest, LazyMatchesMaterialized) {
  auto catalog = MakeStarCatalog();
  const auto& fk = catalog->foreign_keys()[0];
  auto materialized = JoinIndex::BuildMaterialized(*catalog, fk);
  auto lazy = JoinIndex::BuildLazy(*catalog, fk);
  ASSERT_TRUE(materialized.ok());
  ASSERT_TRUE(lazy.ok());
  EXPECT_TRUE(lazy->is_lazy());
  for (int64_t r = 0; r < 10; ++r) {
    EXPECT_EQ(materialized->DimRow(r), lazy->DimRow(r)) << "row " << r;
  }
}

TEST(JoinIndexTest, UnknownDimensionFails) {
  auto catalog = MakeStarCatalog();
  storage::ForeignKey bad{"dim_id", "missing", "dim_id"};
  EXPECT_FALSE(JoinIndex::BuildMaterialized(*catalog, bad).ok());
  EXPECT_FALSE(JoinIndex::BuildLazy(*catalog, bad).ok());
}

TEST(BoundQueryTest, RequiredJoinsDetectsDimensionColumns) {
  auto catalog = MakeStarCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "label";  // lives in the dimension
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  AggregateSpec agg;
  agg.type = AggregateType::kCount;
  spec.aggregates = {agg};

  auto dims = BoundQuery::RequiredJoins(spec, *catalog);
  ASSERT_TRUE(dims.ok());
  EXPECT_EQ(*dims, (std::vector<std::string>{"dims"}));

  // Fact-only query needs no joins.
  QuerySpec fact_spec;
  fact_spec.viz_name = "v2";
  BinDimension vd;
  vd.column = "value";
  vd.mode = BinningMode::kFixedCount;
  fact_spec.bins = {vd};
  fact_spec.aggregates = {agg};
  auto no_dims = BoundQuery::RequiredJoins(fact_spec, *catalog);
  ASSERT_TRUE(no_dims.ok());
  EXPECT_TRUE(no_dims->empty());

  // Unknown column is an error.
  QuerySpec bad;
  bad.viz_name = "v3";
  BinDimension bd;
  bd.column = "ghost";
  bad.bins = {bd};
  bad.aggregates = {agg};
  EXPECT_FALSE(BoundQuery::RequiredJoins(bad, *catalog).ok());
}

TEST(BoundQueryTest, BindFailsWithoutNeededJoin) {
  auto catalog = MakeStarCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "label";
  d.mode = BinningMode::kNominal;
  ASSERT_TRUE(d.Resolve(*catalog->GetTable("dims")).ok());
  d.resolved = true;
  spec.bins = {d};
  AggregateSpec agg;
  agg.type = AggregateType::kCount;
  spec.aggregates = {agg};
  EXPECT_FALSE(BoundQuery::Bind(spec, *catalog, {}).ok());
}

TEST(BoundQueryTest, JoinedGroupByCountsInnerJoinRows) {
  auto catalog = MakeStarCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "label";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  AggregateSpec agg;
  agg.type = AggregateType::kCount;
  spec.aggregates = {agg};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());

  auto join = JoinIndex::BuildMaterialized(*catalog,
                                           catalog->foreign_keys()[0]);
  ASSERT_TRUE(join.ok());
  auto bound = BoundQuery::Bind(spec, *catalog, {&*join});
  ASSERT_TRUE(bound.ok());

  BinnedAggregator aggregator(&*bound);
  aggregator.ProcessRange(0, 10);
  query::QueryResult result = aggregator.ExactResult();
  // 9 matched rows over 3 labels; the dangling row is dropped.
  ASSERT_EQ(result.bins.size(), 3u);
  for (const auto& [key, bin] : result.bins) {
    EXPECT_DOUBLE_EQ(bin.values[0].estimate, 3.0);
  }
}

TEST(AggregatorTest, ExactCountByGroup) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound);
  agg.ProcessRange(0, 8);
  EXPECT_EQ(agg.rows_seen(), 8);
  EXPECT_EQ(agg.rows_matched(), 8);

  query::QueryResult r = agg.ExactResult();
  EXPECT_TRUE(r.exact);
  ASSERT_EQ(r.bins.size(), 2u);
  EXPECT_DOUBLE_EQ(r.bins.at(0).values[0].estimate, 4.0);  // "a"
  EXPECT_DOUBLE_EQ(r.bins.at(1).values[0].estimate, 4.0);  // "b"
}

TEST(AggregatorTest, ExactAllAggregateTypes) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = "group";
  d.mode = BinningMode::kNominal;
  spec.bins = {d};
  for (AggregateType t : {AggregateType::kCount, AggregateType::kSum,
                          AggregateType::kAvg, AggregateType::kMin,
                          AggregateType::kMax}) {
    AggregateSpec a;
    a.type = t;
    if (t != AggregateType::kCount) a.column = "value";
    spec.aggregates.push_back(a);
  }
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound);
  agg.ProcessRange(0, 8);
  query::QueryResult r = agg.ExactResult();
  // Group "a" rows: 10, 30, 50, 70.
  const auto& a_bin = r.bins.at(0);
  EXPECT_DOUBLE_EQ(a_bin.values[0].estimate, 4.0);    // count
  EXPECT_DOUBLE_EQ(a_bin.values[1].estimate, 160.0);  // sum
  EXPECT_DOUBLE_EQ(a_bin.values[2].estimate, 40.0);   // avg
  EXPECT_DOUBLE_EQ(a_bin.values[3].estimate, 10.0);   // min
  EXPECT_DOUBLE_EQ(a_bin.values[4].estimate, 70.0);   // max
}

TEST(AggregatorTest, FilterIsApplied) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  expr::Predicate p;
  p.column = "flag";
  p.op = expr::CompareOp::kEq;
  p.value = 1.0;
  spec.filter.And(p);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound);
  agg.ProcessRange(0, 8);
  EXPECT_EQ(agg.rows_matched(), 4);
  query::QueryResult r = agg.ExactResult();
  EXPECT_DOUBLE_EQ(r.bins.at(0).values[0].estimate, 2.0);
  EXPECT_DOUBLE_EQ(r.bins.at(1).values[0].estimate, 2.0);
}

TEST(AggregatorTest, UniformSampleScalesCounts) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound);
  // Feed the first 4 rows as a "sample" of the 8-row population.
  agg.ProcessRange(0, 4);
  query::QueryResult r = agg.EstimateFromUniformSample(8, 1.96);
  EXPECT_FALSE(r.exact);
  EXPECT_DOUBLE_EQ(r.progress, 0.5);
  // 2 "a" rows in the sample -> estimate 2 * (8/4) = 4.
  EXPECT_DOUBLE_EQ(r.bins.at(0).values[0].estimate, 4.0);
  EXPECT_GT(r.bins.at(0).values[0].margin, 0.0);
}

TEST(AggregatorTest, UniformSampleCompleteIsExact) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound);
  agg.ProcessRange(0, 8);
  query::QueryResult r = agg.EstimateFromUniformSample(8, 1.96);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.progress, 1.0);
  EXPECT_DOUBLE_EQ(r.bins.at(0).values[0].estimate, 4.0);
  EXPECT_DOUBLE_EQ(r.bins.at(0).values[0].margin, 0.0);
}

TEST(AggregatorTest, MarginShrinksWithSampleSize) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  BinnedAggregator small(&*bound);
  small.ProcessRange(0, 2);
  BinnedAggregator large(&*bound);
  large.ProcessRange(0, 6);
  const double margin_small =
      small.EstimateFromUniformSample(8, 1.96).bins.at(0).values[0].margin;
  const double margin_large =
      large.EstimateFromUniformSample(8, 1.96).bins.at(0).values[0].margin;
  EXPECT_GT(margin_small, margin_large);
}

TEST(AggregatorTest, WeightedSampleHorvitzThompson) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound);
  // One row per group with weight 4 each: HT count estimate = 4 per bin.
  agg.ProcessRowWeighted(0, 4.0);  // group a
  agg.ProcessRowWeighted(1, 4.0);  // group b
  query::QueryResult r = agg.EstimateFromWeightedSample(1.96);
  EXPECT_DOUBLE_EQ(r.bins.at(0).values[0].estimate, 4.0);
  EXPECT_DOUBLE_EQ(r.bins.at(1).values[0].estimate, 4.0);
  EXPECT_GT(r.bins.at(0).values[0].margin, 0.0);
}

TEST(AggregatorTest, WeightedAvgIsRatioEstimate) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeAvgValueSpec(*catalog, 1);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound);
  agg.ProcessRowWeighted(0, 2.0);  // value 10
  agg.ProcessRowWeighted(7, 6.0);  // value 80
  query::QueryResult r = agg.EstimateFromWeightedSample(1.96);
  // Weighted mean: (2*10 + 6*80) / 8 = 62.5.
  ASSERT_EQ(r.bins.size(), 1u);
  EXPECT_DOUBLE_EQ(r.bins.begin()->second.values[0].estimate, 62.5);
}

TEST(AggregatorTest, ResetClearsState) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());
  BinnedAggregator agg(&*bound);
  agg.ProcessRange(0, 8);
  agg.Reset();
  EXPECT_EQ(agg.rows_seen(), 0);
  EXPECT_TRUE(agg.ExactResult().bins.empty());
}

/// Property sweep: the scaled count estimate is unbiased over many random
/// sample prefixes (statistical sanity of the estimator).
class UniformEstimatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(UniformEstimatorProperty, CountEstimateNearTruthOnAverage) {
  const int sample_rows = GetParam();
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto bound = BoundQuery::Bind(spec, *catalog);
  ASSERT_TRUE(bound.ok());

  idebench::Rng rng(static_cast<uint64_t>(sample_rows));
  double total_estimate = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    BinnedAggregator agg(&*bound);
    for (int i = 0; i < sample_rows; ++i) {
      agg.ProcessRow(rng.UniformInt(0, 7));
    }
    auto r = agg.EstimateFromUniformSample(8, 1.96);
    auto it = r.bins.find(0);
    if (it != r.bins.end()) total_estimate += it->second.values[0].estimate;
  }
  // True count of group "a" is 4; the with-replacement trials average
  // should land close.
  EXPECT_NEAR(total_estimate / trials, 4.0, 0.5);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, UniformEstimatorProperty,
                         ::testing::Values(2, 4, 6));

}  // namespace
}  // namespace idebench::exec
