/// \file net_ratekeeper_test.cc
/// Admission-control contract (net/ratekeeper.h): the throttle ->
/// degrade -> reject ladder, per-tenant isolation, budget shrinkage
/// monotonicity, backlog-driven degradation, and explicit reasons on
/// every refusal.

#include "net/ratekeeper.h"

#include <string>

#include <gtest/gtest.h>

namespace idebench::net {
namespace {

RatekeeperOptions SmallOptions() {
  RatekeeperOptions o;
  o.soft_live_limit = 4;
  o.hard_live_limit = 8;
  o.degrade_levels = 4;
  o.min_budget_scale = 0.25;
  o.degraded_update_interval = 50'000;
  o.tenant_rate = 0.0;  // tenant throttling off unless a test arms it
  o.backlog_degrade = 0;
  o.backlog_reject = 0;
  return o;
}

TEST(RatekeeperTest, AdmitsAtFullBudgetBelowSoftLimit) {
  Ratekeeper keeper(SmallOptions());
  for (int i = 0; i < 4; ++i) {
    const AdmitDecision d = keeper.Admit("t", /*now=*/0);
    ASSERT_TRUE(d.admitted());
    EXPECT_EQ(d.degrade_level, 0);
    EXPECT_DOUBLE_EQ(d.budget_scale, 1.0);
    EXPECT_EQ(d.update_interval, 0);
    keeper.OnAdmitted(1);
  }
  EXPECT_EQ(keeper.stats().degraded, 0);
}

TEST(RatekeeperTest, DegradesBetweenSoftAndHardThenRejects) {
  Ratekeeper keeper(SmallOptions());
  // Fill to the hard limit, recording the ladder.
  double last_scale = 1.0;
  int last_level = 0;
  for (int i = 0; i < 8; ++i) {
    const AdmitDecision d = keeper.Admit("t", 0);
    ASSERT_TRUE(d.admitted()) << "i=" << i;
    EXPECT_GE(d.degrade_level, last_level);   // monotone down the ladder
    EXPECT_LE(d.budget_scale, last_scale);    // budgets only shrink
    if (d.degrade_level > 0) {
      EXPECT_GT(d.update_interval, 0);        // cadence stretches
      EXPECT_LT(d.budget_scale, 1.0);
    }
    last_level = d.degrade_level;
    last_scale = d.budget_scale;
    keeper.OnAdmitted(1);
  }
  // Degradation demonstrably happened before any refusal.
  EXPECT_GT(keeper.stats().degraded, 0);
  EXPECT_LT(keeper.stats().min_budget_scale_granted, 1.0);
  EXPECT_EQ(keeper.stats().rejected, 0);

  // At the hard limit: explicit rejection with reason + retry hint.
  const AdmitDecision d = keeper.Admit("t", 0);
  EXPECT_EQ(d.action, AdmitAction::kReject);
  EXPECT_STREQ(d.reason, "over_capacity");
  EXPECT_GT(d.retry_after, 0);
  EXPECT_EQ(keeper.stats().rejected, 1);

  // Finalizations reopen admission.
  keeper.OnFinalized(8);
  const AdmitDecision d2 = keeper.Admit("t", 0);
  EXPECT_TRUE(d2.admitted());
  EXPECT_EQ(d2.degrade_level, 0);
}

TEST(RatekeeperTest, BudgetScaleReachesConfiguredFloor) {
  RatekeeperOptions o = SmallOptions();
  Ratekeeper keeper(o);
  keeper.OnAdmitted(7);  // just below hard: deepest admitted level
  const AdmitDecision d = keeper.Admit("t", 0);
  ASSERT_TRUE(d.admitted());
  EXPECT_EQ(d.degrade_level, o.degrade_levels);
  EXPECT_DOUBLE_EQ(d.budget_scale, o.min_budget_scale);
}

TEST(RatekeeperTest, TenantThrottleIsolatesNoisyTenant) {
  RatekeeperOptions o = SmallOptions();
  o.soft_live_limit = 1000;  // keep global admission out of the picture
  o.hard_live_limit = 2000;
  o.tenant_rate = 10.0;   // 10/s sustained
  o.tenant_burst = 3.0;   // 3 of burst
  Ratekeeper keeper(o);

  // The noisy tenant burns its burst instantly...
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(keeper.Admit("noisy", 0).admitted()) << i;
  }
  const AdmitDecision throttled = keeper.Admit("noisy", 0);
  EXPECT_EQ(throttled.action, AdmitAction::kThrottle);
  EXPECT_STREQ(throttled.reason, "tenant_throttled");
  EXPECT_GT(throttled.retry_after, 0);

  // ...while a quiet tenant sails through at the same instant.
  EXPECT_TRUE(keeper.Admit("quiet", 0).admitted());

  // After the hinted wait, the noisy tenant's bucket refilled.
  const AdmitDecision later =
      keeper.Admit("noisy", throttled.retry_after + 1);
  EXPECT_TRUE(later.admitted());
  EXPECT_EQ(keeper.stats().throttled, 1);
}

TEST(RatekeeperTest, GlobalRejectRefundsTenantToken) {
  RatekeeperOptions o = SmallOptions();
  o.tenant_rate = 10.0;
  o.tenant_burst = 1.0;  // exactly one token
  Ratekeeper keeper(o);
  keeper.OnAdmitted(8);  // at the hard limit: everything rejects

  const AdmitDecision d = keeper.Admit("t", 0);
  EXPECT_EQ(d.action, AdmitAction::kReject);
  // The refusal was global; the tenant's only token must survive so a
  // post-backoff retry is not double-punished.
  keeper.OnFinalized(8);
  EXPECT_TRUE(keeper.Admit("t", 0).admitted());
}

TEST(RatekeeperTest, RejectRefundNeverExceedsBurstCap) {
  RatekeeperOptions o = SmallOptions();
  o.tenant_rate = 10.0;
  o.tenant_burst = 2.0;
  Ratekeeper keeper(o);
  keeper.OnAdmitted(8);  // at the hard limit: everything rejects

  // A full bucket hammered with same-timestamp rejections must not bank
  // refunds above the burst cap.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(keeper.Admit("t", 0).action, AdmitAction::kReject);
  }
  keeper.OnFinalized(8);
  // Exactly burst-many admissions remain before the throttle bites.
  EXPECT_TRUE(keeper.Admit("t", 0).admitted());
  EXPECT_TRUE(keeper.Admit("t", 0).admitted());
  EXPECT_EQ(keeper.Admit("t", 0).action, AdmitAction::kThrottle);
}

TEST(RatekeeperTest, BacklogDegradesThenRejects) {
  RatekeeperOptions o = SmallOptions();
  o.backlog_degrade = 100'000;   // one level per 100ms of lag
  o.backlog_reject = 1'000'000;  // reject at 1s of lag
  Ratekeeper keeper(o);

  // Idle scheduler, no lag: full budget.
  EXPECT_EQ(keeper.Admit("t", 0, /*backlog=*/0).degrade_level, 0);
  // Moderate lag degrades even with zero live queries.
  const AdmitDecision degraded = keeper.Admit("t", 0, /*backlog=*/250'000);
  ASSERT_TRUE(degraded.admitted());
  EXPECT_GT(degraded.degrade_level, 0);
  EXPECT_LT(degraded.budget_scale, 1.0);
  // Deep lag: no admission can meet a deadline; reject with reason.
  const AdmitDecision rejected = keeper.Admit("t", 0, /*backlog=*/2'000'000);
  EXPECT_EQ(rejected.action, AdmitAction::kReject);
  EXPECT_STREQ(rejected.reason, "backlogged");
}

TEST(RatekeeperTest, StatsAccountEveryDecision) {
  Ratekeeper keeper(SmallOptions());
  keeper.OnAdmitted(6);  // between soft and hard: degraded admissions
  ASSERT_TRUE(keeper.Admit("t", 0).admitted());
  keeper.OnAdmitted(2);  // at hard
  EXPECT_EQ(keeper.Admit("t", 0).action, AdmitAction::kReject);

  const RatekeeperStats stats = keeper.stats();
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.degraded, 1);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.live, 8);
  EXPECT_EQ(stats.peak_live, 8);
  EXPECT_GT(stats.max_level_seen, 0);
}

// --- Wire retry hint --------------------------------------------------------

/// Regression: the server serialized `retry_after / 1000`, so a positive
/// sub-millisecond throttle went out as `retry_after_ms: 0` — "retry
/// immediately" — and a literal client busy-looped against the keeper.
/// The hint must round *up*: positive always >= 1ms, zero stays zero.
TEST(RatekeeperTest, RetryAfterMillisRoundsUpNeverToZero) {
  EXPECT_EQ(RetryAfterMillis(0), 0);
  EXPECT_EQ(RetryAfterMillis(-5), 0);
  EXPECT_EQ(RetryAfterMillis(1), 1);
  EXPECT_EQ(RetryAfterMillis(999), 1);
  EXPECT_EQ(RetryAfterMillis(1000), 1);
  EXPECT_EQ(RetryAfterMillis(1001), 2);
  EXPECT_EQ(RetryAfterMillis(250'000), 250);
  EXPECT_EQ(RetryAfterMillis(250'001), 251);
}

/// A real sub-millisecond throttle verdict from the keeper survives the
/// millisecond conversion as a positive wait.
TEST(RatekeeperTest, SubMillisecondThrottleHintSerializesPositive) {
  RatekeeperOptions o = SmallOptions();
  o.soft_live_limit = 1000;
  o.hard_live_limit = 2000;
  o.tenant_rate = 10'000.0;  // refill 10 tokens/ms: deficit < 1ms
  o.tenant_burst = 1.0;
  Ratekeeper keeper(o);
  ASSERT_TRUE(keeper.Admit("t", 0).admitted());
  const AdmitDecision throttled = keeper.Admit("t", 0);
  ASSERT_EQ(throttled.action, AdmitAction::kThrottle);
  ASSERT_GT(throttled.retry_after, 0);
  ASSERT_LT(throttled.retry_after, 1000);  // the regression's window
  EXPECT_GE(RetryAfterMillis(throttled.retry_after), 1);
}

}  // namespace
}  // namespace idebench::net
