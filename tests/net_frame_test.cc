/// \file net_frame_test.cc
/// Frame codec contract (net/frame.h): round-trip identity through
/// arbitrary chunkings, truncated input waits, and every framing
/// violation — oversized prefix, empty frame, garbage payload, torn
/// bytes — returns a clean Status and poisons the decoder.  Runs under
/// ASan+UBSan in CI: nothing here may crash or leak.

#include "net/frame.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace idebench::net {
namespace {

JsonValue SampleMessage(int i) {
  JsonValue j = JsonValue::Object();
  j.Set("type", "update");
  j.Set("query", static_cast<int64_t>(i));
  JsonValue bins = JsonValue::Array();
  for (int b = 0; b < i % 5; ++b) bins.Append(static_cast<int64_t>(b * 10));
  j.Set("bins", std::move(bins));
  j.Set("note", std::string(static_cast<size_t>(i % 97), 'x'));
  return j;
}

TEST(NetFrameTest, RoundTripSingleFrame) {
  const JsonValue msg = SampleMessage(3);
  const std::string frame = EncodeFrame(msg);
  ASSERT_GT(frame.size(), kFrameHeaderBytes);

  FrameDecoder decoder;
  decoder.Feed(frame);
  JsonValue out;
  auto next = decoder.Next(&out);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ASSERT_TRUE(*next);
  EXPECT_TRUE(out == msg);
  EXPECT_EQ(decoder.buffered(), 0u);

  // Nothing further buffered: Next reports "need more bytes".
  auto again = decoder.Next(&out);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST(NetFrameTest, RoundTripManyFramesArbitraryChunking) {
  // Property test: any message sequence through any chunking decodes to
  // the identical sequence.
  Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<JsonValue> messages;
    std::string stream;
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < n; ++i) {
      messages.push_back(SampleMessage(static_cast<int>(rng.UniformInt(0, 200))));
      stream += EncodeFrame(messages.back());
    }

    FrameDecoder decoder;
    std::vector<JsonValue> decoded;
    size_t offset = 0;
    while (offset < stream.size()) {
      const size_t chunk = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(stream.size() - offset)));
      decoder.Feed(stream.data() + offset, chunk);
      offset += chunk;
      while (true) {
        JsonValue out;
        auto next = decoder.Next(&out);
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        if (!*next) break;
        decoded.push_back(std::move(out));
      }
    }
    ASSERT_EQ(decoded.size(), messages.size());
    for (size_t i = 0; i < messages.size(); ++i) {
      EXPECT_TRUE(decoded[i] == messages[i]) << "trial " << trial << " msg " << i;
    }
  }
}

TEST(NetFrameTest, TruncatedInputWaitsWithoutError) {
  const std::string frame = EncodeFrame(SampleMessage(7));
  // Every strict prefix is "need more bytes", never an error.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(frame.data(), cut);
    JsonValue out;
    auto next = decoder.Next(&out);
    ASSERT_TRUE(next.ok()) << "cut=" << cut;
    EXPECT_FALSE(*next) << "cut=" << cut;
    EXPECT_FALSE(decoder.failed());
  }
}

TEST(NetFrameTest, OversizedLengthPrefixRejectedBeforeBuffering) {
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  // Header claims 1 GiB; the decoder must refuse without waiting for
  // (or allocating) the payload.
  const char header[4] = {0x40, 0x00, 0x00, 0x00};
  decoder.Feed(header, sizeof(header));
  JsonValue out;
  auto next = decoder.Next(&out);
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(decoder.failed());

  // Poisoned: further feeds/calls return the same error.
  decoder.Feed("more", 4);
  auto poisoned = decoder.Next(&out);
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), next.status().code());
}

TEST(NetFrameTest, ZeroLengthFrameRejected) {
  FrameDecoder decoder;
  const char header[4] = {0, 0, 0, 0};
  decoder.Feed(header, sizeof(header));
  JsonValue out;
  auto next = decoder.Next(&out);
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(decoder.failed());
}

TEST(NetFrameTest, GarbagePayloadRejected) {
  // Correct framing, payload not JSON.
  const std::string payload = "\x01\x02{{{ not json";
  std::string frame;
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(static_cast<char>(payload.size()));
  frame += payload;

  FrameDecoder decoder;
  decoder.Feed(frame);
  JsonValue out;
  auto next = decoder.Next(&out);
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(decoder.failed());
}

TEST(NetFrameTest, TrailingGarbageAfterJsonDocumentRejected) {
  const std::string payload = "{\"a\":1} trailing";
  std::string frame;
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(static_cast<char>(payload.size()));
  frame += payload;

  FrameDecoder decoder;
  decoder.Feed(frame);
  JsonValue out;
  auto next = decoder.Next(&out);
  ASSERT_FALSE(next.ok());
}

TEST(NetFrameTest, RandomGarbageNeverCrashes) {
  // Fuzz: arbitrary byte soup in arbitrary chunks.  Outcomes are
  // "message", "wait", or "Status error"; never a crash (ASan/UBSan
  // guard the rest).
  Rng rng(0xFEEDFACE);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder decoder(/*max_frame_bytes=*/4096);
    const int len = static_cast<int>(rng.UniformInt(1, 512));
    std::string soup;
    soup.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      soup.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    size_t offset = 0;
    bool dead = false;
    while (offset < soup.size() && !dead) {
      const size_t chunk = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(soup.size() - offset)));
      decoder.Feed(soup.data() + offset, chunk);
      offset += chunk;
      while (true) {
        JsonValue out;
        auto next = decoder.Next(&out);
        if (!next.ok()) {
          dead = true;  // poisoned; drop the "connection"
          break;
        }
        if (!*next) break;
      }
    }
  }
}

TEST(NetFrameTest, FlagsValidFramesInsideGarbageStream) {
  // A valid frame followed by garbage: the first decodes, the garbage
  // poisons, and the error persists.
  const JsonValue msg = SampleMessage(1);
  std::string stream = EncodeFrame(msg);
  stream += std::string(64, '\xff');

  FrameDecoder decoder;
  decoder.Feed(stream);
  JsonValue out;
  auto first = decoder.Next(&out);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(*first);
  EXPECT_TRUE(out == msg);

  auto second = decoder.Next(&out);
  ASSERT_FALSE(second.ok());  // 0xffffffff length prefix: oversized
  EXPECT_TRUE(decoder.failed());
}

}  // namespace
}  // namespace idebench::net
