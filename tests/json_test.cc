#include "common/json.h"

#include <gtest/gtest.h>

namespace idebench {
namespace {

TEST(JsonTest, DefaultIsNull) {
  JsonValue v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.Dump(), "null");
}

TEST(JsonTest, Scalars) {
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue(3.5).Dump(), "3.5");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, StringEscaping) {
  JsonValue v(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(v.Dump(), "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(JsonTest, ArrayBuildAndAccess) {
  JsonValue arr = JsonValue::Array();
  arr.Append(1);
  arr.Append("two");
  arr.Append(JsonValue::Array());
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(0).AsInt(), 1);
  EXPECT_EQ(arr.at(1).AsString(), "two");
  EXPECT_TRUE(arr.at(2).is_array());
  EXPECT_TRUE(arr.at(99).is_null());  // out of range -> null
  EXPECT_EQ(arr.Dump(), "[1,\"two\",[]]");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zeta", 1);
  obj.Set("alpha", 2);
  EXPECT_EQ(obj.Dump(), "{\"zeta\":1,\"alpha\":2}");
}

TEST(JsonTest, ObjectSetOverwrites) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", 1);
  obj.Set("k", 2);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.Get("k").AsInt(), 2);
}

TEST(JsonTest, TypedGettersWithDefaults) {
  JsonValue obj = JsonValue::Object();
  obj.Set("d", 1.5);
  obj.Set("i", 7);
  obj.Set("b", true);
  obj.Set("s", "text");
  EXPECT_DOUBLE_EQ(obj.GetDouble("d", 0.0), 1.5);
  EXPECT_EQ(obj.GetInt("i", 0), 7);
  EXPECT_TRUE(obj.GetBool("b", false));
  EXPECT_EQ(obj.GetString("s", ""), "text");
  // Missing or mistyped keys return the fallback.
  EXPECT_DOUBLE_EQ(obj.GetDouble("missing", 9.0), 9.0);
  EXPECT_EQ(obj.GetInt("s", -1), -1);
  EXPECT_FALSE(obj.GetBool("i", false));
  EXPECT_EQ(obj.GetString("d", "fb"), "fb");
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string text =
      R"({"name":"wf","count":3,"ratio":0.25,"flag":true,"none":null,)"
      R"("items":[1,2,{"k":"v"}]})";
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(JsonTest, ParsePrettyOutput) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", 1);
  auto reparsed = JsonValue::Parse(obj.DumpPretty());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, obj);
}

TEST(JsonTest, ParseWhitespaceTolerant) {
  auto parsed = JsonValue::Parse("  {\n \"a\" :\t[ 1 , 2 ]\r\n}  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("a").size(), 2u);
}

TEST(JsonTest, ParseEscapes) {
  auto parsed = JsonValue::Parse(R"("a\n\t\"\\A")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\n\t\"\\A");
}

TEST(JsonTest, ParseNegativeAndScientificNumbers) {
  auto parsed = JsonValue::Parse("[-1.5e3, 2E-2, -0]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->at(0).AsDouble(), -1500.0);
  EXPECT_DOUBLE_EQ(parsed->at(1).AsDouble(), 0.02);
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("1 trailing").ok());
}

TEST(JsonTest, DeepNestingRejected) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  JsonValue v(std::numeric_limits<double>::infinity());
  EXPECT_EQ(v.Dump(), "null");
}

TEST(JsonTest, EqualityIsStructural) {
  auto a = JsonValue::Parse(R"({"x":[1,2],"y":"s"})");
  auto b = JsonValue::Parse(R"({"x":[1,2],"y":"s"})");
  auto c = JsonValue::Parse(R"({"x":[1,3],"y":"s"})");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(*a == *c);
}

TEST(JsonTest, LargeIntegersKeepPrecision) {
  JsonValue v(int64_t{123456789012345});
  EXPECT_EQ(v.Dump(), "123456789012345");
}

}  // namespace
}  // namespace idebench
