#include "expr/predicate.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace idebench::expr {
namespace {

TEST(PredicateTest, ComparisonOperators) {
  Predicate p;
  p.op = CompareOp::kLt;
  p.value = 5.0;
  EXPECT_TRUE(p.Matches(4.9));
  EXPECT_FALSE(p.Matches(5.0));

  p.op = CompareOp::kLe;
  EXPECT_TRUE(p.Matches(5.0));
  EXPECT_FALSE(p.Matches(5.1));

  p.op = CompareOp::kGt;
  EXPECT_TRUE(p.Matches(5.1));
  EXPECT_FALSE(p.Matches(5.0));

  p.op = CompareOp::kGe;
  EXPECT_TRUE(p.Matches(5.0));
  EXPECT_FALSE(p.Matches(4.9));

  p.op = CompareOp::kEq;
  EXPECT_TRUE(p.Matches(5.0));
  EXPECT_FALSE(p.Matches(5.0001));

  p.op = CompareOp::kNeq;
  EXPECT_FALSE(p.Matches(5.0));
  EXPECT_TRUE(p.Matches(6.0));
}

TEST(PredicateTest, RangeIsHalfOpen) {
  Predicate p;
  p.op = CompareOp::kRange;
  p.lo = 10.0;
  p.hi = 20.0;
  EXPECT_TRUE(p.Matches(10.0));
  EXPECT_TRUE(p.Matches(19.999));
  EXPECT_FALSE(p.Matches(20.0));
  EXPECT_FALSE(p.Matches(9.999));
}

TEST(PredicateTest, InSet) {
  Predicate p;
  p.op = CompareOp::kIn;
  p.set_values = {1.0, 3.0};
  EXPECT_TRUE(p.Matches(1.0));
  EXPECT_TRUE(p.Matches(3.0));
  EXPECT_FALSE(p.Matches(2.0));
  p.set_values.clear();
  EXPECT_FALSE(p.Matches(1.0));  // empty IN matches nothing
}

TEST(PredicateTest, OpNameRoundTrip) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNeq, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe,
                       CompareOp::kRange, CompareOp::kIn}) {
    auto parsed = CompareOpFromName(CompareOpName(op));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(CompareOpFromName("bogus").ok());
}

TEST(PredicateTest, JsonRoundTrip) {
  Predicate range;
  range.column = "dep_delay";
  range.op = CompareOp::kRange;
  range.lo = -5.0;
  range.hi = 30.0;
  auto parsed = Predicate::FromJson(range.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, range);

  Predicate in;
  in.column = "carrier";
  in.op = CompareOp::kIn;
  in.set_values = {0.0, 4.0};
  in.string_values = {"AA", "DL"};
  auto parsed_in = Predicate::FromJson(in.ToJson());
  ASSERT_TRUE(parsed_in.ok());
  EXPECT_EQ(*parsed_in, in);

  Predicate eq;
  eq.column = "flag";
  eq.op = CompareOp::kEq;
  eq.value = 1.0;
  auto parsed_eq = Predicate::FromJson(eq.ToJson());
  ASSERT_TRUE(parsed_eq.ok());
  EXPECT_EQ(*parsed_eq, eq);
}

TEST(PredicateTest, FromJsonErrors) {
  EXPECT_FALSE(Predicate::FromJson(JsonValue(3)).ok());
  JsonValue no_column = JsonValue::Object();
  no_column.Set("op", "eq");
  EXPECT_FALSE(Predicate::FromJson(no_column).ok());
}

TEST(PredicateTest, SqlRendering) {
  storage::Table t = testutil::MakeTinyTable();
  Predicate range;
  range.column = "value";
  range.op = CompareOp::kRange;
  range.lo = 10;
  range.hi = 20;
  EXPECT_EQ(range.ToSql(&t), "(value >= 10 AND value < 20)");

  Predicate in;
  in.column = "group";
  in.op = CompareOp::kIn;
  in.set_values = {0.0, 1.0};  // dictionary codes of "a" and "b"
  EXPECT_EQ(in.ToSql(&t), "group IN ('a', 'b')");

  Predicate eq;
  eq.column = "flag";
  eq.op = CompareOp::kEq;
  eq.value = 1.0;
  EXPECT_EQ(eq.ToSql(&t), "flag = 1");
}

TEST(FilterExprTest, ConjunctionSemantics) {
  storage::Table t = testutil::MakeTinyTable();
  FilterExpr f;
  Predicate ge;
  ge.column = "value";
  ge.op = CompareOp::kGe;
  ge.value = 30.0;
  f.And(ge);
  Predicate grp;
  grp.column = "group";
  grp.op = CompareOp::kEq;
  grp.value = 0.0;  // "a"
  f.And(grp);

  // Rows with value >= 30 AND group == "a": rows 2 (30,a), 4 (50,a), 6 (70,a).
  int matches = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (f.Matches(t, r)) ++matches;
  }
  EXPECT_EQ(matches, 3);
}

TEST(FilterExprTest, EmptyMatchesEverything) {
  storage::Table t = testutil::MakeTinyTable();
  FilterExpr f;
  EXPECT_TRUE(f.empty());
  for (int64_t r = 0; r < t.num_rows(); ++r) EXPECT_TRUE(f.Matches(t, r));
}

TEST(FilterExprTest, MissingColumnFailsClosed) {
  storage::Table t = testutil::MakeTinyTable();
  FilterExpr f;
  Predicate p;
  p.column = "ghost";
  p.op = CompareOp::kGe;
  p.value = 0.0;
  f.And(p);
  EXPECT_FALSE(f.Matches(t, 0));
}

TEST(FilterExprTest, ReplaceOnSwapsPredicate) {
  FilterExpr f;
  Predicate a;
  a.column = "x";
  a.op = CompareOp::kGe;
  a.value = 1.0;
  f.And(a);
  Predicate b;
  b.column = "x";
  b.op = CompareOp::kLt;
  b.value = 5.0;
  f.ReplaceOn(b);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.predicates()[0].op, CompareOp::kLt);

  f.RemoveOn("x");
  EXPECT_TRUE(f.empty());
}

TEST(FilterExprTest, ColumnsDeduplicated) {
  FilterExpr f;
  Predicate p1;
  p1.column = "x";
  f.And(p1);
  Predicate p2;
  p2.column = "y";
  f.And(p2);
  Predicate p3;
  p3.column = "x";
  f.And(p3);
  EXPECT_EQ(f.Columns(), (std::vector<std::string>{"x", "y"}));
}

TEST(FilterExprTest, JsonRoundTrip) {
  FilterExpr f;
  Predicate p;
  p.column = "dep_delay";
  p.op = CompareOp::kRange;
  p.lo = 0;
  p.hi = 60;
  f.And(p);
  auto parsed = FilterExpr::FromJson(f.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, f);
  EXPECT_FALSE(FilterExpr::FromJson(JsonValue("no")).ok());
}

TEST(FilterExprTest, SqlJoinsWithAnd) {
  storage::Table t = testutil::MakeTinyTable();
  FilterExpr f;
  Predicate a;
  a.column = "value";
  a.op = CompareOp::kGe;
  a.value = 30;
  f.And(a);
  Predicate b;
  b.column = "flag";
  b.op = CompareOp::kEq;
  b.value = 1;
  f.And(b);
  EXPECT_EQ(f.ToSql(&t), "value >= 30 AND flag = 1");
  EXPECT_EQ(FilterExpr().ToSql(&t), "");
}

}  // namespace
}  // namespace idebench::expr
