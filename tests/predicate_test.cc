#include "expr/predicate.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace idebench::expr {
namespace {

TEST(PredicateTest, ComparisonOperators) {
  Predicate p;
  p.op = CompareOp::kLt;
  p.value = 5.0;
  EXPECT_TRUE(p.Matches(4.9));
  EXPECT_FALSE(p.Matches(5.0));

  p.op = CompareOp::kLe;
  EXPECT_TRUE(p.Matches(5.0));
  EXPECT_FALSE(p.Matches(5.1));

  p.op = CompareOp::kGt;
  EXPECT_TRUE(p.Matches(5.1));
  EXPECT_FALSE(p.Matches(5.0));

  p.op = CompareOp::kGe;
  EXPECT_TRUE(p.Matches(5.0));
  EXPECT_FALSE(p.Matches(4.9));

  p.op = CompareOp::kEq;
  EXPECT_TRUE(p.Matches(5.0));
  EXPECT_FALSE(p.Matches(5.0001));

  p.op = CompareOp::kNeq;
  EXPECT_FALSE(p.Matches(5.0));
  EXPECT_TRUE(p.Matches(6.0));
}

TEST(PredicateTest, RangeIsHalfOpen) {
  Predicate p;
  p.op = CompareOp::kRange;
  p.lo = 10.0;
  p.hi = 20.0;
  EXPECT_TRUE(p.Matches(10.0));
  EXPECT_TRUE(p.Matches(19.999));
  EXPECT_FALSE(p.Matches(20.0));
  EXPECT_FALSE(p.Matches(9.999));
}

TEST(PredicateTest, InSet) {
  Predicate p;
  p.op = CompareOp::kIn;
  p.set_values = {1.0, 3.0};
  EXPECT_TRUE(p.Matches(1.0));
  EXPECT_TRUE(p.Matches(3.0));
  EXPECT_FALSE(p.Matches(2.0));
  p.set_values.clear();
  EXPECT_FALSE(p.Matches(1.0));  // empty IN matches nothing
}

TEST(PredicateTest, OpNameRoundTrip) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNeq, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe,
                       CompareOp::kRange, CompareOp::kIn}) {
    auto parsed = CompareOpFromName(CompareOpName(op));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(CompareOpFromName("bogus").ok());
}

TEST(PredicateTest, JsonRoundTrip) {
  Predicate range;
  range.column = "dep_delay";
  range.op = CompareOp::kRange;
  range.lo = -5.0;
  range.hi = 30.0;
  auto parsed = Predicate::FromJson(range.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, range);

  Predicate in;
  in.column = "carrier";
  in.op = CompareOp::kIn;
  in.set_values = {0.0, 4.0};
  in.string_values = {"AA", "DL"};
  auto parsed_in = Predicate::FromJson(in.ToJson());
  ASSERT_TRUE(parsed_in.ok());
  EXPECT_EQ(*parsed_in, in);

  Predicate eq;
  eq.column = "flag";
  eq.op = CompareOp::kEq;
  eq.value = 1.0;
  auto parsed_eq = Predicate::FromJson(eq.ToJson());
  ASSERT_TRUE(parsed_eq.ok());
  EXPECT_EQ(*parsed_eq, eq);
}

TEST(PredicateTest, FromJsonErrors) {
  EXPECT_FALSE(Predicate::FromJson(JsonValue(3)).ok());
  JsonValue no_column = JsonValue::Object();
  no_column.Set("op", "eq");
  EXPECT_FALSE(Predicate::FromJson(no_column).ok());
}

TEST(PredicateTest, SqlRendering) {
  storage::Table t = testutil::MakeTinyTable();
  Predicate range;
  range.column = "value";
  range.op = CompareOp::kRange;
  range.lo = 10;
  range.hi = 20;
  EXPECT_EQ(range.ToSql(&t), "(value >= 10 AND value < 20)");

  Predicate in;
  in.column = "group";
  in.op = CompareOp::kIn;
  in.set_values = {0.0, 1.0};  // dictionary codes of "a" and "b"
  EXPECT_EQ(in.ToSql(&t), "group IN ('a', 'b')");

  Predicate eq;
  eq.column = "flag";
  eq.op = CompareOp::kEq;
  eq.value = 1.0;
  EXPECT_EQ(eq.ToSql(&t), "flag = 1");
}

TEST(FilterExprTest, ConjunctionSemantics) {
  storage::Table t = testutil::MakeTinyTable();
  FilterExpr f;
  Predicate ge;
  ge.column = "value";
  ge.op = CompareOp::kGe;
  ge.value = 30.0;
  f.And(ge);
  Predicate grp;
  grp.column = "group";
  grp.op = CompareOp::kEq;
  grp.value = 0.0;  // "a"
  f.And(grp);

  // Rows with value >= 30 AND group == "a": rows 2 (30,a), 4 (50,a), 6 (70,a).
  int matches = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (f.Matches(t, r)) ++matches;
  }
  EXPECT_EQ(matches, 3);
}

TEST(FilterExprTest, EmptyMatchesEverything) {
  storage::Table t = testutil::MakeTinyTable();
  FilterExpr f;
  EXPECT_TRUE(f.empty());
  for (int64_t r = 0; r < t.num_rows(); ++r) EXPECT_TRUE(f.Matches(t, r));
}

TEST(FilterExprTest, MissingColumnFailsClosed) {
  storage::Table t = testutil::MakeTinyTable();
  FilterExpr f;
  Predicate p;
  p.column = "ghost";
  p.op = CompareOp::kGe;
  p.value = 0.0;
  f.And(p);
  EXPECT_FALSE(f.Matches(t, 0));
}

TEST(FilterExprTest, ReplaceOnSwapsPredicate) {
  FilterExpr f;
  Predicate a;
  a.column = "x";
  a.op = CompareOp::kGe;
  a.value = 1.0;
  f.And(a);
  Predicate b;
  b.column = "x";
  b.op = CompareOp::kLt;
  b.value = 5.0;
  f.ReplaceOn(b);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.predicates()[0].op, CompareOp::kLt);

  f.RemoveOn("x");
  EXPECT_TRUE(f.empty());
}

TEST(FilterExprTest, ColumnsDeduplicated) {
  FilterExpr f;
  Predicate p1;
  p1.column = "x";
  f.And(p1);
  Predicate p2;
  p2.column = "y";
  f.And(p2);
  Predicate p3;
  p3.column = "x";
  f.And(p3);
  EXPECT_EQ(f.Columns(), (std::vector<std::string>{"x", "y"}));
}

TEST(FilterExprTest, JsonRoundTrip) {
  FilterExpr f;
  Predicate p;
  p.column = "dep_delay";
  p.op = CompareOp::kRange;
  p.lo = 0;
  p.hi = 60;
  f.And(p);
  auto parsed = FilterExpr::FromJson(f.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, f);
  EXPECT_FALSE(FilterExpr::FromJson(JsonValue("no")).ok());
}

namespace {

Predicate Make(const std::string& column, CompareOp op, double value = 0.0) {
  Predicate p;
  p.column = column;
  p.op = op;
  p.value = value;
  return p;
}

Predicate MakeRange(const std::string& column, double lo, double hi) {
  Predicate p;
  p.column = column;
  p.op = CompareOp::kRange;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Predicate MakeIn(const std::string& column, std::vector<double> values) {
  Predicate p;
  p.column = column;
  p.op = CompareOp::kIn;
  p.set_values = std::move(values);
  return p;
}

}  // namespace

TEST(PredicateImpliesTest, PointPredicates) {
  // kEq implies anything that accepts its value.
  EXPECT_TRUE(Implies(Make("x", CompareOp::kEq, 5), MakeRange("x", 0, 10)));
  EXPECT_FALSE(Implies(Make("x", CompareOp::kEq, 15), MakeRange("x", 0, 10)));
  EXPECT_TRUE(Implies(Make("x", CompareOp::kEq, 5),
                      Make("x", CompareOp::kNeq, 6)));
  EXPECT_TRUE(Implies(Make("x", CompareOp::kEq, 5), MakeIn("x", {1, 5, 9})));
  // Different columns never imply.
  EXPECT_FALSE(Implies(Make("x", CompareOp::kEq, 5), MakeRange("y", 0, 10)));
  // Identity.
  EXPECT_TRUE(Implies(MakeIn("x", {1, 2}), MakeIn("x", {1, 2})));
  // kIn subset and superset.
  EXPECT_TRUE(Implies(MakeIn("x", {1, 2}), MakeIn("x", {1, 2, 3})));
  EXPECT_FALSE(Implies(MakeIn("x", {1, 2, 3}), MakeIn("x", {1, 2})));
  EXPECT_TRUE(Implies(MakeIn("x", {2, 4}), MakeRange("x", 0, 10)));
  // Empty IN sets are conservatively not implication sources.
  EXPECT_FALSE(Implies(MakeIn("x", {}), MakeRange("x", 0, 10)));
}

TEST(PredicateImpliesTest, RangeContainmentAndOrdering) {
  EXPECT_TRUE(Implies(MakeRange("x", 2, 8), MakeRange("x", 0, 10)));
  EXPECT_TRUE(Implies(MakeRange("x", 0, 10), MakeRange("x", 0, 10)));
  EXPECT_FALSE(Implies(MakeRange("x", 0, 10), MakeRange("x", 2, 8)));
  EXPECT_FALSE(Implies(MakeRange("x", 2, 12), MakeRange("x", 0, 10)));
  // Range vs ordering operators: [2, 8) means v >= 2 and v < 8.
  EXPECT_TRUE(Implies(MakeRange("x", 2, 8), Make("x", CompareOp::kGe, 2)));
  EXPECT_FALSE(Implies(MakeRange("x", 2, 8), Make("x", CompareOp::kGt, 2)));
  EXPECT_TRUE(Implies(MakeRange("x", 2, 8), Make("x", CompareOp::kGt, 1)));
  EXPECT_TRUE(Implies(MakeRange("x", 2, 8), Make("x", CompareOp::kLt, 8)));
  EXPECT_TRUE(Implies(MakeRange("x", 2, 8), Make("x", CompareOp::kLe, 8)));
  EXPECT_FALSE(Implies(MakeRange("x", 2, 8), Make("x", CompareOp::kLt, 7)));
  EXPECT_TRUE(Implies(MakeRange("x", 2, 8), Make("x", CompareOp::kNeq, 9)));
  EXPECT_TRUE(Implies(MakeRange("x", 2, 8), Make("x", CompareOp::kNeq, 8)));
  EXPECT_FALSE(Implies(MakeRange("x", 2, 8), Make("x", CompareOp::kNeq, 5)));
  // Ordering vs ordering.
  EXPECT_TRUE(Implies(Make("x", CompareOp::kLt, 5), Make("x", CompareOp::kLe, 5)));
  EXPECT_FALSE(Implies(Make("x", CompareOp::kLe, 5), Make("x", CompareOp::kLt, 5)));
  EXPECT_TRUE(Implies(Make("x", CompareOp::kLe, 4), Make("x", CompareOp::kLt, 5)));
  EXPECT_TRUE(Implies(Make("x", CompareOp::kGt, 5), Make("x", CompareOp::kGe, 5)));
  EXPECT_TRUE(Implies(Make("x", CompareOp::kGe, 6), Make("x", CompareOp::kGt, 5)));
  EXPECT_FALSE(Implies(Make("x", CompareOp::kGe, 5), Make("x", CompareOp::kGt, 5)));
}

TEST(PredicateImpliesTest, LabelPredicatesCompareLabelsNotNumericView) {
  // Unresolved nominal predicates carry labels with a default numeric
  // view (0.0): implication must reason over the labels, or distinct
  // labels would wrongly imply each other.
  Predicate eq_aa = Make("carrier", CompareOp::kEq, 0.0);
  eq_aa.string_values = {"AA"};
  Predicate eq_bb = Make("carrier", CompareOp::kEq, 0.0);
  eq_bb.string_values = {"BB"};
  EXPECT_FALSE(Implies(eq_aa, eq_bb));
  EXPECT_FALSE(Implies(eq_bb, eq_aa));
  EXPECT_TRUE(Implies(eq_aa, eq_aa));

  Predicate in_ab = MakeIn("carrier", {0.0, 0.0});
  in_ab.string_values = {"AA", "BB"};
  EXPECT_TRUE(Implies(eq_aa, in_ab));
  EXPECT_FALSE(Implies(in_ab, eq_aa));
  Predicate in_a = MakeIn("carrier", {0.0});
  in_a.string_values = {"AA"};
  EXPECT_TRUE(Implies(in_a, in_ab));
  EXPECT_FALSE(Implies(in_ab, in_a));

  // Mixed label/numeric predicates are conservatively unrelated.
  EXPECT_FALSE(Implies(eq_aa, MakeIn("carrier", {0.0})));
  EXPECT_FALSE(Implies(MakeIn("carrier", {0.0}), eq_aa));
}

TEST(PredicateImpliesTest, FilterRefinement) {
  FilterExpr base;
  base.And(MakeRange("x", 0, 10));
  base.And(Make("g", CompareOp::kEq, 2));

  // Same predicates, different order: mutual refinement.
  FilterExpr reordered;
  reordered.And(Make("g", CompareOp::kEq, 2));
  reordered.And(MakeRange("x", 0, 10));
  EXPECT_TRUE(Refines(reordered, base));
  EXPECT_TRUE(Refines(base, reordered));

  // Extra conjunct refines.
  FilterExpr extra = base;
  extra.And(MakeRange("y", 1, 2));
  EXPECT_TRUE(Refines(extra, base));
  EXPECT_FALSE(Refines(base, extra));

  // Narrowed range refines.
  FilterExpr narrowed;
  narrowed.And(MakeRange("x", 2, 8));
  narrowed.And(Make("g", CompareOp::kEq, 2));
  EXPECT_TRUE(Refines(narrowed, base));

  // Dropping a conjunct does not.
  FilterExpr dropped;
  dropped.And(MakeRange("x", 0, 10));
  EXPECT_FALSE(Refines(dropped, base));

  // The empty filter is refined by everything and refines nothing
  // non-empty.
  EXPECT_TRUE(Refines(base, FilterExpr()));
  EXPECT_FALSE(Refines(FilterExpr(), base));
}

TEST(FilterExprTest, SqlJoinsWithAnd) {
  storage::Table t = testutil::MakeTinyTable();
  FilterExpr f;
  Predicate a;
  a.column = "value";
  a.op = CompareOp::kGe;
  a.value = 30;
  f.And(a);
  Predicate b;
  b.column = "flag";
  b.op = CompareOp::kEq;
  b.value = 1;
  f.And(b);
  EXPECT_EQ(f.ToSql(&t), "value >= 30 AND flag = 1");
  EXPECT_EQ(FilterExpr().ToSql(&t), "");
}

}  // namespace
}  // namespace idebench::expr
