#ifndef IDEBENCH_TESTS_TEST_UTIL_H_
#define IDEBENCH_TESTS_TEST_UTIL_H_

/// \file test_util.h
/// Shared fixtures: tiny hand-built tables and query specs used across
/// the module tests.

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "query/spec.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace idebench::testutil {

/// A tiny deterministic sales-like table:
///   value: double  {10, 20, 30, 40, 50, 60, 70, 80}
///   group: string  {a, b, a, b, a, b, a, b}
///   flag : int64   {0, 0, 0, 0, 1, 1, 1, 1}
inline storage::Table MakeTinyTable() {
  storage::Schema schema({
      {"value", storage::DataType::kDouble,
       storage::AttributeKind::kQuantitative},
      {"group", storage::DataType::kString, storage::AttributeKind::kNominal},
      {"flag", storage::DataType::kInt64, storage::AttributeKind::kNominal},
  });
  storage::Table t("tiny", schema);
  const char* groups[] = {"a", "b"};
  for (int i = 0; i < 8; ++i) {
    t.mutable_column(0).AppendDouble(10.0 * (i + 1));
    t.mutable_column(1).AppendString(groups[i % 2]);
    t.mutable_column(2).AppendInt(i < 4 ? 0 : 1);
  }
  return t;
}

/// Wraps MakeTinyTable in a single-table catalog.
inline std::shared_ptr<storage::Catalog> MakeTinyCatalog() {
  auto catalog = std::make_shared<storage::Catalog>();
  auto table = std::make_shared<storage::Table>(MakeTinyTable());
  IDB_CHECK(catalog->AddTable(table).ok());
  return catalog;
}

/// COUNT(*) grouped by `group` (2 nominal bins), bins resolved.
inline query::QuerySpec MakeCountByGroupSpec(const storage::Catalog& catalog) {
  query::QuerySpec spec;
  spec.viz_name = "viz_test";
  query::BinDimension dim;
  dim.column = "group";
  dim.mode = query::BinningMode::kNominal;
  spec.bins.push_back(dim);
  query::AggregateSpec agg;
  agg.type = query::AggregateType::kCount;
  spec.aggregates.push_back(agg);
  IDB_CHECK(spec.ResolveBins(catalog).ok());
  return spec;
}

/// AVG(value) binned over `value` in `bins` fixed-count bins.
inline query::QuerySpec MakeAvgValueSpec(const storage::Catalog& catalog,
                                         int64_t bins = 4) {
  query::QuerySpec spec;
  spec.viz_name = "viz_avg";
  query::BinDimension dim;
  dim.column = "value";
  dim.mode = query::BinningMode::kFixedCount;
  dim.requested_bins = bins;
  spec.bins.push_back(dim);
  query::AggregateSpec agg;
  agg.type = query::AggregateType::kAvg;
  agg.column = "value";
  spec.aggregates.push_back(agg);
  IDB_CHECK(spec.ResolveBins(catalog).ok());
  return spec;
}

}  // namespace idebench::testutil

#endif  // IDEBENCH_TESTS_TEST_UTIL_H_
