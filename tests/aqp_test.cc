#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "aqp/confidence.h"
#include "aqp/sampler.h"
#include "tests/test_util.h"

namespace idebench::aqp {
namespace {

TEST(ConfidenceTest, NormalCdfKnownPoints) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-4);
  EXPECT_GT(NormalCdf(6.0), 0.999999);
  EXPECT_LT(NormalCdf(-6.0), 1e-6);
}

TEST(ConfidenceTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-6) << "p=" << p;
  }
}

TEST(ConfidenceTest, QuantileEdges) {
  EXPECT_LT(NormalQuantile(0.0), -1e6);
  EXPECT_GT(NormalQuantile(1.0), 1e6);
}

TEST(ConfidenceTest, ZScores) {
  EXPECT_NEAR(ZScoreForConfidence(0.95), 1.95996, 1e-3);
  EXPECT_NEAR(ZScoreForConfidence(0.99), 2.57583, 1e-3);
  EXPECT_NEAR(ZScoreForConfidence(0.6827), 1.0, 1e-2);
  EXPECT_EQ(ZScoreForConfidence(0.0), 0.0);
}

TEST(ShuffledIndexTest, IsPermutation) {
  Rng rng(1);
  ShuffledIndex index(100, &rng);
  std::vector<int64_t> sorted = index.permutation();
  std::sort(sorted.begin(), sorted.end());
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(ShuffledIndexTest, PositionsWrap) {
  Rng rng(2);
  ShuffledIndex index(10, &rng);
  EXPECT_EQ(index.At(3), index.At(13));
  EXPECT_EQ(index.At(0), index.At(10));
}

TEST(ShuffledIndexTest, EmptyAndSingle) {
  Rng rng(3);
  ShuffledIndex empty(0, &rng);
  EXPECT_EQ(empty.size(), 0);
  ShuffledIndex one(1, &rng);
  EXPECT_EQ(one.At(0), 0);
  EXPECT_EQ(one.At(5), 0);
}

TEST(ReservoirTest, KeepsAllWhenUnderCapacity) {
  Rng rng(4);
  ReservoirSampler sampler(10, &rng);
  for (int64_t i = 0; i < 5; ++i) sampler.Offer(i);
  EXPECT_EQ(sampler.sample().size(), 5u);
  EXPECT_EQ(sampler.stream_size(), 5);
}

TEST(ReservoirTest, CapsAtCapacity) {
  Rng rng(5);
  ReservoirSampler sampler(10, &rng);
  for (int64_t i = 0; i < 1000; ++i) sampler.Offer(i);
  EXPECT_EQ(sampler.sample().size(), 10u);
  EXPECT_EQ(sampler.stream_size(), 1000);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Each element of a 100-long stream should appear in a 10-slot
  // reservoir with probability ~0.1.
  const int trials = 3000;
  std::vector<int> hits(100, 0);
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<uint64_t>(t) + 1000);
    ReservoirSampler sampler(10, &rng);
    for (int64_t i = 0; i < 100; ++i) sampler.Offer(i);
    for (int64_t v : sampler.sample()) ++hits[static_cast<size_t>(v)];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.1, 0.035);
  }
}

TEST(StratifiedSampleTest, RespectsRateAndMinimum) {
  storage::Table t = testutil::MakeTinyTable();
  Rng rng(6);
  auto sample = BuildStratifiedSample(t, "group", 0.25, 1, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_strata, 2);
  EXPECT_EQ(sample->base_rows, 8);
  // 4 rows per stratum * 0.25 = 1 row each.
  EXPECT_EQ(sample->size(), 2);
  for (double w : sample->weights) EXPECT_DOUBLE_EQ(w, 4.0);
}

TEST(StratifiedSampleTest, MinimumPerStratumOverridesRate) {
  storage::Table t = testutil::MakeTinyTable();
  Rng rng(7);
  auto sample = BuildStratifiedSample(t, "group", 0.01, 3, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 6);  // 3 per stratum
  for (double w : sample->weights) EXPECT_NEAR(w, 4.0 / 3.0, 1e-12);
}

TEST(StratifiedSampleTest, FullRateTakesEverything) {
  storage::Table t = testutil::MakeTinyTable();
  Rng rng(8);
  auto sample = BuildStratifiedSample(t, "group", 1.0, 0, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 8);
  for (double w : sample->weights) EXPECT_DOUBLE_EQ(w, 1.0);
  std::vector<int64_t> rows = sample->rows;
  std::sort(rows.begin(), rows.end());
  for (int64_t i = 0; i < 8; ++i) EXPECT_EQ(rows[static_cast<size_t>(i)], i);
}

TEST(StratifiedSampleTest, EmptyStratColumnIsUniform) {
  storage::Table t = testutil::MakeTinyTable();
  Rng rng(9);
  auto sample = BuildStratifiedSample(t, "", 0.5, 0, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_strata, 1);
  EXPECT_EQ(sample->size(), 4);
  for (double w : sample->weights) EXPECT_DOUBLE_EQ(w, 2.0);
}

TEST(StratifiedSampleTest, InvalidInputs) {
  storage::Table t = testutil::MakeTinyTable();
  Rng rng(10);
  EXPECT_FALSE(BuildStratifiedSample(t, "group", 0.0, 1, &rng).ok());
  EXPECT_FALSE(BuildStratifiedSample(t, "group", 1.5, 1, &rng).ok());
  EXPECT_FALSE(BuildStratifiedSample(t, "ghost", 0.5, 1, &rng).ok());
}

TEST(StratifiedSampleTest, WeightsReconstructPopulation) {
  storage::Table t = testutil::MakeTinyTable();
  Rng rng(11);
  auto sample = BuildStratifiedSample(t, "group", 0.5, 1, &rng);
  ASSERT_TRUE(sample.ok());
  const double total =
      std::accumulate(sample->weights.begin(), sample->weights.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 8.0);  // HT weights sum to the population size
}

/// Property sweep over sampling rates: HT weights always reconstruct the
/// population size.
class StratifiedRateProperty : public ::testing::TestWithParam<double> {};

TEST_P(StratifiedRateProperty, WeightSumMatchesPopulation) {
  storage::Table t = testutil::MakeTinyTable();
  Rng rng(static_cast<uint64_t>(GetParam() * 1000));
  auto sample = BuildStratifiedSample(t, "group", GetParam(), 1, &rng);
  ASSERT_TRUE(sample.ok());
  const double total =
      std::accumulate(sample->weights.begin(), sample->weights.end(), 0.0);
  EXPECT_NEAR(total, 8.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, StratifiedRateProperty,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace idebench::aqp
