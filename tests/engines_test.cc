#include <gtest/gtest.h>

#include "engines/blocking_engine.h"
#include "engines/cost.h"
#include "engines/engine_base.h"
#include "engines/frontend_engine.h"
#include "engines/online_engine.h"
#include "engines/progressive_engine.h"
#include "engines/registry.h"
#include "engines/stratified_engine.h"
#include "tests/test_util.h"

namespace idebench::engines {
namespace {

using query::AggregateSpec;
using query::AggregateType;
using query::QuerySpec;

/// A tiny catalog that *represents* 1 M nominal rows (8 actual), so the
/// virtual cost model is exercised with tractable numbers.
std::shared_ptr<const storage::Catalog> MakeNominalCatalog(
    int64_t nominal = 1'000'000) {
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(nominal);
  return catalog;
}

TEST(CostTest, ComplexityMultiplierGrowsWithShape) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec simple = testutil::MakeCountByGroupSpec(*catalog);
  CostFactors f;
  const double base = ComplexityMultiplier(simple, 0, f);
  EXPECT_DOUBLE_EQ(base, 1.0);

  QuerySpec with_avg = testutil::MakeAvgValueSpec(*catalog);
  EXPECT_GT(ComplexityMultiplier(with_avg, 0, f), 1.0);

  QuerySpec filtered = simple;
  expr::Predicate p;
  p.column = "value";
  p.op = expr::CompareOp::kGe;
  p.value = 0;
  filtered.filter.And(p);
  EXPECT_GT(ComplexityMultiplier(filtered, 0, f),
            ComplexityMultiplier(simple, 0, f));

  EXPECT_GT(ComplexityMultiplier(simple, 1, f),
            ComplexityMultiplier(simple, 0, f));
}

TEST(CostTest, RowsMicrosConversions) {
  EXPECT_EQ(RowsToMicros(1'000'000, 5.0, 1.0), 5'000);  // 5 ms
  EXPECT_EQ(MicrosToRows(5'000, 5.0, 1.0), 1'000'000);
  EXPECT_EQ(MicrosToRows(0, 5.0, 1.0), 0);
  EXPECT_EQ(RowsToMicros(0, 5.0, 2.0), 0);
}

TEST(QuerySignatureTest, CanonicalAcrossPredicateOrder) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec a = testutil::MakeCountByGroupSpec(*catalog);
  QuerySpec b = a;
  expr::Predicate p1;
  p1.column = "value";
  p1.op = expr::CompareOp::kGe;
  p1.value = 10;
  expr::Predicate p2;
  p2.column = "flag";
  p2.op = expr::CompareOp::kEq;
  p2.value = 1;
  a.filter.And(p1);
  a.filter.And(p2);
  b.filter.And(p2);
  b.filter.And(p1);
  EXPECT_EQ(QuerySignature(a), QuerySignature(b));

  // Duplicate predicates collapse.
  QuerySpec c = a;
  c.filter.And(p1);
  EXPECT_EQ(QuerySignature(c), QuerySignature(a));

  // Different filters differ.
  QuerySpec d = testutil::MakeCountByGroupSpec(*catalog);
  EXPECT_NE(QuerySignature(d), QuerySignature(a));
}

// --------------------------------------------------------------------
// Blocking engine
// --------------------------------------------------------------------

TEST(BlockingEngineTest, NoResultBeforeCompletion) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 1000.0;  // 1 M nominal rows -> 1 s
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto prep = engine.Prepare(MakeNominalCatalog());
  ASSERT_TRUE(prep.ok());
  EXPECT_GT(*prep, 0);

  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());

  // Grant half the needed time: still blocked.
  engine.RunFor(*handle, 500'000);
  EXPECT_FALSE(engine.IsDone(*handle));
  auto partial = engine.PollResult(*handle);
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(partial->available);
  EXPECT_GT(partial->progress, 0.3);

  // Grant the rest: exact result.
  engine.RunFor(*handle, 600'000);
  EXPECT_TRUE(engine.IsDone(*handle));
  auto result = engine.PollResult(*handle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->available);
  EXPECT_TRUE(result->exact);
  EXPECT_DOUBLE_EQ(result->bins.at(0).values[0].estimate, 4.0);
  EXPECT_DOUBLE_EQ(result->bins.at(1).values[0].estimate, 4.0);
}

TEST(BlockingEngineTest, RunForConsumesAtMostBudget) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 1000.0;
  BlockingEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());
  const Micros consumed = engine.RunFor(*handle, 100'000);
  EXPECT_LE(consumed, 100'000);
  EXPECT_GT(consumed, 0);
}

TEST(BlockingEngineTest, OverheadPaidBeforeRows) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 1000.0;
  config.query_overhead_us = 50'000;
  BlockingEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());
  // A budget below the overhead cannot advance the scan.
  EXPECT_EQ(engine.RunFor(*handle, 30'000), 30'000);
  auto result = engine.PollResult(*handle);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->progress, 0.0);
}

TEST(BlockingEngineTest, CancelReleasesHandle) {
  BlockingEngine engine;
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());
  engine.Cancel(*handle);
  EXPECT_FALSE(engine.PollResult(*handle).ok());
  EXPECT_FALSE(engine.IsDone(*handle));
}

TEST(BlockingEngineTest, SubmitBeforePrepareFails) {
  BlockingEngine engine;
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  EXPECT_FALSE(engine.Submit(spec).ok());
}

TEST(BlockingEngineTest, PrepareTimeScalesWithNominalRows) {
  BlockingEngine small;
  auto prep_small = small.Prepare(MakeNominalCatalog(1'000'000));
  BlockingEngine large;
  auto prep_large = large.Prepare(MakeNominalCatalog(10'000'000));
  ASSERT_TRUE(prep_small.ok());
  ASSERT_TRUE(prep_large.ok());
  EXPECT_NEAR(static_cast<double>(*prep_large) /
                  static_cast<double>(*prep_small),
              10.0, 0.5);
}

// --------------------------------------------------------------------
// Online engine (XDB-like)
// --------------------------------------------------------------------

TEST(OnlineEngineTest, SupportsOnlinePolicy) {
  auto catalog = testutil::MakeTinyCatalog();
  QuerySpec count = testutil::MakeCountByGroupSpec(*catalog);
  EXPECT_TRUE(OnlineEngine::SupportsOnline(count));

  QuerySpec sum = count;
  sum.aggregates[0].type = AggregateType::kSum;
  sum.aggregates[0].column = "value";
  EXPECT_TRUE(OnlineEngine::SupportsOnline(sum));

  QuerySpec avg = testutil::MakeAvgValueSpec(*catalog);
  EXPECT_FALSE(OnlineEngine::SupportsOnline(avg));  // AVG not online

  QuerySpec multi = count;
  AggregateSpec second;
  second.type = AggregateType::kSum;
  second.column = "value";
  multi.aggregates.push_back(second);
  EXPECT_FALSE(OnlineEngine::SupportsOnline(multi));  // multi-agg not online
}

TEST(OnlineEngineTest, OnlineQueryYieldsIntermediateAtReportInterval) {
  OnlineEngineConfig config;
  config.sample_us_per_row = 10'000.0;  // 100 rows/s: 8 rows = 80 ms... slow
  config.query_overhead_us = 0;
  config.report_interval_us = 20'000;
  OnlineEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());

  // 25 ms buys 2 sampled rows; past the 20 ms report interval.
  engine.RunFor(*handle, 25'000);
  EXPECT_FALSE(engine.IsDone(*handle));
  auto result = engine.PollResult(*handle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->available);
  EXPECT_FALSE(result->exact);
  EXPECT_GT(result->rows_processed, 0);
}

TEST(OnlineEngineTest, NoIntermediateBeforeFirstInterval) {
  OnlineEngineConfig config;
  config.sample_us_per_row = 1'000.0;
  config.query_overhead_us = 0;
  config.report_interval_us = 500'000;  // 0.5 s
  OnlineEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());
  engine.RunFor(*handle, 3'000);  // 3 rows of work, < interval
  auto result = engine.PollResult(*handle);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->available);
}

TEST(OnlineEngineTest, FallbackBlocksUntilFullScan) {
  OnlineEngineConfig config;
  config.fallback_scan_ns_per_row = 1000.0;  // 1 M nominal -> 1 s
  config.query_overhead_us = 0;
  OnlineEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec avg = testutil::MakeAvgValueSpec(*catalog);  // not online
  auto handle = engine.Submit(avg);
  ASSERT_TRUE(handle.ok());

  engine.RunFor(*handle, 200'000);
  auto pending = engine.PollResult(*handle);
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(pending->available);  // blocking fallback, not finished

  engine.RunFor(*handle, 2'000'000);
  EXPECT_TRUE(engine.IsDone(*handle));
  auto result = engine.PollResult(*handle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->available);
  EXPECT_TRUE(result->exact);
}

TEST(OnlineEngineTest, FallbackDisabledRejectsQuery) {
  OnlineEngineConfig config;
  config.enable_fallback = false;
  OnlineEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec avg = testutil::MakeAvgValueSpec(*catalog);
  auto handle = engine.Submit(avg);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kNotImplemented);
}

TEST(OnlineEngineTest, CompletedOnlineQueryIsExact) {
  OnlineEngineConfig config;
  config.sample_us_per_row = 1.0;
  config.query_overhead_us = 0;
  OnlineEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());
  engine.RunFor(*handle, 1'000'000);
  EXPECT_TRUE(engine.IsDone(*handle));
  auto result = engine.PollResult(*handle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  EXPECT_DOUBLE_EQ(result->bins.at(0).values[0].estimate, 4.0);
}

// --------------------------------------------------------------------
// Progressive engine (IDEA-like)
// --------------------------------------------------------------------

ProgressiveEngineConfig FastProgressiveConfig() {
  ProgressiveEngineConfig config;
  config.sample_us_per_row = 1'000.0;  // 1 ms per row: 8 rows = 8 ms
  config.query_overhead_us = 0;
  config.restart_overhead_us = 0;
  config.prepare_time_us = 1'000;
  return config;
}

TEST(ProgressiveEngineTest, ResultAvailableImmediately) {
  ProgressiveEngine engine(FastProgressiveConfig());
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());
  engine.RunFor(*handle, 2'000);  // 2 of 8 rows
  auto result = engine.PollResult(*handle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->available);
  EXPECT_FALSE(result->exact);
  EXPECT_EQ(result->rows_processed, 2);
  // Scale-up estimate: total count across bins ~ 8.
  EXPECT_NEAR(result->TotalEstimate(), 8.0, 1e-9);
}

TEST(ProgressiveEngineTest, ProgressIsMonotone) {
  ProgressiveEngine engine(FastProgressiveConfig());
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());
  double last_progress = -1.0;
  for (int step = 0; step < 4; ++step) {
    engine.RunFor(*handle, 2'000);
    auto result = engine.PollResult(*handle);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->progress, last_progress);
    last_progress = result->progress;
  }
  EXPECT_TRUE(engine.IsDone(*handle));
  auto final = engine.PollResult(*handle);
  ASSERT_TRUE(final.ok());
  EXPECT_TRUE(final->exact);
}

TEST(ProgressiveEngineTest, AllAggregatesSupported) {
  ProgressiveEngine engine(FastProgressiveConfig());
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec avg = testutil::MakeAvgValueSpec(*catalog);
  EXPECT_TRUE(engine.Submit(avg).ok());
}

TEST(ProgressiveEngineTest, ReuseAdoptsCachedProgress) {
  ProgressiveEngine engine(FastProgressiveConfig());
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);

  auto h1 = engine.Submit(spec);
  ASSERT_TRUE(h1.ok());
  engine.RunFor(*h1, 4'000);  // half the walk
  engine.Cancel(*h1);

  auto h2 = engine.Submit(spec);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(engine.reuse_hits(), 1);
  auto result = engine.PollResult(*h2);
  ASSERT_TRUE(result.ok());
  // The new handle starts from the cached 4-row sample.
  EXPECT_EQ(result->rows_processed, 4);
}

TEST(ProgressiveEngineTest, ReuseDisabledStartsCold) {
  ProgressiveEngineConfig config = FastProgressiveConfig();
  config.enable_reuse = false;
  ProgressiveEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto h1 = engine.Submit(spec);
  ASSERT_TRUE(h1.ok());
  engine.RunFor(*h1, 4'000);
  engine.Cancel(*h1);
  auto h2 = engine.Submit(spec);
  ASSERT_TRUE(h2.ok());
  auto result = engine.PollResult(*h2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_processed, 0);
  EXPECT_EQ(engine.reuse_hits(), 0);
}

TEST(ProgressiveEngineTest, RestartOverheadDelaysFirstQueryOnly) {
  ProgressiveEngineConfig config = FastProgressiveConfig();
  config.restart_overhead_us = 100'000;
  ProgressiveEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);

  auto h1 = engine.Submit(spec);
  ASSERT_TRUE(h1.ok());
  engine.RunFor(*h1, 50'000);  // all spent on restart overhead
  auto r1 = engine.PollResult(*h1);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->available);

  QuerySpec other = testutil::MakeAvgValueSpec(*catalog);
  auto h2 = engine.Submit(other);
  ASSERT_TRUE(h2.ok());
  engine.RunFor(*h2, 3'000);
  auto r2 = engine.PollResult(*h2);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->available);  // no restart overhead on later queries
}

TEST(ProgressiveEngineTest, SpeculationGivesHeadStart) {
  ProgressiveEngineConfig config = FastProgressiveConfig();
  config.enable_speculation = true;
  ProgressiveEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();

  // Source viz: count by group; target viz: avg of value.
  QuerySpec source = testutil::MakeCountByGroupSpec(*catalog);
  source.viz_name = "src";
  QuerySpec target = testutil::MakeAvgValueSpec(*catalog);
  target.viz_name = "dst";

  auto hs = engine.Submit(source);
  ASSERT_TRUE(hs.ok());
  engine.RunFor(*hs, 8'000);
  auto ht = engine.Submit(target);
  ASSERT_TRUE(ht.ok());
  engine.RunFor(*ht, 8'000);
  engine.LinkVizs("src", "dst");

  // Think time is spent pre-executing per-bin selections of "src".
  engine.OnThink(8'000'000);

  // The user selects group "a" (code 0): the real query matches a
  // speculative one and adopts its progress.
  QuerySpec selected = target;
  expr::Predicate sel;
  sel.column = "group";
  sel.op = expr::CompareOp::kIn;
  sel.set_values = {0.0};
  sel.string_values = {"a"};
  selected.filter.And(sel);
  auto h = engine.Submit(selected);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(engine.speculation_hits(), 1);
  auto result = engine.PollResult(*h);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->rows_processed, 0);  // head start without RunFor
}

TEST(ProgressiveEngineTest, WorkflowStartClearsDashboardState) {
  ProgressiveEngineConfig config = FastProgressiveConfig();
  config.enable_speculation = true;
  ProgressiveEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec source = testutil::MakeCountByGroupSpec(*catalog);
  source.viz_name = "src";
  ASSERT_TRUE(engine.Submit(source).ok());
  engine.LinkVizs("src", "dst");
  engine.WorkflowStart();
  engine.OnThink(1'000'000);  // no speculation state -> no crash, no work
  EXPECT_EQ(engine.speculation_hits(), 0);
}

// --------------------------------------------------------------------
// Stratified engine (System X-like)
// --------------------------------------------------------------------

StratifiedEngineConfig FastStratifiedConfig() {
  StratifiedEngineConfig config;
  config.sampling_rate = 0.5;
  config.stratify_by = "group";
  config.min_rows_per_stratum = 1;
  config.sample_scan_ns_per_row = 100.0;
  config.query_overhead_us = 0;
  return config;
}

TEST(StratifiedEngineTest, BlockingOverSampleThenWeightedEstimate) {
  StratifiedEngine engine(FastStratifiedConfig());
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  EXPECT_EQ(engine.sample().size(), 4);  // 50 % of 8 rows
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());

  // Full sample scan costs 0.5 * 1M * 100ns = 50 ms.
  engine.RunFor(*handle, 10'000);
  auto pending = engine.PollResult(*handle);
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(pending->available);

  engine.RunFor(*handle, 60'000);
  EXPECT_TRUE(engine.IsDone(*handle));
  auto result = engine.PollResult(*handle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->available);
  EXPECT_FALSE(result->exact);
  // HT estimate reconstructs ~4 rows per group (2 sampled * weight 2).
  EXPECT_NEAR(result->bins.at(0).values[0].estimate, 4.0, 1e-9);
  EXPECT_NEAR(result->bins.at(1).values[0].estimate, 4.0, 1e-9);
}

TEST(StratifiedEngineTest, RejectsNormalizedCatalogs) {
  storage::Schema dim_schema(
      {{"flag", storage::DataType::kInt64, storage::AttributeKind::kNominal}});
  auto catalog = std::make_shared<storage::Catalog>();
  ASSERT_TRUE(
      catalog->AddTable(std::make_shared<storage::Table>(
          testutil::MakeTinyTable()))
          .ok());
  auto dim = std::make_shared<storage::Table>("flags", dim_schema);
  dim->mutable_column(0).AppendInt(0);
  dim->mutable_column(0).AppendInt(1);
  ASSERT_TRUE(catalog->AddTable(dim).ok());
  ASSERT_TRUE(catalog->AddForeignKey({"flag", "flags", "flag"}).ok());

  StratifiedEngine engine(FastStratifiedConfig());
  EXPECT_EQ(engine.Prepare(catalog).status().code(),
            StatusCode::kNotImplemented);
}

TEST(StratifiedEngineTest, QualityIndependentOfBudget) {
  // Two identical engines; one gets far more time per query.  The final
  // estimates must match exactly: quality is fixed by the offline sample.
  auto run = [](Micros budget) {
    StratifiedEngine engine(FastStratifiedConfig());
    IDB_CHECK(engine.Prepare(MakeNominalCatalog()).ok());
    auto catalog = MakeNominalCatalog();
    QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
    auto handle = engine.Submit(spec);
    IDB_CHECK(handle.ok());
    while (!engine.IsDone(*handle)) {
      if (engine.RunFor(*handle, budget) <= 0) break;
    }
    auto result = engine.PollResult(*handle);
    IDB_CHECK(result.ok());
    return result->TotalEstimate();
  };
  EXPECT_DOUBLE_EQ(run(10'000), run(10'000'000));
}

TEST(StratifiedEngineTest, MissingStratColumnFallsBackToUniform) {
  StratifiedEngineConfig config = FastStratifiedConfig();
  config.stratify_by = "no_such_column";
  StratifiedEngine engine(config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  EXPECT_EQ(engine.sample().num_strata, 1);
}

// --------------------------------------------------------------------
// Frontend engine (System Y-like)
// --------------------------------------------------------------------

TEST(FrontendEngineTest, AddsRenderDelayAfterBackend) {
  BlockingEngineConfig backend_config;
  backend_config.scan_ns_per_row = 10.0;  // 1 M rows -> 10 ms
  backend_config.query_overhead_us = 0;
  FrontendEngineConfig config;
  config.min_render_us = 500'000;
  config.max_render_us = 500'000;
  FrontendEngine engine(std::make_unique<BlockingEngine>(backend_config),
                        config);
  EXPECT_EQ(engine.name(), "frontend+blocking");
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());

  // Backend finishes in ~10 ms, but rendering takes 500 ms more.
  engine.RunFor(*handle, 100'000);
  EXPECT_FALSE(engine.IsDone(*handle));
  auto pending = engine.PollResult(*handle);
  ASSERT_TRUE(pending.ok());
  EXPECT_FALSE(pending->available);

  engine.RunFor(*handle, 500'000);
  EXPECT_TRUE(engine.IsDone(*handle));
  auto result = engine.PollResult(*handle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->available);
  EXPECT_TRUE(result->exact);
}

TEST(FrontendEngineTest, RenderDelayWithinConfiguredBounds) {
  FrontendEngineConfig config;
  // Defaults 1-2 s; with a 10 ms backend, total completion time must be
  // in [1.01, 2.01] s.
  BlockingEngineConfig backend_config;
  backend_config.scan_ns_per_row = 10.0;
  backend_config.query_overhead_us = 0;
  FrontendEngine engine(std::make_unique<BlockingEngine>(backend_config),
                        config);
  ASSERT_TRUE(engine.Prepare(MakeNominalCatalog()).ok());
  auto catalog = MakeNominalCatalog();
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  for (int i = 0; i < 5; ++i) {
    auto handle = engine.Submit(spec);
    ASSERT_TRUE(handle.ok());
    Micros total = 0;
    while (!engine.IsDone(*handle)) {
      const Micros step = engine.RunFor(*handle, 100'000);
      if (step <= 0) break;
      total += step;
    }
    EXPECT_GE(total, 1'000'000);
    EXPECT_LE(total, 2'100'000);
    engine.Cancel(*handle);
  }
}

// --------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------

TEST(RegistryTest, CreatesAllBuiltins) {
  for (const std::string& name : BuiltinEngineNames()) {
    auto engine = CreateEngine(name);
    ASSERT_TRUE(engine.ok()) << name;
    EXPECT_FALSE((*engine)->name().empty());
  }
  EXPECT_FALSE(CreateEngine("nonexistent").ok());
}

TEST(RegistryTest, AllEnginesAnswerASimpleQuery) {
  auto catalog = MakeNominalCatalog(100'000);  // small so everything finishes
  for (const std::string& name : BuiltinEngineNames()) {
    auto engine = CreateEngine(name);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Prepare(catalog).ok()) << name;
    QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
    auto handle = (*engine)->Submit(spec);
    ASSERT_TRUE(handle.ok()) << name;
    // Grant an enormous budget: every engine must eventually finish.
    for (int i = 0; i < 100 && !(*engine)->IsDone(*handle); ++i) {
      (*engine)->RunFor(*handle, 10'000'000);
    }
    EXPECT_TRUE((*engine)->IsDone(*handle)) << name;
    auto result = (*engine)->PollResult(*handle);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_TRUE(result->available) << name;
    // Count totals must reconstruct the 8-row table (exactly for exact
    // engines, in HT expectation for the stratified one).
    EXPECT_NEAR(result->TotalEstimate(), 8.0, 1e-6) << name;
  }
}

}  // namespace
}  // namespace idebench::engines
