/// \file exec_segment_test.cc
/// The compressed scan tier (exec/segment_scan.h) against the in-memory
/// reference: for every query shape x column type x encoding, a
/// `SegmentTableScanner` over the packed file must produce results
/// bit-identical to a `BinnedAggregator` fed the decoded table through
/// `ProcessRangeParallel` — at 1 thread (sequential contract) and 4
/// threads (morsel contract) — while the pruning tiers and the RLE COUNT
/// fast path visibly engage in the stats.

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "exec/aggregator.h"
#include "exec/bound_query.h"
#include "exec/parallel.h"
#include "exec/segment_scan.h"
#include "storage/segment.h"

namespace idebench::exec {
namespace {

using query::AggregateSpec;
using query::AggregateType;
using query::BinDimension;
using query::BinningMode;
using query::QuerySpec;

constexpr int64_t kRows = 2 * storage::kSegmentRows + 4321;

/// Catalog whose fact columns land on every encoding: `bucket` sorted
/// low-cardinality (RLE everywhere), `narrow` noisy small-range
/// (bit-packed), `wide` full-range (raw/packed-wide), `value` doubles
/// with NaNs (raw), `tag` region-clustered strings, and `nanonly` a
/// column whose middle segment is entirely NaN.
std::shared_ptr<storage::Catalog> SegCatalog() {
  static const std::shared_ptr<storage::Catalog> catalog = [] {
    storage::Schema schema({
        {"bucket", storage::DataType::kInt64,
         storage::AttributeKind::kNominal},
        {"narrow", storage::DataType::kInt64,
         storage::AttributeKind::kNominal},
        {"wide", storage::DataType::kInt64,
         storage::AttributeKind::kQuantitative},
        {"value", storage::DataType::kDouble,
         storage::AttributeKind::kQuantitative},
        {"tag", storage::DataType::kString,
         storage::AttributeKind::kNominal},
        {"nanonly", storage::DataType::kDouble,
         storage::AttributeKind::kQuantitative},
    });
    auto t = std::make_shared<storage::Table>("fact", schema);
    Rng rng(101);
    const char* tags[] = {"alpha", "beta", "gamma", "delta",
                          "epsilon", "zeta"};
    for (int64_t i = 0; i < kRows; ++i) {
      t->mutable_column(0).AppendInt(i / 4096);  // sorted runs of 4096
      t->mutable_column(1).AppendInt(500 + rng.UniformInt(0, 120));
      t->mutable_column(2).AppendInt(rng.UniformInt(-1'000'000'000'000,
                                                    1'000'000'000'000));
      t->mutable_column(3).AppendDouble(
          rng.Bernoulli(0.04) ? std::numeric_limits<double>::quiet_NaN()
                              : rng.Uniform(-500.0, 1500.0));
      // Tags 0..2 only in the first segment's rows, 3..5 after — the
      // dictionary bitsets of different segments genuinely differ.
      const int lo = i < storage::kSegmentRows ? 0 : 3;
      t->mutable_column(4).AppendString(tags[lo + rng.UniformInt(0, 2)]);
      // Middle segment all-NaN, elsewhere finite.
      const bool mid = i >= storage::kSegmentRows &&
                       i < 2 * storage::kSegmentRows;
      t->mutable_column(5).AppendDouble(
          mid ? std::numeric_limits<double>::quiet_NaN()
              : rng.Uniform(0.0, 10.0));
    }
    auto c = std::make_shared<storage::Catalog>();
    IDB_CHECK(c->AddTable(t).ok());
    return c;
  }();
  return catalog;
}

/// The packed form of SegCatalog's fact table, written once.
const storage::SegmentFile& SegFile() {
  static const storage::SegmentFile* file = [] {
    const std::string path =
        std::string(::testing::TempDir()) + "/exec_seg_fact.seg";
    IDB_CHECK(storage::WriteSegmentFile(*SegCatalog()->fact_table(), path)
                  .ok());
    auto opened = storage::SegmentFile::Open(path);
    IDB_CHECK(opened.ok());
    return new storage::SegmentFile(std::move(opened).MoveValueUnsafe());
  }();
  return *file;
}

AggregateSpec Agg(AggregateType type, const std::string& column = "") {
  AggregateSpec a;
  a.type = type;
  a.column = column;
  return a;
}

QuerySpec MakeSpec(const std::string& bin_column, BinningMode mode,
                   std::vector<AggregateSpec> aggs, int bins = 16) {
  QuerySpec spec;
  spec.viz_name = "v";
  BinDimension d;
  d.column = bin_column;
  d.mode = mode;
  d.requested_bins = bins;
  spec.bins = {d};
  spec.aggregates = std::move(aggs);
  IDB_CHECK(spec.ResolveBins(*SegCatalog()).ok());
  return spec;
}

/// Exact-equality result comparison (bit-identity is the contract).
void ExpectResultsIdentical(const query::QueryResult& a,
                            const query::QueryResult& b,
                            const std::string& label) {
  ASSERT_EQ(a.bins.size(), b.bins.size()) << label;
  for (const auto& [key, bin] : a.bins) {
    auto it = b.bins.find(key);
    ASSERT_NE(it, b.bins.end()) << label << ": bin " << key << " missing";
    ASSERT_EQ(bin.values.size(), it->second.values.size()) << label;
    for (size_t i = 0; i < bin.values.size(); ++i) {
      EXPECT_EQ(bin.values[i].estimate, it->second.values[i].estimate)
          << label << ": estimate, bin " << key << " agg " << i;
      EXPECT_EQ(bin.values[i].margin, it->second.values[i].margin)
          << label << ": margin, bin " << key << " agg " << i;
    }
  }
}

/// Flat reference: the in-memory table through the engine-facing range
/// path at `threads`.
struct FlatRun {
  std::unique_ptr<BoundQuery> bound;
  std::unique_ptr<BinnedAggregator> agg;
};

FlatRun FlatReference(const QuerySpec& spec, int threads) {
  FlatRun run;
  auto bound = BoundQuery::Bind(spec, *SegCatalog());
  IDB_CHECK(bound.ok());
  run.bound =
      std::make_unique<BoundQuery>(std::move(bound).MoveValueUnsafe());
  run.agg = std::make_unique<BinnedAggregator>(run.bound.get(),
                                               BinnedAggregatorOptions{});
  ProcessRangeParallel(run.agg.get(), 0, kRows, threads);
  return run;
}

/// Runs `spec` through the segment scanner; returns it for stats access.
std::unique_ptr<SegmentTableScanner> Scan(const QuerySpec& spec,
                                          SegmentScanOptions options = {}) {
  auto scanner = SegmentTableScanner::Create(&SegFile(), spec, options);
  IDB_CHECK(scanner.ok());
  IDB_CHECK((*scanner)->Execute().ok());
  return std::move(scanner).MoveValueUnsafe();
}

/// The core differential: scanner vs flat at 1 and 4 threads, all four
/// pruning/fast-path option combinations — always bit-identical.
void RunDifferential(const QuerySpec& spec, const std::string& label) {
  for (const int threads : {1, 4}) {
    const FlatRun flat_run = FlatReference(spec, threads);
    const BinnedAggregator* flat = flat_run.agg.get();
    for (const bool tiers : {true, false}) {
      SegmentScanOptions options;
      options.threads = threads;
      options.enable_zone_pruning = tiers;
      options.enable_dict_pruning = tiers;
      options.enable_rle_count_fastpath = tiers;
      options.enable_compressed_filter_fastpath = tiers;
      const auto scanner = Scan(spec, options);
      const std::string sub = label + ", threads " +
                              std::to_string(threads) +
                              (tiers ? ", tiers on" : ", tiers off");
      EXPECT_EQ(flat->rows_seen(), scanner->aggregator().rows_seen()) << sub;
      EXPECT_EQ(flat->rows_matched(),
                scanner->aggregator().rows_matched())
          << sub;
      ExpectResultsIdentical(flat->ExactResult(),
                             scanner->aggregator().ExactResult(), sub);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// --- op x type x encoding sweep ---------------------------------------------

TEST(SegmentScanTest, NominalStringBinAllAggsOverRawDouble) {
  QuerySpec spec = MakeSpec("tag", BinningMode::kNominal,
                            {Agg(AggregateType::kCount),
                             Agg(AggregateType::kSum, "value"),
                             Agg(AggregateType::kAvg, "value"),
                             Agg(AggregateType::kMin, "value"),
                             Agg(AggregateType::kMax, "value")});
  RunDifferential(spec, "tag x all-aggs(value)");
}

TEST(SegmentScanTest, QuantitativeBinWithRangeAndInFilters) {
  QuerySpec spec = MakeSpec("value", BinningMode::kFixedCount,
                            {Agg(AggregateType::kCount),
                             Agg(AggregateType::kSum, "wide"),
                             Agg(AggregateType::kAvg, "narrow")});
  expr::Predicate range;
  range.column = "narrow";
  range.op = expr::CompareOp::kRange;
  range.lo = 520.0;
  range.hi = 600.0;
  spec.filter.And(range);
  expr::Predicate in_set;
  in_set.column = "bucket";
  in_set.op = expr::CompareOp::kIn;
  in_set.set_values = {0.0, 3.0, 7.0, 15.0, 21.0, 30.0};
  spec.filter.And(in_set);
  RunDifferential(spec, "value-bins, range(narrow) + in(bucket)");
}

TEST(SegmentScanTest, BitPackedBinColumnOrderingOps) {
  QuerySpec spec = MakeSpec("narrow", BinningMode::kFixedCount,
                            {Agg(AggregateType::kCount),
                             Agg(AggregateType::kMin, "value"),
                             Agg(AggregateType::kMax, "value")},
                            /*bins=*/8);
  expr::Predicate ge;
  ge.column = "wide";
  ge.op = expr::CompareOp::kGe;
  ge.value = 0.0;
  spec.filter.And(ge);
  RunDifferential(spec, "narrow-bins, ge(wide)");
}

TEST(SegmentScanTest, AllNaNSegmentAggregateInput) {
  QuerySpec spec = MakeSpec("tag", BinningMode::kNominal,
                            {Agg(AggregateType::kCount),
                             Agg(AggregateType::kSum, "nanonly"),
                             Agg(AggregateType::kAvg, "nanonly")});
  RunDifferential(spec, "tag x aggs(all-NaN middle segment)");
}

TEST(SegmentScanTest, AllNaNSegmentAsBinColumn) {
  QuerySpec spec = MakeSpec("nanonly", BinningMode::kFixedCount,
                            {Agg(AggregateType::kCount)});
  RunDifferential(spec, "nanonly-bins");
}

// --- Pruning tiers ----------------------------------------------------------

TEST(SegmentScanTest, ZonePruningSkipsSegmentsBitIdentically) {
  // `bucket` is sorted: segment 0 holds 0..15, so > 40 excludes it (and
  // the zone maps prove it).
  QuerySpec spec = MakeSpec("tag", BinningMode::kNominal,
                            {Agg(AggregateType::kCount),
                             Agg(AggregateType::kSum, "value")});
  expr::Predicate gt;
  gt.column = "bucket";
  gt.op = expr::CompareOp::kGt;
  gt.value = 40.0;
  spec.filter.And(gt);

  SegmentScanOptions options;
  const auto scanner = Scan(spec, options);
  EXPECT_GE(scanner->stats().segments_pruned_zone, 1);
  EXPECT_GT(scanner->stats().rows_skipped, 0);
  RunDifferential(spec, "zone-pruned gt(bucket)");
}

TEST(SegmentScanTest, DictBitsetPrunesWhereZonesCannot) {
  // "alpha" (code 0) exists only in segment 0.  The zone range of `tag`
  // codes in later segments ([3,5]) would also exclude it — so force the
  // bitset to do the proving by disabling zone pruning.
  QuerySpec spec = MakeSpec("bucket", BinningMode::kNominal,
                            {Agg(AggregateType::kCount)}, /*bins=*/64);
  expr::Predicate eq;
  eq.column = "tag";
  eq.op = expr::CompareOp::kEq;
  eq.value = 0.0;  // dictionary code of "alpha"
  spec.filter.And(eq);

  SegmentScanOptions options;
  options.enable_zone_pruning = false;
  const auto scanner = Scan(spec, options);
  EXPECT_GE(scanner->stats().segments_pruned_dict, 1);
  RunDifferential(spec, "dict-pruned eq(tag)");
}

TEST(SegmentScanTest, DictPruningHandlesInSetsAndNonIntegralValues) {
  QuerySpec spec = MakeSpec("bucket", BinningMode::kNominal,
                            {Agg(AggregateType::kCount)}, /*bins=*/64);
  expr::Predicate in_set;
  in_set.column = "tag";
  in_set.op = expr::CompareOp::kIn;
  in_set.set_values = {0.5, 4.0};  // 0.5 matches no code; 4 = "epsilon"
  spec.filter.And(in_set);
  SegmentScanOptions options;
  options.enable_zone_pruning = false;
  const auto scanner = Scan(spec, options);
  EXPECT_GE(scanner->stats().segments_pruned_dict, 1);
  RunDifferential(spec, "dict-pruned in(tag, non-integral)");
}

// --- RLE COUNT fast path ----------------------------------------------------

TEST(SegmentScanTest, RleCountFastPathEngagesAndMatches) {
  // All-COUNT, single bin dimension, filter on the binned column, and
  // `bucket` is RLE in every segment — every scanned segment takes the
  // run fast path.
  QuerySpec spec = MakeSpec("bucket", BinningMode::kNominal,
                            {Agg(AggregateType::kCount)}, /*bins=*/64);
  expr::Predicate range;
  range.column = "bucket";
  range.op = expr::CompareOp::kRange;
  range.lo = 5.0;
  range.hi = 27.0;
  spec.filter.And(range);

  const auto scanner = Scan(spec);
  EXPECT_GT(scanner->stats().segments_count_fastpath, 0);
  EXPECT_EQ(scanner->stats().segments_count_fastpath,
            scanner->stats().segments_scanned);
  RunDifferential(spec, "rle count fast path");
}

TEST(SegmentScanTest, FastPathDisabledWhenAggregatesNotAllCount) {
  QuerySpec spec = MakeSpec("bucket", BinningMode::kNominal,
                            {Agg(AggregateType::kCount),
                             Agg(AggregateType::kSum, "bucket")},
                            /*bins=*/64);
  const auto scanner = Scan(spec);
  EXPECT_EQ(scanner->stats().segments_count_fastpath, 0);
  RunDifferential(spec, "sum disables fast path");
}

// --- Compressed-domain filtered COUNT ---------------------------------------

TEST(SegmentScanTest, CompressedFilterFastPathEngagesAndMatches) {
  // All-COUNT by `bucket` (RLE in every segment) with predicates on
  // *other* columns — bit-packed `narrow` and raw-double `value` — so
  // every scanned segment is answered off the compressed payloads
  // without a staging decode.
  QuerySpec spec = MakeSpec("bucket", BinningMode::kNominal,
                            {Agg(AggregateType::kCount)}, /*bins=*/64);
  expr::Predicate range;
  range.column = "narrow";
  range.op = expr::CompareOp::kRange;
  range.lo = 520.0;
  range.hi = 590.0;
  spec.filter.And(range);
  expr::Predicate ge;
  ge.column = "value";
  ge.op = expr::CompareOp::kGe;  // NaNs never match, as in the kernels
  ge.value = 250.0;
  spec.filter.And(ge);

  const auto scanner = Scan(spec);
  EXPECT_GT(scanner->stats().segments_filter_fastpath, 0);
  EXPECT_EQ(scanner->stats().segments_filter_fastpath,
            scanner->stats().segments_scanned);
  EXPECT_EQ(scanner->stats().segments_count_fastpath, 0);
  RunDifferential(spec, "compressed filtered count");
}

TEST(SegmentScanTest, CompressedFilterAllPredicateEncodings) {
  // One predicate per encoding the filter evaluator handles: RLE
  // (`bucket`, also the bin column), dictionary-coded strings (`tag`),
  // raw int64 (`wide`), and raw double (`value`).
  QuerySpec spec = MakeSpec("bucket", BinningMode::kNominal,
                            {Agg(AggregateType::kCount)}, /*bins=*/64);
  expr::Predicate on_bin;
  on_bin.column = "bucket";
  on_bin.op = expr::CompareOp::kLe;
  on_bin.value = 900.0;
  spec.filter.And(on_bin);
  expr::Predicate in_set;
  in_set.column = "tag";
  in_set.op = expr::CompareOp::kIn;
  in_set.set_values = {1.0, 4.0};
  spec.filter.And(in_set);
  expr::Predicate lt;
  lt.column = "wide";
  lt.op = expr::CompareOp::kLt;
  lt.value = 2.0e11;
  spec.filter.And(lt);
  expr::Predicate gt;
  gt.column = "value";
  gt.op = expr::CompareOp::kGt;
  gt.value = -450.0;
  spec.filter.And(gt);

  const auto scanner = Scan(spec);
  EXPECT_GT(scanner->stats().segments_filter_fastpath, 0);
  RunDifferential(spec, "compressed filter, every encoding");
}

TEST(SegmentScanTest, CompressedFilterDisabledFallsBackToDecode) {
  QuerySpec spec = MakeSpec("bucket", BinningMode::kNominal,
                            {Agg(AggregateType::kCount)}, /*bins=*/64);
  expr::Predicate range;
  range.column = "narrow";
  range.op = expr::CompareOp::kRange;
  range.lo = 520.0;
  range.hi = 590.0;
  spec.filter.And(range);

  SegmentScanOptions options;
  options.enable_compressed_filter_fastpath = false;
  const auto scanner = Scan(spec, options);
  EXPECT_EQ(scanner->stats().segments_filter_fastpath, 0);
  EXPECT_GT(scanner->stats().segments_scanned, 0);
}

TEST(SegmentScanTest, CompressedFilterPackedWidthSweep) {
  // Every evaluation strategy for bit-packed predicate columns: the
  // byte-SWAR path (widths dividing 8), the plain match table (12), and
  // the per-row fallback past the table threshold (13, 20) — plus an
  // unaligned tail (rows % 64 != 0) and a negative frame-of-reference
  // base.
  for (const int bits : {1, 2, 4, 8, 12, 13, 20}) {
    storage::Schema schema({
        {"b", storage::DataType::kInt64, storage::AttributeKind::kNominal},
        {"p", storage::DataType::kInt64, storage::AttributeKind::kNominal},
    });
    auto t = std::make_shared<storage::Table>("fact", schema);
    Rng rng(static_cast<uint64_t>(bits) * 31 + 5);
    const int64_t range = (int64_t{1} << bits) - 1;
    const int64_t base = -(range / 2);
    const int64_t rows = storage::kSegmentRows + 123;
    for (int64_t i = 0; i < rows; ++i) {
      t->mutable_column(0).AppendInt(i / 2048);  // sorted runs -> RLE
      t->mutable_column(1).AppendInt(base + rng.UniformInt(0, range));
    }
    auto catalog = std::make_shared<storage::Catalog>();
    IDB_CHECK(catalog->AddTable(t).ok());

    const std::string path = std::string(::testing::TempDir()) +
                             "/packed_filter_" + std::to_string(bits) +
                             ".seg";
    ASSERT_TRUE(storage::WriteSegmentFile(*t, path).ok()) << bits;
    auto file = storage::SegmentFile::Open(path);
    ASSERT_TRUE(file.ok()) << bits << ": " << file.status();

    QuerySpec spec;
    spec.viz_name = "v";
    BinDimension d;
    d.column = "b";
    d.mode = BinningMode::kNominal;
    d.requested_bins = 64;
    spec.bins = {d};
    spec.aggregates = {Agg(AggregateType::kCount)};
    expr::Predicate lt;
    lt.column = "p";
    lt.op = expr::CompareOp::kLt;
    // Strictly inside the value range for every width (a threshold at
    // the zone minimum would let zone pruning skip all segments and the
    // fast path would never be observed).
    lt.value = static_cast<double>(base + (range + 2) / 2);
    spec.filter.And(lt);
    ASSERT_TRUE(spec.ResolveBins(*catalog).ok()) << bits;

    auto bound = BoundQuery::Bind(spec, *catalog);
    ASSERT_TRUE(bound.ok()) << bits;
    BinnedAggregator flat(&*bound, BinnedAggregatorOptions{});
    flat.ProcessRange(0, rows);

    auto scanner = SegmentTableScanner::Create(&*file, spec);
    ASSERT_TRUE(scanner.ok()) << bits;
    ASSERT_TRUE((*scanner)->Execute().ok()) << bits;
    EXPECT_GT((*scanner)->stats().segments_filter_fastpath, 0) << bits;
    EXPECT_EQ(flat.rows_matched(),
              (*scanner)->aggregator().rows_matched())
        << bits;
    ExpectResultsIdentical(flat.ExactResult(),
                           (*scanner)->aggregator().ExactResult(),
                           "packed filter width " + std::to_string(bits));
    std::remove(path.c_str());
  }
}

// --- Scanner self-consistency across threads --------------------------------

TEST(SegmentScanTest, ThreadCountInvariant) {
  // Thread-count bit-invariance is promised for aggregates whose partial
  // sums are exact (see the morsel-merge notes in exec/parallel.cc):
  // COUNT, MIN/MAX, and SUM over integer-valued columns below 2^53.  SUM
  // over random doubles legitimately differs in the last bit between the
  // sequential and partial-merge reduction trees — on the flat path too —
  // so it is covered by the scanner-vs-flat differentials instead.
  QuerySpec spec = MakeSpec("tag", BinningMode::kNominal,
                            {Agg(AggregateType::kCount),
                             Agg(AggregateType::kSum, "narrow"),
                             Agg(AggregateType::kMin, "wide"),
                             Agg(AggregateType::kMax, "wide")});
  SegmentScanOptions o1;
  o1.threads = 1;
  SegmentScanOptions o4;
  o4.threads = 4;
  const auto s1 = Scan(spec, o1);
  const auto s4 = Scan(spec, o4);
  EXPECT_EQ(s1->aggregator().rows_seen(), s4->aggregator().rows_seen());
  EXPECT_EQ(s1->aggregator().rows_matched(),
            s4->aggregator().rows_matched());
  ExpectResultsIdentical(s1->aggregator().ExactResult(),
                         s4->aggregator().ExactResult(), "threads 1 vs 4");
}

TEST(SegmentScanTest, StatsAccountEveryRowExactlyOnce) {
  QuerySpec spec = MakeSpec("tag", BinningMode::kNominal,
                            {Agg(AggregateType::kCount)});
  const auto scanner = Scan(spec);
  const SegmentScanStats& stats = scanner->stats();
  EXPECT_EQ(stats.segments_total, SegFile().num_segments());
  EXPECT_EQ(stats.segments_total,
            stats.segments_scanned + stats.segments_pruned_zone +
                stats.segments_pruned_dict);
  EXPECT_EQ(stats.rows_scanned + stats.rows_skipped, kRows);
  EXPECT_EQ(scanner->aggregator().rows_seen(), kRows);
}

TEST(SegmentScanTest, UnknownColumnIsRejected) {
  QuerySpec spec = MakeSpec("tag", BinningMode::kNominal,
                            {Agg(AggregateType::kCount)});
  spec.aggregates.push_back(Agg(AggregateType::kSum, "no_such_column"));
  auto scanner = SegmentTableScanner::Create(&SegFile(), spec);
  EXPECT_FALSE(scanner.ok());
}

// --- Bit-width sweep --------------------------------------------------------

/// Frame-of-reference widths across the supported 1..32 bit range (and a
/// negative base): every width must decode to scanner results identical
/// to the flat path.
TEST(SegmentScanTest, BitPackedWidthSweep) {
  for (const int bits : {1, 3, 8, 13, 24, 31, 32}) {
    storage::Schema schema({
        {"v", storage::DataType::kInt64, storage::AttributeKind::kNominal},
    });
    auto t = std::make_shared<storage::Table>("fact", schema);
    Rng rng(static_cast<uint64_t>(bits) * 7 + 1);
    const int64_t range = bits >= 63 ? std::numeric_limits<int64_t>::max()
                                     : (int64_t{1} << bits) - 1;
    const int64_t base = -(range / 3);
    const int64_t rows = storage::kSegmentRows + 777;
    for (int64_t i = 0; i < rows; ++i) {
      t->mutable_column(0).AppendInt(base + rng.UniformInt(0, range));
    }
    auto catalog = std::make_shared<storage::Catalog>();
    IDB_CHECK(catalog->AddTable(t).ok());

    const std::string path = std::string(::testing::TempDir()) +
                             "/width_" + std::to_string(bits) + ".seg";
    ASSERT_TRUE(storage::WriteSegmentFile(*t, path).ok()) << bits;
    auto file = storage::SegmentFile::Open(path);
    ASSERT_TRUE(file.ok()) << bits << ": " << file.status();

    QuerySpec spec;
    spec.viz_name = "v";
    BinDimension d;
    d.column = "v";
    d.mode = BinningMode::kFixedCount;
    d.requested_bins = 16;
    spec.bins = {d};
    spec.aggregates = {Agg(AggregateType::kCount),
                       Agg(AggregateType::kSum, "v")};
    ASSERT_TRUE(spec.ResolveBins(*catalog).ok()) << bits;

    auto bound = BoundQuery::Bind(spec, *catalog);
    ASSERT_TRUE(bound.ok()) << bits;
    BinnedAggregator flat(&*bound, BinnedAggregatorOptions{});
    flat.ProcessRange(0, rows);

    auto scanner = SegmentTableScanner::Create(&*file, spec);
    ASSERT_TRUE(scanner.ok()) << bits;
    ASSERT_TRUE((*scanner)->Execute().ok()) << bits;
    EXPECT_EQ(flat.rows_matched(),
              (*scanner)->aggregator().rows_matched())
        << bits;
    ExpectResultsIdentical(flat.ExactResult(),
                           (*scanner)->aggregator().ExactResult(),
                           "width " + std::to_string(bits));
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace idebench::exec
