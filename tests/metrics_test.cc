#include "metrics/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace idebench::metrics {
namespace {

using query::AggValue;
using query::BinResult;
using query::QueryResult;

QueryResult MakeResult(std::vector<std::pair<int64_t, double>> bins,
                       double margin = 0.0) {
  QueryResult r;
  r.available = true;
  for (const auto& [key, value] : bins) {
    BinResult bin;
    bin.values.push_back(AggValue{value, margin});
    r.bins.emplace(key, std::move(bin));
  }
  return r;
}

TEST(MetricsTest, ExactMatchIsPerfect) {
  QueryResult truth = MakeResult({{0, 10.0}, {1, 20.0}, {2, 30.0}});
  QueryMetrics m = Evaluate(truth, truth, /*tr_violated=*/false);
  EXPECT_FALSE(m.tr_violated);
  EXPECT_EQ(m.bins_delivered, 3);
  EXPECT_EQ(m.bins_in_gt, 3);
  EXPECT_DOUBLE_EQ(m.missing_bins, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(m.smape, 0.0);
  EXPECT_NEAR(m.cosine_distance, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.bias, 1.0);
  EXPECT_EQ(m.bins_out_of_margin, 0);
}

TEST(MetricsTest, UnavailableResultViolatesTr) {
  QueryResult truth = MakeResult({{0, 10.0}});
  QueryResult nothing;  // available = false
  QueryMetrics m = Evaluate(nothing, truth, /*tr_violated=*/false);
  EXPECT_TRUE(m.tr_violated);
  EXPECT_EQ(m.bins_delivered, 0);
  EXPECT_DOUBLE_EQ(m.missing_bins, 1.0);
  EXPECT_DOUBLE_EQ(m.cosine_distance, 1.0);
}

TEST(MetricsTest, MissingBinsRatio) {
  QueryResult truth = MakeResult({{0, 10.0}, {1, 20.0}, {2, 30.0}, {3, 40.0}});
  QueryResult partial = MakeResult({{0, 10.0}, {2, 30.0}});
  QueryMetrics m = Evaluate(partial, truth, false);
  EXPECT_DOUBLE_EQ(m.missing_bins, 0.5);
  EXPECT_EQ(m.bins_delivered, 2);
  EXPECT_EQ(m.bins_in_gt, 4);
}

TEST(MetricsTest, MeanRelativeError) {
  QueryResult truth = MakeResult({{0, 100.0}, {1, 200.0}});
  QueryResult estimate = MakeResult({{0, 110.0}, {1, 180.0}});
  QueryMetrics m = Evaluate(estimate, truth, false);
  // |110-100|/100 = 0.1; |180-200|/200 = 0.1.
  EXPECT_NEAR(m.mean_rel_error, 0.1, 1e-12);
  // SMAPE: 10/210 and 20/380.
  EXPECT_NEAR(m.smape, 0.5 * (10.0 / 210.0 + 20.0 / 380.0), 1e-12);
}

TEST(MetricsTest, ZeroTruthSkippedInMreButNotSmape) {
  QueryResult truth = MakeResult({{0, 0.0}, {1, 100.0}});
  QueryResult estimate = MakeResult({{0, 5.0}, {1, 100.0}});
  QueryMetrics m = Evaluate(estimate, truth, false);
  // MRE only from bin 1 (error 0); bin 0 undefined and skipped.
  EXPECT_DOUBLE_EQ(m.mean_rel_error, 0.0);
  // SMAPE includes bin 0: 5/(5+0) = 1, bin 1: 0.
  EXPECT_NEAR(m.smape, 0.5, 1e-12);
}

TEST(MetricsTest, BothZeroSmapeIsZero) {
  QueryResult truth = MakeResult({{0, 0.0}});
  QueryResult estimate = MakeResult({{0, 0.0}});
  QueryMetrics m = Evaluate(estimate, truth, false);
  EXPECT_DOUBLE_EQ(m.smape, 0.0);
}

TEST(MetricsTest, CosineDistanceShape) {
  // Same shape, different magnitude: cosine distance 0.
  QueryResult truth = MakeResult({{0, 1.0}, {1, 2.0}, {2, 3.0}});
  QueryResult scaled = MakeResult({{0, 10.0}, {1, 20.0}, {2, 30.0}});
  QueryMetrics m = Evaluate(scaled, truth, false);
  EXPECT_NEAR(m.cosine_distance, 0.0, 1e-12);
  // But the relative errors are large.
  EXPECT_NEAR(m.mean_rel_error, 9.0, 1e-12);

  // Orthogonal shape: distance 1.
  QueryResult truth2 = MakeResult({{0, 1.0}, {1, 0.0}});
  QueryResult orthogonal = MakeResult({{1, 1.0}});
  QueryMetrics m2 = Evaluate(orthogonal, truth2, false);
  EXPECT_NEAR(m2.cosine_distance, 1.0, 1e-12);
}

TEST(MetricsTest, MarginsAndOutOfMargin) {
  QueryResult truth = MakeResult({{0, 100.0}, {1, 100.0}});
  QueryResult estimate;
  estimate.available = true;
  BinResult in_margin;
  in_margin.values.push_back(AggValue{105.0, 10.0});  // |105-100| <= 10
  estimate.bins.emplace(0, in_margin);
  BinResult out_margin;
  out_margin.values.push_back(AggValue{120.0, 10.0});  // |120-100| > 10
  estimate.bins.emplace(1, out_margin);

  QueryMetrics m = Evaluate(estimate, truth, false);
  EXPECT_EQ(m.bins_out_of_margin, 1);
  // Relative margins: 10/105 and 10/120.
  EXPECT_NEAR(m.mean_margin_rel, 0.5 * (10.0 / 105.0 + 10.0 / 120.0), 1e-12);
  EXPECT_GT(m.margin_stdev, 0.0);
}

TEST(MetricsTest, BiasOverAndUnderEstimation) {
  QueryResult truth = MakeResult({{0, 100.0}, {1, 100.0}});
  QueryResult over = MakeResult({{0, 150.0}, {1, 150.0}});
  EXPECT_NEAR(Evaluate(over, truth, false).bias, 1.5, 1e-12);
  QueryResult under = MakeResult({{0, 50.0}, {1, 50.0}});
  EXPECT_NEAR(Evaluate(under, truth, false).bias, 0.5, 1e-12);
}

TEST(MetricsTest, DeliveredBinOutsideGroundTruth) {
  QueryResult truth = MakeResult({{0, 10.0}});
  QueryResult extra = MakeResult({{0, 10.0}, {7, 5.0}});
  QueryMetrics m = Evaluate(extra, truth, false);
  EXPECT_EQ(m.bins_delivered, 2);
  EXPECT_DOUBLE_EQ(m.missing_bins, 0.0);
  // The spurious bin inflates |F| and thus the cosine distance.
  EXPECT_GT(m.cosine_distance, 0.0);
}

TEST(MetricsTest, EmptyGroundTruth) {
  QueryResult truth;  // no bins
  truth.available = true;
  QueryResult estimate = MakeResult({});
  QueryMetrics m = Evaluate(estimate, truth, false);
  EXPECT_DOUBLE_EQ(m.missing_bins, 0.0);
  EXPECT_DOUBLE_EQ(m.cosine_distance, 0.0);
  EXPECT_EQ(m.bins_in_gt, 0);
}

TEST(MetricsTest, MultipleAggregatesAllEvaluated) {
  QueryResult truth;
  truth.available = true;
  BinResult tb;
  tb.values.push_back(AggValue{100.0, 0.0});
  tb.values.push_back(AggValue{50.0, 0.0});
  truth.bins.emplace(0, tb);

  QueryResult est;
  est.available = true;
  BinResult eb;
  eb.values.push_back(AggValue{110.0, 0.0});  // 10 % off
  eb.values.push_back(AggValue{60.0, 0.0});   // 20 % off
  est.bins.emplace(0, eb);

  QueryMetrics m = Evaluate(est, truth, false);
  EXPECT_NEAR(m.mean_rel_error, 0.15, 1e-12);
  EXPECT_EQ(m.bins_out_of_margin, 2);
}

TEST(MetricsTest, FloatingPointNoiseNotOutOfMargin) {
  QueryResult truth = MakeResult({{0, 1e9}});
  QueryResult estimate = MakeResult({{0, 1e9 * (1.0 + 1e-12)}});
  QueryMetrics m = Evaluate(estimate, truth, false);
  EXPECT_EQ(m.bins_out_of_margin, 0);
}

}  // namespace
}  // namespace idebench::metrics
