/// \file engine_properties_test.cc
/// Property-style sweeps over all engines and time requirements:
/// invariants every conforming system adapter must satisfy, plus
/// failure-injection cases for the adapter contract.

#include <gtest/gtest.h>

#include "chaos/fault_injector.h"
#include "core/dataset.h"
#include "engines/registry.h"
#include "engines/stratified_engine.h"
#include "tests/test_util.h"

namespace idebench::engines {
namespace {

using query::QuerySpec;

std::shared_ptr<const storage::Catalog> PropCatalog(int64_t nominal) {
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(nominal);
  return catalog;
}

/// (engine name, TR microseconds) sweep.
class EngineTrSweep
    : public ::testing::TestWithParam<std::tuple<std::string, Micros>> {};

TEST_P(EngineTrSweep, RunForNeverOverconsumesAndPollIsSafe) {
  const auto& [name, tr] = GetParam();
  auto engine = CreateEngine(name);
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(1'000'000'000);  // 1 B nominal: nothing finishes
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = (*engine)->Submit(spec);
  ASSERT_TRUE(handle.ok());

  Micros total = 0;
  for (int i = 0; i < 16; ++i) {
    const Micros slice = tr / 8 + 1;
    const Micros consumed = (*engine)->RunFor(*handle, slice);
    EXPECT_GE(consumed, 0);
    EXPECT_LE(consumed, slice);
    total += consumed;
    // Polling mid-flight must always succeed (possibly unavailable).
    auto result = (*engine)->PollResult(*handle);
    ASSERT_TRUE(result.ok());
    if (result->available) {
      EXPECT_GE(result->progress, 0.0);
      EXPECT_LE(result->progress, 1.0);
    }
  }
  EXPECT_LE(total, 2 * tr + 16);
  (*engine)->Cancel(*handle);
}

TEST_P(EngineTrSweep, CancelledHandleStopsResponding) {
  const auto& [name, tr] = GetParam();
  auto engine = CreateEngine(name);
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(1'000'000);
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = (*engine)->Submit(spec);
  ASSERT_TRUE(handle.ok());
  (*engine)->RunFor(*handle, tr);
  (*engine)->Cancel(*handle);
  EXPECT_EQ((*engine)->RunFor(*handle, tr), 0);
  EXPECT_FALSE((*engine)->IsDone(*handle));
  EXPECT_FALSE((*engine)->PollResult(*handle).ok());
}

TEST_P(EngineTrSweep, UnknownHandleIsHarmless) {
  const auto& [name, tr] = GetParam();
  auto engine = CreateEngine(name);
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(1'000'000);
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  EXPECT_EQ((*engine)->RunFor(12345, tr), 0);
  EXPECT_FALSE((*engine)->IsDone(12345));
  EXPECT_FALSE((*engine)->PollResult(12345).ok());
  (*engine)->Cancel(12345);  // no crash
}

/// Handle-safety contract surfaced by session multiplexing: Cancel is
/// idempotent in every lifecycle phase, and a cancelled handle keeps
/// answering with clean errors, never UB.
TEST_P(EngineTrSweep, CancelIsIdempotentInEveryPhase) {
  const auto& [name, tr] = GetParam();
  auto engine = CreateEngine(name);
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(1'000'000);
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);

  // Cancel before any RunFor.
  auto fresh = (*engine)->Submit(spec);
  ASSERT_TRUE(fresh.ok());
  (*engine)->Cancel(*fresh);
  (*engine)->Cancel(*fresh);  // double cancel: no-op
  EXPECT_EQ((*engine)->RunFor(*fresh, tr), 0);
  EXPECT_FALSE((*engine)->PollResult(*fresh).ok());

  // Cancel mid-flight, twice.
  auto running = (*engine)->Submit(spec);
  ASSERT_TRUE(running.ok());
  (*engine)->RunFor(*running, tr / 2);
  (*engine)->Cancel(*running);
  (*engine)->Cancel(*running);
  EXPECT_FALSE((*engine)->IsDone(*running));
  EXPECT_FALSE((*engine)->PollResult(*running).ok());

  // Cancel after completion, twice; the engine must stay usable.
  auto done = (*engine)->Submit(spec);
  ASSERT_TRUE(done.ok());
  for (int i = 0; i < 64 && !(*engine)->IsDone(*done); ++i) {
    (*engine)->RunFor(*done, 10'000'000'000LL);
  }
  (*engine)->Cancel(*done);
  (*engine)->Cancel(*done);
  EXPECT_EQ((*engine)->RunFor(*done, tr), 0);
  auto next = (*engine)->Submit(spec);
  EXPECT_TRUE(next.ok());  // fresh submissions unaffected
}

/// Multiplexing safety: cancelling one live handle must not disturb
/// another in flight on the same engine.
TEST_P(EngineTrSweep, CancelOneOfTwoLeavesOtherUsable) {
  const auto& [name, tr] = GetParam();
  auto engine = CreateEngine(name);
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(100'000);  // small: queries can finish
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);

  auto victim = (*engine)->Submit(spec);
  auto survivor = (*engine)->Submit(spec);
  ASSERT_TRUE(victim.ok() && survivor.ok());
  (*engine)->RunFor(*victim, tr / 4);
  (*engine)->RunFor(*survivor, tr / 4);
  (*engine)->Cancel(*victim);

  for (int i = 0; i < 64 && !(*engine)->IsDone(*survivor); ++i) {
    (*engine)->RunFor(*survivor, 10'000'000'000LL);
  }
  ASSERT_TRUE((*engine)->IsDone(*survivor));
  auto result = (*engine)->PollResult(*survivor);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->available);
  EXPECT_NEAR(result->TotalEstimate(), 8.0, 1e-6);  // all 8 tiny rows
  (*engine)->Cancel(*survivor);
}

/// Zero and negative budgets are no-ops on any handle state.
TEST_P(EngineTrSweep, NonPositiveBudgetIsNoOp) {
  const auto& [name, tr] = GetParam();
  auto engine = CreateEngine(name);
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(1'000'000);
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = (*engine)->Submit(spec);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*engine)->RunFor(*handle, 0), 0);
  EXPECT_EQ((*engine)->RunFor(*handle, -tr), 0);
  auto result = (*engine)->PollResult(*handle);
  EXPECT_TRUE(result.ok());  // still pollable, nothing consumed
  (*engine)->Cancel(*handle);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllTrs, EngineTrSweep,
    ::testing::Combine(
        ::testing::Values("blocking", "online", "progressive", "stratified",
                          "frontend"),
        ::testing::Values(Micros{500'000}, Micros{3'000'000},
                          Micros{10'000'000})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_tr" +
             std::to_string(std::get<1>(info.param) / 1000) + "ms";
    });

/// Engines must refuse double preparation and queries before Prepare.
class EngineLifecycle : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineLifecycle, SubmitBeforePrepareFails) {
  auto engine = CreateEngine(GetParam());
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(1'000'000);
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  EXPECT_FALSE((*engine)->Submit(spec).ok());
}

TEST_P(EngineLifecycle, DoublePrepareFails) {
  auto engine = CreateEngine(GetParam());
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(1'000'000);
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  EXPECT_FALSE((*engine)->Prepare(catalog).ok());
}

TEST_P(EngineLifecycle, InjectedPrepareFailureRecoversOnRetry) {
  // An injected Prepare fault must leave the engine cleanly unprepared:
  // Submit keeps failing, and a later Prepare of the *same* engine
  // instance succeeds and serves queries normally (the recovery loop the
  // chaos harness' PrepareWithRetry relies on).
  auto engine = CreateEngine(GetParam());
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(1'000'000);
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);

  chaos::FaultInjector injector(17);
  injector.Arm(chaos::FaultSite::kEnginePrepare, {1.0, 2});
  chaos::ScopedFaultInjector scope(&injector);

  int attempts = 0;
  while (true) {
    ++attempts;
    ASSERT_LE(attempts, 8) << "prepare never recovered";
    auto prepared = (*engine)->Prepare(catalog);
    if (prepared.ok()) break;
    // While unprepared, submissions must keep failing cleanly.
    EXPECT_FALSE((*engine)->Submit(spec).ok());
  }
  EXPECT_GT(attempts, 1);  // the armed site actually failed a Prepare

  auto handle = (*engine)->Submit(spec);
  ASSERT_TRUE(handle.ok());
  (*engine)->RunFor(*handle, 10'000'000);
  auto result = (*engine)->PollResult(*handle);
  ASSERT_TRUE(result.ok());
  (*engine)->Cancel(*handle);
}

TEST_P(EngineLifecycle, UnresolvedBinsRejected) {
  auto engine = CreateEngine(GetParam());
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(1'000'000);
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  QuerySpec spec;
  spec.viz_name = "v";
  query::BinDimension d;
  d.column = "group";
  d.mode = query::BinningMode::kNominal;  // not resolved
  spec.bins = {d};
  query::AggregateSpec agg;
  agg.type = query::AggregateType::kCount;
  spec.aggregates = {agg};
  EXPECT_FALSE((*engine)->Submit(spec).ok());
}

TEST_P(EngineLifecycle, UnknownColumnRejected) {
  auto engine = CreateEngine(GetParam());
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(1'000'000);
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  expr::Predicate p;
  p.column = "no_such_column";
  p.op = expr::CompareOp::kGe;
  p.value = 0.0;
  spec.filter.And(p);
  EXPECT_FALSE((*engine)->Submit(spec).ok());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineLifecycle,
                         ::testing::Values("blocking", "online", "progressive",
                                           "stratified", "frontend"),
                         [](const auto& info) { return info.param; });

/// A failed Prepare must leave the engine cleanly unprepared: the
/// stratified engine rejects star schemas *before* attaching, so a
/// later Submit fails with a clean error instead of executing against a
/// half-initialized (empty) sample.
TEST(StratifiedLifecycle, NormalizedCatalogRejectedBeforeAttach) {
  core::DatasetConfig dataset;
  dataset.nominal_rows = 100'000;
  dataset.actual_rows = 2'000;
  dataset.normalized = true;
  auto catalog = core::BuildFlightsCatalog(dataset);
  ASSERT_TRUE(catalog.ok());

  StratifiedEngine engine;
  auto prepared = engine.Prepare(*catalog);
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kNotImplemented);

  // The engine is NOT attached: submissions keep failing cleanly...
  query::QuerySpec spec;
  spec.viz_name = "v";
  query::BinDimension d;
  d.column = "carrier";
  d.mode = query::BinningMode::kNominal;
  spec.bins = {d};
  query::AggregateSpec agg;
  agg.type = query::AggregateType::kCount;
  spec.aggregates = {agg};
  EXPECT_FALSE(engine.Submit(spec).ok());

  // ...and a de-normalized catalog can still be prepared afterwards.
  dataset.normalized = false;
  auto denorm = core::BuildFlightsCatalog(dataset);
  ASSERT_TRUE(denorm.ok());
  EXPECT_TRUE(engine.Prepare(*denorm).ok());
}

/// Completed answers must agree with the exact ground truth for exact
/// engines and reconstruct totals in expectation for sampling ones.
class EngineAnswerQuality : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineAnswerQuality, FilteredCountMatchesTruth) {
  auto engine = CreateEngine(GetParam());
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(100'000);  // small nominal: everything finishes
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());

  QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  expr::Predicate p;
  p.column = "flag";
  p.op = expr::CompareOp::kEq;
  p.value = 1.0;
  spec.filter.And(p);

  auto handle = (*engine)->Submit(spec);
  ASSERT_TRUE(handle.ok());
  for (int i = 0; i < 64 && !(*engine)->IsDone(*handle); ++i) {
    (*engine)->RunFor(*handle, 10'000'000);
  }
  ASSERT_TRUE((*engine)->IsDone(*handle));
  auto result = (*engine)->PollResult(*handle);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->available);
  // True counts: flag==1 rows are {50,a},{60,b},{70,a},{80,b}: 2 per group.
  EXPECT_NEAR(result->TotalEstimate(), 4.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineAnswerQuality,
                         ::testing::Values("blocking", "online", "progressive",
                                           "stratified", "frontend"),
                         [](const auto& info) { return info.param; });

/// The progressive engine's margin shrinks monotonically as it runs —
/// the defining property of progressive computation.
TEST(ProgressiveMonotonicity, MarginsShrinkWithWork) {
  auto engine = CreateEngine("progressive");
  ASSERT_TRUE(engine.ok());
  auto catalog = PropCatalog(100'000'000'000);  // effectively endless
  ASSERT_TRUE((*engine)->Prepare(catalog).ok());
  auto spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = (*engine)->Submit(spec);
  ASSERT_TRUE(handle.ok());
  // Burn the restart overhead + sample 2 rows.
  (*engine)->RunFor(*handle, 700'000);

  double last_margin = 1e18;
  for (int step = 0; step < 3; ++step) {
    (*engine)->RunFor(*handle, 16'000);  // 2 rows at 8 us each
    auto result = (*engine)->PollResult(*handle);
    ASSERT_TRUE(result.ok());
    if (!result->available || result->bins.empty()) continue;
    double margin = 0.0;
    for (const auto& [key, bin] : result->bins) {
      margin += bin.values[0].margin;
    }
    EXPECT_LE(margin, last_margin * 1.25);  // allow small estimator noise
    last_margin = margin;
  }
}

}  // namespace
}  // namespace idebench::engines
