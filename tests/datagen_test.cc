#include <cmath>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "datagen/cholesky_scaler.h"
#include "datagen/flights_seed.h"
#include "datagen/normalizer.h"

namespace idebench::datagen {
namespace {

storage::Table MakeSeed(int64_t rows = 20'000, uint64_t seed = 42) {
  FlightsSeedConfig config;
  config.rows = rows;
  config.seed = seed;
  auto table = GenerateFlightsSeed(config);
  IDB_CHECK(table.ok());
  return std::move(table).MoveValueUnsafe();
}

double Correlation(const storage::Column& a, const storage::Column& b) {
  const int64_t n = a.size();
  double ma = 0.0;
  double mb = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    ma += a.ValueAsDouble(i);
    mb += b.ValueAsDouble(i);
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double da = a.ValueAsDouble(i) - ma;
    const double db = b.ValueAsDouble(i) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  return cov / std::sqrt(va * vb);
}

TEST(FlightsSeedTest, SchemaAndShape) {
  storage::Table t = MakeSeed(5'000);
  EXPECT_EQ(t.num_rows(), 5'000);
  EXPECT_EQ(t.schema(), FlightsSchema());
  EXPECT_TRUE(t.Validate().ok());
}

TEST(FlightsSeedTest, Deterministic) {
  storage::Table a = MakeSeed(2'000, 7);
  storage::Table b = MakeSeed(2'000, 7);
  for (int64_t r = 0; r < 100; ++r) {
    EXPECT_EQ(a.RowToString(r), b.RowToString(r));
  }
}

TEST(FlightsSeedTest, ValueRangesArePlausible) {
  storage::Table t = MakeSeed();
  EXPECT_GE(t.ColumnByName("dep_delay")->Min(), -25.0);
  EXPECT_LE(t.ColumnByName("dep_delay")->Max(), 480.0 + 8.0);  // + evening bump
  EXPECT_GE(t.ColumnByName("distance")->Min(), 80.0);
  EXPECT_GE(t.ColumnByName("air_time")->Min(), 20.0);
  EXPECT_GE(t.ColumnByName("dep_time")->Min(), 0.0);
  EXPECT_LT(t.ColumnByName("dep_time")->Max(), 24.0);
  EXPECT_GE(t.ColumnByName("day_of_week")->Min(), 1.0);
  EXPECT_LE(t.ColumnByName("day_of_week")->Max(), 7.0);
}

TEST(FlightsSeedTest, CorrelationsBuiltIn) {
  storage::Table t = MakeSeed();
  // arr_delay tracks dep_delay strongly.
  EXPECT_GT(Correlation(*t.ColumnByName("dep_delay"),
                        *t.ColumnByName("arr_delay")),
            0.7);
  // air_time tracks distance nearly deterministically.
  EXPECT_GT(Correlation(*t.ColumnByName("distance"),
                        *t.ColumnByName("air_time")),
            0.9);
}

TEST(FlightsSeedTest, CarrierPopularityIsSkewed) {
  storage::Table t = MakeSeed();
  const storage::Column* carrier = t.ColumnByName("carrier");
  std::unordered_map<int64_t, int64_t> counts;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    ++counts[carrier->ValueAsInt(r)];
  }
  // Zipf: code 0 (most popular) should dominate the median carrier.
  EXPECT_GT(counts[0], 5 * std::max<int64_t>(counts[12], 1));
}

TEST(FlightsSeedTest, FunctionalDependenciesHold) {
  storage::Table t = MakeSeed(5'000);
  const storage::Column* carrier = t.ColumnByName("carrier");
  const storage::Column* name = t.ColumnByName("carrier_name");
  std::unordered_map<int64_t, std::string> mapping;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    auto [it, inserted] =
        mapping.emplace(carrier->ValueAsInt(r), name->ValueAsString(r));
    if (!inserted) {
      EXPECT_EQ(it->second, name->ValueAsString(r));
    }
  }
}

TEST(FlightsSeedTest, InvalidConfigRejected) {
  FlightsSeedConfig bad;
  bad.rows = 0;
  EXPECT_FALSE(GenerateFlightsSeed(bad).ok());
  bad.rows = 10;
  bad.num_airports = 1;
  EXPECT_FALSE(GenerateFlightsSeed(bad).ok());
}

TEST(ScalerTest, ProducesRequestedRowCount) {
  storage::Table seed = MakeSeed(5'000);
  ScalerConfig config;
  config.target_rows = 12'345;
  config.derived = FlightsDerivedColumns();
  auto scaled = ScaleDataset(seed, config);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->num_rows(), 12'345);
  EXPECT_EQ(scaled->schema(), seed.schema());
}

TEST(ScalerTest, DownsamplingWorks) {
  storage::Table seed = MakeSeed(5'000);
  ScalerConfig config;
  config.target_rows = 500;
  config.derived = FlightsDerivedColumns();
  auto scaled = ScaleDataset(seed, config);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->num_rows(), 500);
}

TEST(ScalerTest, PreservesMarginalDistributions) {
  storage::Table seed = MakeSeed(20'000);
  ScalerConfig config;
  config.target_rows = 20'000;
  config.derived = FlightsDerivedColumns();
  auto scaled = ScaleDataset(seed, config);
  ASSERT_TRUE(scaled.ok());
  for (const char* col : {"dep_delay", "distance", "dep_time"}) {
    const storage::Column* s = seed.ColumnByName(col);
    const storage::Column* g = scaled->ColumnByName(col);
    double mean_s = 0.0;
    double mean_g = 0.0;
    for (int64_t r = 0; r < seed.num_rows(); ++r) mean_s += s->ValueAsDouble(r);
    for (int64_t r = 0; r < scaled->num_rows(); ++r) {
      mean_g += g->ValueAsDouble(r);
    }
    mean_s /= static_cast<double>(seed.num_rows());
    mean_g /= static_cast<double>(scaled->num_rows());
    EXPECT_NEAR(mean_g, mean_s, std::fabs(mean_s) * 0.1 + 1.0) << col;
  }
}

TEST(ScalerTest, PreservesCorrelations) {
  storage::Table seed = MakeSeed(20'000);
  ScalerConfig config;
  config.target_rows = 20'000;
  config.derived = FlightsDerivedColumns();
  auto scaled = ScaleDataset(seed, config);
  ASSERT_TRUE(scaled.ok());
  const double seed_corr = Correlation(*seed.ColumnByName("dep_delay"),
                                       *seed.ColumnByName("arr_delay"));
  const double scaled_corr = Correlation(*scaled->ColumnByName("dep_delay"),
                                         *scaled->ColumnByName("arr_delay"));
  // The Gaussian copula preserves rank dependence; Pearson correlation of
  // the heavy-tailed delay mixture is attenuated somewhat, which the
  // paper's method shares.  Require strong positive correlation and
  // rough agreement.
  EXPECT_GT(scaled_corr, 0.55);
  EXPECT_NEAR(scaled_corr, seed_corr, 0.25);
}

TEST(ScalerTest, PreservesFunctionalDependencies) {
  storage::Table seed = MakeSeed(5'000);
  ScalerConfig config;
  config.target_rows = 8'000;
  config.derived = FlightsDerivedColumns();
  auto scaled = ScaleDataset(seed, config);
  ASSERT_TRUE(scaled.ok());
  const storage::Column* carrier = scaled->ColumnByName("carrier");
  const storage::Column* name = scaled->ColumnByName("carrier_name");
  for (int64_t r = 0; r < scaled->num_rows(); ++r) {
    EXPECT_EQ("Carrier " + carrier->ValueAsString(r), name->ValueAsString(r));
  }
}

TEST(ScalerTest, DictionaryCodesMatchSeed) {
  storage::Table seed = MakeSeed(5'000);
  ScalerConfig config;
  config.target_rows = 1'000;
  config.derived = FlightsDerivedColumns();
  auto scaled = ScaleDataset(seed, config);
  ASSERT_TRUE(scaled.ok());
  const auto& seed_dict = seed.ColumnByName("carrier")->dictionary();
  const auto& scaled_dict = scaled->ColumnByName("carrier")->dictionary();
  ASSERT_EQ(scaled_dict.size(), seed_dict.size());
  for (int64_t c = 0; c < seed_dict.size(); ++c) {
    EXPECT_EQ(scaled_dict.At(c), seed_dict.At(c));
  }
}

TEST(ScalerTest, Errors) {
  storage::Table seed = MakeSeed(1'000);
  ScalerConfig bad;
  bad.target_rows = 0;
  EXPECT_FALSE(ScaleDataset(seed, bad).ok());
  ScalerConfig bad_fd;
  bad_fd.target_rows = 10;
  bad_fd.derived = {{"ghost", "carrier"}};
  EXPECT_FALSE(ScaleDataset(seed, bad_fd).ok());
}

TEST(NormalizerTest, FlightsStarSchema) {
  storage::Table seed = MakeSeed(5'000);
  auto catalog = Normalize(seed, FlightsDimensionSpecs());
  ASSERT_TRUE(catalog.ok());
  EXPECT_TRUE(catalog->is_normalized());
  EXPECT_EQ(catalog->tables().size(), 3u);
  const storage::Table* fact = catalog->fact_table();
  ASSERT_NE(fact, nullptr);
  EXPECT_EQ(fact->num_rows(), seed.num_rows());
  // The nominal columns moved out; surrogate keys moved in.
  EXPECT_EQ(fact->ColumnByName("carrier"), nullptr);
  EXPECT_NE(fact->ColumnByName("carrier_id"), nullptr);
  EXPECT_NE(fact->ColumnByName("airport_id"), nullptr);
  // Dimensions carry the moved columns.
  const storage::Table* carriers = catalog->GetTable("carriers");
  ASSERT_NE(carriers, nullptr);
  EXPECT_NE(carriers->ColumnByName("carrier"), nullptr);
  EXPECT_NE(carriers->ColumnByName("carrier_name"), nullptr);
  EXPECT_EQ(catalog->foreign_keys().size(), 2u);
}

TEST(NormalizerTest, JoinReconstructsOriginalValues) {
  storage::Table seed = MakeSeed(2'000);
  auto catalog = Normalize(seed, FlightsDimensionSpecs());
  ASSERT_TRUE(catalog.ok());
  const storage::Table* fact = catalog->fact_table();
  const storage::Table* carriers = catalog->GetTable("carriers");
  const storage::Column* fk = fact->ColumnByName("carrier_id");
  const storage::Column* pk = carriers->ColumnByName("carrier_id");
  const storage::Column* carrier = carriers->ColumnByName("carrier");
  // PK is positionally dense (key k at row k), so FK value = dim row.
  for (int64_t r = 0; r < 200; ++r) {
    const int64_t key = fk->ValueAsInt(r);
    EXPECT_EQ(pk->ValueAsInt(key), key);
    EXPECT_EQ(carrier->ValueAsString(key),
              seed.ColumnByName("carrier")->ValueAsString(r));
  }
}

TEST(NormalizerTest, DimensionHasDistinctCombinations) {
  storage::Table seed = MakeSeed(5'000);
  auto catalog = Normalize(seed, FlightsDimensionSpecs());
  ASSERT_TRUE(catalog.ok());
  const storage::Table* carriers = catalog->GetTable("carriers");
  std::set<std::string> combos;
  for (int64_t r = 0; r < carriers->num_rows(); ++r) {
    combos.insert(carriers->RowToString(r));
  }
  EXPECT_EQ(static_cast<int64_t>(combos.size()), carriers->num_rows());
}

TEST(NormalizerTest, Errors) {
  storage::Table seed = MakeSeed(100);
  EXPECT_FALSE(Normalize(seed, {{"d", {"ghost"}, "d_id"}}).ok());
  EXPECT_FALSE(
      Normalize(seed, {{"d1", {"carrier"}, "d1_id"},
                       {"d2", {"carrier"}, "d2_id"}})
          .ok());
}

}  // namespace
}  // namespace idebench::datagen
