/// \file session_test.cc
/// Unit tests of the session serving API (session/session.h): push
/// delivery, deadline-exact cancellation, round-robin fairness under a
/// contention penalty, idempotent client cancellation, multi-session
/// bookkeeping and scheduler telemetry.

#include "session/session.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engines/blocking_engine.h"
#include "engines/online_engine.h"
#include "engines/progressive_engine.h"
#include "engines/registry.h"
#include "tests/test_util.h"
#include "workflow/interaction.h"

namespace idebench::session {
namespace {

using engines::BlockingEngine;
using engines::BlockingEngineConfig;
using engines::ProgressiveEngine;
using engines::ProgressiveEngineConfig;
using workflow::Interaction;

query::VizSpec MakeGroupViz(const std::string& name) {
  query::VizSpec v;
  v.name = name;
  v.source = "tiny";
  query::BinDimension d;
  d.column = "group";
  d.mode = query::BinningMode::kNominal;
  v.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kCount;
  v.aggregates.push_back(a);
  return v;
}

/// Sink recording every update in arrival order.
class RecordingSink : public ResultSink {
 public:
  void OnUpdate(const ProgressiveUpdate& update) override {
    updates.push_back(update);
  }

  std::vector<ProgressiveUpdate> finals() const {
    std::vector<ProgressiveUpdate> out;
    for (const ProgressiveUpdate& u : updates) {
      if (u.final_update) out.push_back(u);
    }
    return out;
  }

  std::vector<ProgressiveUpdate> updates;
};

std::shared_ptr<storage::Catalog> Catalog(int64_t nominal) {
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(nominal);
  return catalog;
}

TEST(SessionTest, PartialUpdatesStreamThenFinalCompletes) {
  // Progressive engine on a workload sized so several quanta pass before
  // the walk completes: partial updates must stream with monotonically
  // growing row counts, then exactly one final, completed update.
  ProgressiveEngineConfig config;
  config.query_overhead_us = 0;
  config.restart_overhead_us = 0;
  config.sample_us_per_row = 100'000.0;  // 0.1 s per row; 8 rows = 0.8 s
  ProgressiveEngine engine(config);
  auto catalog = Catalog(1'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManagerOptions options;
  options.time_requirement = 2'000'000;
  options.quantum = 200'000;  // 2 rows per slice
  SessionManager manager(options, &engine, catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());

  auto submitted =
      (*sess)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v0")));
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted->size(), 1u);
  ASSERT_TRUE(manager.RunUntilIdle().ok());

  const auto finals = sink.finals();
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_TRUE(finals[0].completed);
  EXPECT_FALSE(finals[0].cancelled);
  EXPECT_TRUE(finals[0].result.available);
  EXPECT_EQ(finals[0].result.rows_processed, 8);
  EXPECT_EQ(finals[0].query_id, (*submitted)[0].query_id);

  // Partials streamed before the final, rows monotonically increasing.
  int64_t last_rows = 0;
  int partials = 0;
  for (const ProgressiveUpdate& u : sink.updates) {
    if (u.final_update) break;
    EXPECT_TRUE(u.result.available);
    EXPECT_GT(u.result.rows_processed, last_rows);
    last_rows = u.result.rows_processed;
    ++partials;
  }
  EXPECT_GE(partials, 2);
  EXPECT_EQ(manager.stats().partial_updates, partials);
}

TEST(SessionTest, OverdueQueryCancelledExactlyAtDeadline) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10'000.0;  // 1 B nominal: never finishes
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto catalog = Catalog(1'000'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManagerOptions options;
  options.time_requirement = 1'000'000;
  options.quantum = 64'000;  // deliberately not a divisor of the TR
  SessionManager manager(options, &engine, catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());

  auto submitted =
      (*sess)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v0")));
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());

  const auto finals = sink.finals();
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_TRUE(finals[0].cancelled);
  EXPECT_FALSE(finals[0].completed);
  EXPECT_FALSE(finals[0].result.available);  // blocking: nothing mid-scan
  // Cancelled exactly at the time requirement, never past it.
  EXPECT_EQ(finals[0].virtual_time, 1'000'000);
  const SchedulerStats stats = manager.stats();
  EXPECT_EQ(stats.deadline_cancelled, 1);
  EXPECT_EQ(stats.max_deadline_overshoot, 0);
}

TEST(SessionTest, ContentionPenaltyShrinksAdmittedBudgets) {
  BlockingEngineConfig config;
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto catalog = Catalog(1'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManagerOptions options;
  options.time_requirement = 1'000'000;
  options.contention_penalty = 1.0;
  SessionManager manager(options, &engine, catalog);
  RecordingSink sink_a;
  RecordingSink sink_b;
  auto a = manager.CreateSession(&sink_a);
  auto b = manager.CreateSession(&sink_b);
  ASSERT_TRUE(a.ok() && b.ok());

  // Session A admits one query alone: full budget.
  auto qa = (*a)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v")));
  ASSERT_TRUE(qa.ok());
  // Session B admits while A is live: n = 2 -> budget halves.
  auto qb = (*b)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("w")));
  ASSERT_TRUE(qb.ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());

  ASSERT_EQ(sink_a.finals().size(), 1u);
  ASSERT_EQ(sink_b.finals().size(), 1u);
  EXPECT_EQ(sink_a.finals()[0].budget, 1'000'000);
  EXPECT_EQ(sink_b.finals()[0].budget, 500'000);
}

TEST(SessionTest, ClientCancelIsIdempotentAndPushesFinal) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10'000.0;
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto catalog = Catalog(1'000'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManagerOptions options;
  options.time_requirement = 10'000'000;
  SessionManager manager(options, &engine, catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());

  auto submitted =
      (*sess)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v0")));
  ASSERT_TRUE(submitted.ok());
  const int64_t qid = (*submitted)[0].query_id;

  ASSERT_TRUE((*sess)->Cancel(qid).ok());
  EXPECT_TRUE((*sess)->Cancel(qid).ok());      // second cancel: no-op
  EXPECT_TRUE((*sess)->Cancel(99'999).ok());   // unknown id: no-op
  EXPECT_EQ((*sess)->live_queries(), 0);

  const auto finals = sink.finals();
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_TRUE(finals[0].cancelled);
  EXPECT_EQ(manager.stats().client_cancelled, 1);
  EXPECT_FALSE(manager.HasLive());
}

TEST(SessionTest, CloseSessionCancelsItsLiveQueriesOnly) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10'000.0;
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto catalog = Catalog(1'000'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManagerOptions options;
  options.time_requirement = 10'000'000;
  SessionManager manager(options, &engine, catalog);
  RecordingSink sink_a;
  RecordingSink sink_b;
  auto a = manager.CreateSession(&sink_a);
  auto b = manager.CreateSession(&sink_b);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(
      (*a)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("va")))
          .ok());
  ASSERT_TRUE(
      (*b)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("vb")))
          .ok());

  ASSERT_TRUE(manager.CloseSession(*a).ok());
  ASSERT_EQ(sink_a.finals().size(), 1u);
  EXPECT_TRUE(sink_a.finals()[0].cancelled);
  EXPECT_TRUE(sink_b.finals().empty());  // B untouched
  EXPECT_TRUE(manager.HasLive());
  EXPECT_EQ((*b)->live_queries(), 1);
}

TEST(SessionTest, LinkAndSelectionPropagateThroughSessionGraph) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto catalog = Catalog(1'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManagerOptions options;
  options.time_requirement = 1'000'000;
  SessionManager manager(options, &engine, catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());

  ASSERT_TRUE(
      (*sess)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v0")))
          .ok());
  ASSERT_TRUE(
      (*sess)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v1")))
          .ok());
  // The LinkVizs convenience wraps a link interaction: the target
  // re-queries.
  auto linked = (*sess)->LinkVizs("v0", "v1");
  ASSERT_TRUE(linked.ok());
  ASSERT_EQ(linked->size(), 1u);
  EXPECT_EQ((*linked)[0].spec.viz_name, "v1");

  // A selection on v0 propagates its filter to v1's query.
  expr::FilterExpr selection;
  expr::Predicate p;
  p.column = "flag";
  p.op = expr::CompareOp::kEq;
  p.value = 1.0;
  selection.And(p);
  auto brushed =
      (*sess)->SubmitInteraction(Interaction::SetSelection("v0", selection));
  ASSERT_TRUE(brushed.ok());
  ASSERT_EQ(brushed->size(), 1u);
  EXPECT_EQ((*brushed)[0].spec.viz_name, "v1");
  EXPECT_EQ((*brushed)[0].spec.filter.predicates().size(), 1u);
  ASSERT_TRUE(manager.RunUntilIdle().ok());

  // All four queries completed on the tiny catalog; the brushed count
  // totals the 4 flag==1 rows.
  const auto finals = sink.finals();
  ASSERT_EQ(finals.size(), 4u);
  EXPECT_TRUE(finals[3].completed);
  EXPECT_NEAR(finals[3].result.TotalEstimate(), 4.0, 1e-9);

  // DiscardViz drops the dashboard node: selections stop propagating.
  ASSERT_TRUE((*sess)->DiscardViz("v1").ok());
  auto after =
      (*sess)->SubmitInteraction(Interaction::SetSelection("v0", selection));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->empty());
}

TEST(SessionTest, UnsupportedQueriesReportedAsFinalUpdates) {
  // The online engine without fallback rejects AVG queries.
  engines::OnlineEngineConfig config;
  config.enable_fallback = false;
  engines::OnlineEngine online(config);
  auto catalog = Catalog(1'000'000);
  ASSERT_TRUE(online.Prepare(catalog).ok());

  SessionManagerOptions options;
  SessionManager manager(options, &online, catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());

  query::VizSpec avg_viz = MakeGroupViz("v0");
  avg_viz.aggregates[0].type = query::AggregateType::kAvg;
  avg_viz.aggregates[0].column = "value";
  auto submitted =
      (*sess)->SubmitInteraction(Interaction::CreateViz(avg_viz));
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted->size(), 1u);
  EXPECT_TRUE((*submitted)[0].unsupported);
  EXPECT_FALSE(manager.HasLive());

  const auto finals = sink.finals();
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_TRUE(finals[0].unsupported);
  EXPECT_TRUE(finals[0].final_update);
  EXPECT_FALSE(finals[0].result.available);
  EXPECT_EQ(manager.stats().unsupported, 1);
}

TEST(SessionTest, RoundRobinInterleavesSessionsWithinASlice) {
  // Two sessions, each a never-finishing scan; with a finite quantum the
  // scheduler must advance both queries in lockstep (fair division), not
  // run one to its deadline first.
  BlockingEngineConfig config;
  config.scan_ns_per_row = 1'000.0;  // 1 us per actual row
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto catalog = Catalog(8'000'000);  // scan cost 8 s >> TR
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManagerOptions options;
  options.time_requirement = 1'000'000;
  options.quantum = 100'000;
  options.push_partials = false;
  SessionManager manager(options, &engine, catalog);
  RecordingSink sink_a;
  RecordingSink sink_b;
  auto a = manager.CreateSession(&sink_a);
  auto b = manager.CreateSession(&sink_b);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(
      (*a)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("va")))
          .ok());
  ASSERT_TRUE(
      (*b)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("vb")))
          .ok());

  // After half the TR, both queries must have consumed equal compute.
  ASSERT_TRUE(manager.AdvanceTo(500'000).ok());
  ASSERT_TRUE(manager.HasLive());
  ASSERT_TRUE(manager.RunUntilIdle().ok());
  ASSERT_EQ(sink_a.finals().size(), 1u);
  ASSERT_EQ(sink_b.finals().size(), 1u);
  // Both ran their full (equal) entitlement and were cancelled together.
  EXPECT_EQ(sink_a.finals()[0].consumed, sink_b.finals()[0].consumed);
  EXPECT_EQ(sink_a.finals()[0].virtual_time, 1'000'000);
  EXPECT_EQ(sink_b.finals()[0].virtual_time, 1'000'000);
  EXPECT_EQ(manager.stats().max_deadline_overshoot, 0);
}

TEST(SessionTest, StatsCountersAddUp) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto catalog = Catalog(1'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManagerOptions options;
  options.time_requirement = 1'000'000;
  SessionManager manager(options, &engine, catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());
  ASSERT_TRUE(
      (*sess)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v0")))
          .ok());
  ASSERT_TRUE(
      (*sess)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v1")))
          .ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());

  const SchedulerStats stats = manager.stats();
  EXPECT_EQ(stats.sessions_opened, 1);
  EXPECT_EQ(stats.queries_submitted, 2);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.deadline_cancelled, 0);
  EXPECT_EQ(stats.client_cancelled, 0);
  EXPECT_EQ(stats.unsupported, 0);
  EXPECT_EQ(stats.max_deadline_overshoot, 0);
  EXPECT_EQ(stats.virtual_now, manager.VirtualNow());
}

TEST(SessionTest, CloseIsIdempotentAndSubmitAfterCloseFailsCleanly) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto catalog = Catalog(1'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManager manager({}, &engine, catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());
  ExplorationSession* session = *sess;
  EXPECT_FALSE(session->closed());

  ASSERT_TRUE(manager.CloseSession(session).ok());
  EXPECT_TRUE(session->closed());
  // Double close is a no-op, and the handle stays dereferenceable.
  EXPECT_TRUE(manager.CloseSession(session).ok());

  // Submitting on a closed session fails with a clean status instead of
  // touching freed memory.
  auto submitted =
      session->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v0")));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kInvalidArgument);
  // Cancelling through a closed session is still the usual no-op.
  EXPECT_TRUE(session->Cancel(0).ok());
  EXPECT_EQ(manager.stats().queries_submitted, 0);
}

TEST(SessionTest, ClosingOneSessionLeavesOthersServing) {
  BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;
  config.query_overhead_us = 0;
  BlockingEngine engine(config);
  auto catalog = Catalog(1'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManager manager({}, &engine, catalog);
  RecordingSink sink_a, sink_b;
  auto a = manager.CreateSession(&sink_a);
  auto b = manager.CreateSession(&sink_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  // Close A with a live query: its query cancels, B keeps serving
  // (the engine-wide WorkflowEnd only fires at the *last* close).
  ASSERT_TRUE(
      (*a)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("va"))).ok());
  ASSERT_TRUE(manager.CloseSession(*a).ok());
  ASSERT_EQ(sink_a.finals().size(), 1u);
  EXPECT_TRUE(sink_a.finals()[0].cancelled);

  ASSERT_TRUE(
      (*b)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("vb"))).ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());
  ASSERT_EQ(sink_b.finals().size(), 1u);
  EXPECT_TRUE(sink_b.finals()[0].completed);
  ASSERT_TRUE(manager.CloseSession(*b).ok());
  EXPECT_EQ(manager.stats().completed, 1);
  EXPECT_EQ(manager.stats().client_cancelled, 1);
}

TEST(SessionTest, VizNamespacingShieldsReuseSnapshotsAcrossSessions) {
  // Regression: two sessions sharing one engine both call their chart
  // "viz_0".  Engine-facing names are session-qualified ("s0/viz_0" vs
  // "s1/viz_0"), so when B discards *its* viz_0 the engine must not drop
  // A's reuse snapshots.  Before namespacing, B's discard of the raw
  // name wiped A's cache entries and A's identical resubmission missed.
  ProgressiveEngineConfig config;
  config.query_overhead_us = 0;
  config.restart_overhead_us = 0;
  config.sample_us_per_row = 100'000.0;  // completes within the TR
  config.reuse_cache = true;
  // Semantic reuse would serve A's resubmission from the engine's own
  // sample state before the cross-interaction cache is consulted; turn
  // it off so every submission cold-starts through the cache lookup.
  config.enable_reuse = false;
  config.expected_sessions = 2;
  ProgressiveEngine engine(config);
  auto catalog = Catalog(1'000'000);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  SessionManagerOptions options;
  options.time_requirement = 2'000'000;
  SessionManager manager(options, &engine, catalog);
  RecordingSink sink_a, sink_b;
  // Both sessions open before any query: WorkflowStart (which clears the
  // cache) fires only when serving starts.
  auto a = manager.CreateSession(&sink_a);
  auto b = manager.CreateSession(&sink_b);
  ASSERT_TRUE(a.ok() && b.ok());

  // A completes viz_0: the engine snapshots it under owner "s0/viz_0".
  ASSERT_TRUE(
      (*a)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("viz_0")))
          .ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());
  ASSERT_EQ(sink_a.finals().size(), 1u);
  EXPECT_TRUE(sink_a.finals()[0].completed);
  // Client-facing updates carry the raw name, not the qualified one.
  EXPECT_EQ(sink_a.finals()[0].viz_name, "viz_0");
  ASSERT_GT(engine.reuse_cache_stats().entries, 0);

  // B runs the same chart under the same raw name, then discards it.
  ASSERT_TRUE(
      (*b)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("viz_0")))
          .ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());
  ASSERT_EQ(sink_b.finals().size(), 1u);
  EXPECT_EQ(sink_b.finals()[0].viz_name, "viz_0");
  ASSERT_TRUE((*b)->DiscardViz("viz_0").ok());

  // A resubmits the identical spec: its snapshot must have survived B's
  // discard, so the lookup is an equal hit.
  const auto mid = engine.reuse_cache_stats();
  (*a)->ResetDashboard();
  ASSERT_TRUE(
      (*a)->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("viz_0")))
          .ok());
  ASSERT_TRUE(manager.RunUntilIdle().ok());
  const auto after = engine.reuse_cache_stats();
  EXPECT_GT(after.equal_hits, mid.equal_hits);
  EXPECT_EQ(after.misses, mid.misses);
}

TEST(SessionTest, BudgetScaleShrinksEntitlementDeadlineUnchanged) {
  // Graceful degradation hook: a scaled submission answers from a
  // smaller sample (less virtual work granted) but keeps the same
  // deadline, so a degraded query still terminates on time.
  ProgressiveEngineConfig config;
  config.query_overhead_us = 0;
  config.restart_overhead_us = 0;
  config.sample_us_per_row = 1'000'000.0;  // never finishes 8 rows in TR
  auto catalog = Catalog(1'000'000);

  SessionManagerOptions options;
  options.time_requirement = 2'000'000;

  auto run = [&](double budget_scale) {
    ProgressiveEngine engine(config);
    EXPECT_TRUE(engine.Prepare(catalog).ok());
    SessionManager manager(options, &engine, catalog);
    RecordingSink sink;
    auto sess = manager.CreateSession(&sink);
    EXPECT_TRUE(sess.ok());
    auto submitted = (*sess)->SubmitInteraction(
        Interaction::CreateViz(MakeGroupViz("v0")), budget_scale);
    EXPECT_TRUE(submitted.ok());
    EXPECT_TRUE(manager.RunUntilIdle().ok());
    EXPECT_EQ(sink.finals().size(), 1u);
    return sink.finals()[0];
  };

  const ProgressiveUpdate full = run(1.0);
  const ProgressiveUpdate degraded = run(0.5);
  // Half the entitlement: half the rows sampled, same deadline.
  EXPECT_EQ(degraded.budget, full.budget / 2);
  EXPECT_LT(degraded.consumed, full.consumed);
  EXPECT_LE(degraded.virtual_time, full.virtual_time);
  EXPECT_GT(degraded.result.rows_processed, 0);
  EXPECT_LT(degraded.result.rows_processed, full.result.rows_processed);
  // budget_scale outside (0, 1] is a client error, reported eagerly.
  ProgressiveEngine engine(config);
  ASSERT_TRUE(engine.Prepare(catalog).ok());
  SessionManager manager(options, &engine, catalog);
  RecordingSink sink;
  auto sess = manager.CreateSession(&sink);
  ASSERT_TRUE(sess.ok());
  EXPECT_FALSE(
      (*sess)
          ->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v0")), 0.0)
          .ok());
  EXPECT_FALSE(
      (*sess)
          ->SubmitInteraction(Interaction::CreateViz(MakeGroupViz("v0")), 1.5)
          .ok());
}

}  // namespace
}  // namespace idebench::session
