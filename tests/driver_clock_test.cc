/// \file driver_clock_test.cc
/// Clock plumbing: the driver paces interactions on its (virtual or
/// wall) clock, and online engines publish snapshots only at report
/// intervals regardless of polling frequency.

#include <gtest/gtest.h>

#include "driver/benchmark_driver.h"
#include "engines/blocking_engine.h"
#include "engines/online_engine.h"
#include "tests/test_util.h"
#include "workflow/workflow.h"

namespace idebench::driver {
namespace {

using workflow::Interaction;
using workflow::Workflow;

query::VizSpec MakeViz(const std::string& name) {
  query::VizSpec v;
  v.name = name;
  v.source = "tiny";
  query::BinDimension d;
  d.column = "group";
  d.mode = query::BinningMode::kNominal;
  v.bins.push_back(d);
  query::AggregateSpec a;
  a.type = query::AggregateType::kCount;
  v.aggregates.push_back(a);
  return v;
}

Workflow ThreeCreates() {
  Workflow wf;
  wf.name = "clocked";
  wf.type = workflow::WorkflowType::kIndependent;
  wf.interactions.push_back(Interaction::CreateViz(MakeViz("a")));
  wf.interactions.push_back(Interaction::CreateViz(MakeViz("b")));
  wf.interactions.push_back(Interaction::CreateViz(MakeViz("c")));
  return wf;
}

TEST(DriverClockTest, ExternalVirtualClockAdvancesByThinkTime) {
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  engines::BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;
  engines::BlockingEngine engine(config);

  Settings settings;
  settings.time_requirement = SecondsToMicros(1.0);
  settings.think_time = SecondsToMicros(2.0);
  BenchmarkDriver driver(settings, &engine, catalog);
  ASSERT_TRUE(driver.PrepareEngine().ok());

  VirtualClock clock(500);  // nonzero epoch: records are epoch-relative
  driver.SetClock(&clock);
  std::vector<QueryRecord> records;
  ASSERT_TRUE(driver.RunWorkflow(ThreeCreates(), &records).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].start_time, 0);
  EXPECT_EQ(records[1].start_time, SecondsToMicros(2.0));
  EXPECT_EQ(records[2].start_time, SecondsToMicros(4.0));
  // The external clock ends at epoch + 3 think times.
  EXPECT_EQ(clock.Now(), 500 + SecondsToMicros(6.0));
}

TEST(DriverClockTest, WallClockActuallyElapses) {
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000);
  engines::BlockingEngineConfig config;
  config.scan_ns_per_row = 10.0;
  engines::BlockingEngine engine(config);

  Settings settings;
  settings.time_requirement = SecondsToMicros(1.0);
  settings.think_time = 20'000;  // 20 ms real sleep per interaction
  BenchmarkDriver driver(settings, &engine, catalog);
  ASSERT_TRUE(driver.PrepareEngine().ok());

  WallClock clock;
  driver.SetClock(&clock);
  const Micros before = clock.Now();
  std::vector<QueryRecord> records;
  ASSERT_TRUE(driver.RunWorkflow(ThreeCreates(), &records).ok());
  // Three think sleeps of 20 ms must have really elapsed.
  EXPECT_GE(clock.Now() - before, 50'000);
}

TEST(OnlineSnapshotTest, StaleBetweenReportIntervals) {
  auto catalog = testutil::MakeTinyCatalog();
  catalog->set_nominal_rows(1'000'000'000);
  engines::OnlineEngineConfig config;
  config.sample_us_per_row = 100'000.0;  // 0.1 s per row: 8 rows = 0.8 s
  config.query_overhead_us = 0;
  config.report_interval_us = 300'000;  // one report per 3 rows
  engines::OnlineEngine engine(config);
  ASSERT_TRUE(engine.Prepare(catalog).ok());

  query::QuerySpec spec = testutil::MakeCountByGroupSpec(*catalog);
  auto handle = engine.Submit(spec);
  ASSERT_TRUE(handle.ok());

  // After 3 rows of work: first snapshot (3 rows).
  engine.RunFor(*handle, 300'000);
  auto first = engine.PollResult(*handle);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->available);
  EXPECT_EQ(first->rows_processed, 3);

  // One more row (work 0.4 s, next interval at 0.6 s): snapshot is stale.
  engine.RunFor(*handle, 100'000);
  auto stale = engine.PollResult(*handle);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->rows_processed, 3);  // unchanged

  // Two more rows cross the second interval: snapshot refreshes.
  engine.RunFor(*handle, 200'000);
  auto fresh = engine.PollResult(*handle);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows_processed, 6);
}

}  // namespace
}  // namespace idebench::driver
