/// \file sql_join_test.cc
/// SQL generation over star schemas (the Figure 4 translation with
/// joins) and JSON-parser robustness sweeps.

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/logging.h"
#include "datagen/flights_seed.h"
#include "datagen/normalizer.h"
#include "query/sql.h"

namespace idebench {
namespace {

std::shared_ptr<storage::Catalog> NormalizedFlights() {
  static std::shared_ptr<storage::Catalog> catalog = [] {
    datagen::FlightsSeedConfig config;
    config.rows = 2'000;
    config.seed = 9;
    auto seed = datagen::GenerateFlightsSeed(config);
    IDB_CHECK(seed.ok());
    auto normalized =
        datagen::Normalize(*seed, datagen::FlightsDimensionSpecs());
    IDB_CHECK(normalized.ok());
    return std::make_shared<storage::Catalog>(
        std::move(normalized).MoveValueUnsafe());
  }();
  return catalog;
}

TEST(SqlJoinTest, DimensionBinningRendersJoin) {
  auto catalog = NormalizedFlights();
  query::QuerySpec spec;
  spec.viz_name = "v";
  query::BinDimension d;
  d.column = "carrier";  // lives in the carriers dimension now
  d.mode = query::BinningMode::kNominal;
  spec.bins = {d};
  query::AggregateSpec agg;
  agg.type = query::AggregateType::kCount;
  spec.aggregates = {agg};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());

  const std::string sql = query::GenerateSql(spec, *catalog);
  EXPECT_NE(sql.find("FROM flights"), std::string::npos) << sql;
  EXPECT_NE(sql.find("JOIN carriers ON flights.carrier_id = "
                     "carriers.carrier_id"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("GROUP BY bin_carrier"), std::string::npos) << sql;
}

TEST(SqlJoinTest, TwoDimensionsTwoJoins) {
  auto catalog = NormalizedFlights();
  query::QuerySpec spec;
  spec.viz_name = "v";
  query::BinDimension d1;
  d1.column = "carrier";
  d1.mode = query::BinningMode::kNominal;
  query::BinDimension d2;
  d2.column = "origin_state";  // airports dimension
  d2.mode = query::BinningMode::kNominal;
  spec.bins = {d1, d2};
  query::AggregateSpec agg;
  agg.type = query::AggregateType::kAvg;
  agg.column = "dep_delay";  // fact column
  spec.aggregates = {agg};
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());

  const std::string sql = query::GenerateSql(spec, *catalog);
  EXPECT_NE(sql.find("JOIN carriers"), std::string::npos) << sql;
  EXPECT_NE(sql.find("JOIN airports"), std::string::npos) << sql;
  EXPECT_NE(sql.find("AVG(dep_delay)"), std::string::npos) << sql;
}

TEST(SqlJoinTest, FilterOnDimensionDecodesLiteral) {
  auto catalog = NormalizedFlights();
  const storage::Table* carriers = catalog->GetTable("carriers");
  ASSERT_NE(carriers, nullptr);
  const std::string label = carriers->ColumnByName("carrier")->ValueAsString(0);
  const int64_t code =
      carriers->ColumnByName("carrier")->dictionary().Lookup(label);

  query::QuerySpec spec;
  spec.viz_name = "v";
  query::BinDimension d;
  d.column = "dep_delay";
  d.mode = query::BinningMode::kFixedCount;
  d.requested_bins = 10;
  spec.bins = {d};
  query::AggregateSpec agg;
  agg.type = query::AggregateType::kCount;
  spec.aggregates = {agg};
  expr::Predicate p;
  p.column = "carrier";
  p.op = expr::CompareOp::kIn;
  p.set_values = {static_cast<double>(code)};
  spec.filter.And(p);
  ASSERT_TRUE(spec.ResolveBins(*catalog).ok());

  const std::string sql = query::GenerateSql(spec, *catalog);
  EXPECT_NE(sql.find("carrier IN ('" + label + "')"), std::string::npos)
      << sql;
  EXPECT_NE(sql.find("JOIN carriers"), std::string::npos) << sql;
}

/// Robustness sweep: malformed JSON documents must be rejected, never
/// crash, and valid ones must round-trip.
class JsonRobustness : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRobustness, MalformedRejected) {
  auto parsed = JsonValue::Parse(GetParam());
  EXPECT_FALSE(parsed.ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonRobustness,
    ::testing::Values("{", "}", "[", "]", "{]", "[}", "{\"a\"}", "{\"a\":}",
                      "{:1}", "{\"a\":1,}", "[1,,2]", "nul", "tru e",
                      "\"\\q\"", "\"\\u12\"", "\"\\u12zz\"", "01a", "--1",
                      "{\"a\":1}{", "[1]extra", "\x01"));

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsIdentity) {
  auto first = JsonValue::Parse(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam();
  auto second = JsonValue::Parse(first->Dump());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

INSTANTIATE_TEST_SUITE_P(
    Valid, JsonRoundTrip,
    ::testing::Values("null", "true", "false", "0", "-0.5", "1e-3",
                      "\"plain\"", "\"esc\\\"aped\\n\"", "[]", "{}",
                      "[[[[1]]]]", R"({"a":{"b":{"c":[1,2,3]}}})",
                      R"({"mixed":[null,true,1.5,"s",{"k":[]}]})"));

}  // namespace
}  // namespace idebench
