#include "datagen/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace idebench::datagen {
namespace {

TEST(MatrixTest, IdentityAndAccess) {
  Matrix m = Matrix::Identity(3);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  m.at(1, 0) = 4;
  m.at(1, 1) = 5;
  m.at(1, 2) = 6;
  const std::vector<double> y = m.MultiplyVector({1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(CholeskyTest, ReconstructsKnownMatrix) {
  // M = [[4, 2], [2, 3]] has Cholesky L = [[2, 0], [1, sqrt(2)]].
  Matrix m(2, 2);
  m.at(0, 0) = 4;
  m.at(0, 1) = 2;
  m.at(1, 0) = 2;
  m.at(1, 1) = 3;
  auto l = CholeskyDecompose(m);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(l->at(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l->at(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l->at(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(l->at(0, 1), 0.0, 1e-12);  // strictly lower triangular
}

TEST(CholeskyTest, LLtEqualsInput) {
  Matrix m(3, 3);
  // A correlation-like SPD matrix.
  const double data[3][3] = {{1.0, 0.5, 0.2}, {0.5, 1.0, -0.3},
                             {0.2, -0.3, 1.0}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) m.at(i, j) = data[i][j];
  }
  auto l = CholeskyDecompose(m);
  ASSERT_TRUE(l.ok());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 3; ++k) sum += l->at(i, k) * l->at(j, k);
      EXPECT_NEAR(sum, m.at(i, j), 1e-10) << i << "," << j;
    }
  }
}

TEST(CholeskyTest, SingularMatrixGetsRidge) {
  // Perfectly collinear correlation matrix (rank 1): needs jitter.
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = 1.0;
  auto l = CholeskyDecompose(m);
  ASSERT_TRUE(l.ok());
  EXPECT_GT(l->at(1, 1), 0.0);
}

TEST(CholeskyTest, NonSquareRejected) {
  EXPECT_FALSE(CholeskyDecompose(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, EmptyMatrixOk) {
  auto l = CholeskyDecompose(Matrix(0, 0));
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->rows(), 0);
}

TEST(CorrelationTest, PerfectCorrelationAndAnticorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  const std::vector<double> z = {5, 4, 3, 2, 1};
  auto r = CorrelationMatrix({x, y, z});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->at(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(r->at(0, 2), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r->at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r->at(1, 1), 1.0);
}

TEST(CorrelationTest, IndependentColumnsNearZero) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {1, -1, -1, 1};  // orthogonal-ish
  auto r = CorrelationMatrix({x, y});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->at(0, 1), 0.0, 0.3);
}

TEST(CorrelationTest, ConstantColumnHandled) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {7, 7, 7};
  auto r = CorrelationMatrix({x, c});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(r->at(1, 1), 1.0);
}

TEST(CorrelationTest, Errors) {
  EXPECT_FALSE(CorrelationMatrix({{1.0, 2.0}, {1.0}}).ok());
  EXPECT_FALSE(CorrelationMatrix({{}, {}}).ok());
  auto empty = CorrelationMatrix({});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->rows(), 0);
}

}  // namespace
}  // namespace idebench::datagen
